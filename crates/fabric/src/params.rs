//! Physical-layer constants for the two fabrics.
//!
//! Every number here is calibrated against a statement in the paper
//! (§1, §3, §4.1) or against the publicly documented characteristics of
//! the hardware generation; the doc comment on each field says which.

use elanib_simcore::Dur;

/// Per-link physical parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Payload data rate in bytes/second *after* line coding.
    ///
    /// 4X InfiniBand signals at 10 Gb/s with 8b/10b coding → 8 Gb/s =
    /// 1.0 GB/s of data per direction. Quadrics Elan-4 uses a wider,
    /// slower parallel physical layer delivering ~1.3 GB/s per
    /// direction ("both networks claim ~2 GB/s at the physical layer"
    /// counts both directions).
    pub data_rate: f64,
    /// Cable propagation + SerDes latency per traversal.
    pub propagation: Dur,
    /// Maximum transfer unit of one packet (payload bytes).
    pub mtu: u32,
    /// Per-packet header/trailer overhead in bytes (routing header,
    /// transport header, CRCs), charged per MTU-sized packet.
    pub header_bytes: u32,
}

impl LinkParams {
    /// Wire bytes needed to carry `payload` bytes, including per-packet
    /// headers.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        if payload == 0 {
            return self.header_bytes as u64;
        }
        let packets = payload.div_ceil(self.mtu as u64);
        payload + packets * self.header_bytes as u64
    }

    /// Serialization time of `payload` bytes on this link.
    pub fn serialize(&self, payload: u64) -> Dur {
        Dur::transfer(self.wire_bytes(payload), self.data_rate)
    }
}

/// Per-switch-element parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwitchParams {
    /// Cut-through latency of one switch hop (head of packet in →
    /// head of packet out, uncontended).
    pub hop_latency: Dur,
}

/// Everything needed to instantiate one fabric.
#[derive(Clone, Copy, Debug)]
pub struct FabricParams {
    pub link: LinkParams,
    pub switch: SwitchParams,
}

/// 4X InfiniBand: Voltaire HCS 400 HCAs + ISR 9600 switch/router.
///
/// * 1.0 GB/s data per direction (10 Gb/s signal, 8b/10b).
/// * 2 KB MTU, ~30 B of LRH/BTH/ICRC/VCRC per packet.
/// * ~200 ns per switch element (2004-era 4X switch silicon; the ISR
///   9600 is internally a multi-stage network of 24-port elements, so a
///   96-port chassis traversal is 3 such hops).
pub fn infiniband_4x() -> FabricParams {
    FabricParams {
        link: LinkParams {
            data_rate: 1.00e9,
            propagation: Dur::from_ns(25),
            mtu: 2048,
            header_bytes: 30,
        },
        switch: SwitchParams {
            hop_latency: Dur::from_ns(200),
        },
    }
}

/// Quadrics Elan-4 / QsNet-II: QM500 adapters + QS5A federated switch.
///
/// * ~1.3 GB/s data per direction on the wide parallel link.
/// * Large (4 KB) network transactions with small headers.
/// * ~40 ns per switch element (Elite-4 crossbars are 8-port,
///   4-up/4-down; a 64-port QS5A chassis is 3 internal stages).
pub fn elan4() -> FabricParams {
    FabricParams {
        link: LinkParams {
            data_rate: 1.30e9,
            propagation: Dur::from_ns(25),
            mtu: 4096,
            header_bytes: 24,
        },
        switch: SwitchParams {
            hop_latency: Dur::from_ns(40),
        },
    }
}

/// RoCEv2 over 10-Gigabit Ethernet (EXTENSION, not in the paper).
///
/// * 10.3125 Gb/s signal with 64b/66b coding → 10 Gb/s = 1.25 GB/s
///   raw; after preamble/IFG overhead ~1.16 GB/s of frame payload per
///   direction.
/// * 4 KB payload per frame (RoCE MTU 4096, jumbo-framed Ethernet).
/// * 78 B of per-frame overhead: Ethernet (18) + IPv4 (20) + UDP (8) +
///   BTH (12) + ICRC (4) + preamble/IFG equivalent (16).
/// * ~500 ns per switch element — store-and-forward-era 10GbE switch
///   silicon is markedly slower than cut-through IB/Quadrics elements.
pub fn roce_ethernet() -> FabricParams {
    FabricParams {
        link: LinkParams {
            data_rate: 1.16e9,
            propagation: Dur::from_ns(30),
            mtu: 4096,
            header_bytes: 78,
        },
        switch: SwitchParams {
            hop_latency: Dur::from_ns(500),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_adds_header_per_packet() {
        let l = infiniband_4x().link;
        assert_eq!(l.wire_bytes(100), 130);
        assert_eq!(l.wire_bytes(2048), 2078);
        assert_eq!(l.wire_bytes(2049), 2049 + 60);
        assert_eq!(l.wire_bytes(0), 30);
    }

    #[test]
    fn serialization_matches_rate() {
        let l = elan4().link;
        // 1.3e9 B/s: 1300 B in 1 us.
        let d = l.serialize(1300 - 24);
        assert!((d.as_us_f64() - 1.0).abs() < 1e-6, "{d}");
    }

    #[test]
    fn elan_link_is_faster_than_ib() {
        assert!(elan4().link.data_rate > infiniband_4x().link.data_rate);
        assert!(elan4().switch.hop_latency < infiniband_4x().switch.hop_latency);
    }

    #[test]
    fn roce_trades_wire_rate_for_overhead() {
        let r = roce_ethernet();
        let ib = infiniband_4x();
        // Faster raw wire than 4X IB, but heavier per-packet overhead
        // and slower switch elements.
        assert!(r.link.data_rate > ib.link.data_rate);
        assert!(r.link.header_bytes > ib.link.header_bytes);
        assert!(r.switch.hop_latency > ib.switch.hop_latency);
    }
}
