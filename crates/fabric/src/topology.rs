//! Fabric topology as an explicit graph of endpoints and switch
//! elements, plus the constructors used by the reproduction:
//! a single crossbar and generalized k-ary n-trees (the internal
//! structure of both the Voltaire ISR 9600 and the Quadrics QS5A).

use std::fmt;

/// A vertex in the fabric graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeRef {
    /// A NIC port, indexed by endpoint id (0-based, dense).
    Endpoint(usize),
    /// A switch element, indexed by switch id (0-based, dense).
    Switch(usize),
}

/// Undirected cable between two vertices. At instantiation each edge
/// becomes two independent directed channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub a: NodeRef,
    pub b: NodeRef,
}

/// Pure structure of a fabric (no runtime state).
#[derive(Clone, Debug)]
pub struct Topology {
    pub n_endpoints: usize,
    pub n_switches: usize,
    pub edges: Vec<Edge>,
    /// Human-readable description for reports.
    pub name: String,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} endpoints, {} switches, {} cables)",
            self.name,
            self.n_endpoints,
            self.n_switches,
            self.edges.len()
        )
    }
}

impl Topology {
    /// All endpoints attached to one crossbar switch.
    pub fn single_crossbar(n_endpoints: usize) -> Topology {
        assert!(n_endpoints >= 1);
        let edges = (0..n_endpoints)
            .map(|e| Edge {
                a: NodeRef::Endpoint(e),
                b: NodeRef::Switch(0),
            })
            .collect();
        Topology {
            n_endpoints,
            n_switches: 1,
            edges,
            name: format!("crossbar-{n_endpoints}"),
        }
    }

    /// Generalized k-ary n-tree with `arity` down-links per switch and
    /// `levels` switch stages, truncated to `n_endpoints` attached
    /// endpoints (capacity `arity^levels`).
    ///
    /// Construction follows the standard k-ary n-tree definition:
    /// level-0 switches are the leaves holding endpoint ports; a switch
    /// at level `l` (position `p`, written in base `arity`) connects its
    /// up-port `u` to the level-`l+1` switch whose digits equal `p`
    /// except digit `l` replaced by `u`. Unused sub-trees are pruned.
    ///
    /// * Voltaire ISR 9600 (96-port chassis of 24-port elements):
    ///   `arity = 12, levels = 2` (capacity 144, 96 usable in product).
    /// * Quadrics QS5A (64-port chassis of Elite-4 8-port elements):
    ///   `arity = 4, levels = 3` (capacity 64).
    pub fn fat_tree(arity: usize, levels: usize, n_endpoints: usize) -> Topology {
        assert!(arity >= 2 && levels >= 1);
        let capacity = arity.pow(levels as u32);
        assert!(
            n_endpoints >= 1 && n_endpoints <= capacity,
            "fat_tree({arity},{levels}) holds at most {capacity} endpoints, asked for {n_endpoints}"
        );
        // Number of switch positions per level in the full tree: a
        // k-ary n-tree has arity^(levels-1) switches per level.
        let per_level = arity.pow(levels as u32 - 1);

        // Which full-tree switch positions are live, given pruning?
        // A level-0 switch `s` is live iff endpoint range
        // [s*arity, (s+1)*arity) intersects [0, n_endpoints).
        // A level-l switch is live iff any live level-(l-1) switch
        // connects to it; with the digit construction that reduces to:
        // position p at level l is live iff there exists a live leaf
        // whose digits match p on all digits except 0..l. Equivalently,
        // the sub-tree prefix (digits l..levels-1 of p) addresses a
        // group of arity^l leaves; live iff that group intersects the
        // live leaves.
        let n_leaves = n_endpoints.div_ceil(arity);
        let live = |level: usize, pos: usize| -> bool {
            // Digits l..levels-1 of pos identify the leaf group of size
            // arity^l... but careful: leaf index shares digits
            // (l..levels-1) with pos; digits 0..l are free. The lowest
            // leaf in the group clears digits 0..l of pos.
            let modulus = arity.pow(level as u32);
            let group_base = (pos / modulus) * modulus;
            group_base < n_leaves
        };

        // Dense renumbering of live switches.
        let mut switch_id = vec![vec![usize::MAX; per_level]; levels];
        let mut n_switches = 0usize;
        for (level, ids) in switch_id.iter_mut().enumerate() {
            for (pos, slot) in ids.iter_mut().enumerate() {
                if live(level, pos) {
                    *slot = n_switches;
                    n_switches += 1;
                }
            }
        }

        let mut edges = Vec::new();
        // Endpoint -> leaf switch.
        for e in 0..n_endpoints {
            let leaf = e / arity;
            edges.push(Edge {
                a: NodeRef::Endpoint(e),
                b: NodeRef::Switch(switch_id[0][leaf]),
            });
        }
        // Level l -> level l+1 up-links.
        for level in 0..levels - 1 {
            let modulus = arity.pow(level as u32);
            for pos in 0..per_level {
                if switch_id[level][pos] == usize::MAX {
                    continue;
                }
                for up in 0..arity {
                    // Replace digit `level` of pos with `up`.
                    let digit = (pos / modulus) % arity;
                    let upper = pos - digit * modulus + up * modulus;
                    if switch_id[level + 1][upper] == usize::MAX {
                        continue;
                    }
                    edges.push(Edge {
                        a: NodeRef::Switch(switch_id[level][pos]),
                        b: NodeRef::Switch(switch_id[level + 1][upper]),
                    });
                }
            }
        }
        Topology {
            n_endpoints,
            n_switches,
            edges,
            name: format!("fat-tree-{arity}x{levels}-{n_endpoints}"),
        }
    }

    /// Adjacency list: for every vertex, the (neighbor, edge index)
    /// pairs. Endpoints come first in the vertex numbering.
    pub fn adjacency(&self) -> Vec<Vec<(NodeRef, usize)>> {
        let mut adj = vec![Vec::new(); self.n_endpoints + self.n_switches];
        for (idx, e) in self.edges.iter().enumerate() {
            adj[self.vertex_index(e.a)].push((e.b, idx));
            adj[self.vertex_index(e.b)].push((e.a, idx));
        }
        adj
    }

    /// Dense vertex index: endpoints `[0, n_endpoints)`, then switches.
    pub fn vertex_index(&self, n: NodeRef) -> usize {
        match n {
            NodeRef::Endpoint(e) => {
                assert!(e < self.n_endpoints);
                e
            }
            NodeRef::Switch(s) => {
                assert!(s < self.n_switches);
                self.n_endpoints + s
            }
        }
    }

    pub fn n_vertices(&self) -> usize {
        self.n_endpoints + self.n_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};

    fn is_connected(t: &Topology) -> bool {
        let adj = t.adjacency();
        let mut seen = vec![false; t.n_vertices()];
        let mut q = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = q.pop_front() {
            for &(n, _) in &adj[v] {
                let i = t.vertex_index(n);
                if !seen[i] {
                    seen[i] = true;
                    count += 1;
                    q.push_back(i);
                }
            }
        }
        count == t.n_vertices()
    }

    #[test]
    fn crossbar_shape() {
        let t = Topology::single_crossbar(8);
        assert_eq!(t.n_switches, 1);
        assert_eq!(t.edges.len(), 8);
        assert!(is_connected(&t));
    }

    #[test]
    fn fat_tree_full_counts() {
        // 4-ary 3-tree at full population: 64 endpoints, 16 switches
        // per level * 3 levels = 48 switches; edges: 64 endpoint links
        // + 2 * (16 * 4) inter-level links.
        let t = Topology::fat_tree(4, 3, 64);
        assert_eq!(t.n_switches, 48);
        assert_eq!(t.edges.len(), 64 + 2 * 64);
        assert!(is_connected(&t));
    }

    #[test]
    fn fat_tree_two_level_counts() {
        // 12-ary 2-tree with 32 endpoints: leaves = ceil(32/12) = 3,
        // spine level has 12 positions all live (group_base = 0 < 3).
        let t = Topology::fat_tree(12, 2, 32);
        assert_eq!(t.n_endpoints, 32);
        assert_eq!(t.n_switches, 3 + 12);
        assert!(is_connected(&t));
    }

    #[test]
    fn fat_tree_pruned_is_connected() {
        for n in [1, 2, 3, 5, 17, 31, 63, 64] {
            let t = Topology::fat_tree(4, 3, n);
            assert!(is_connected(&t), "n={n}");
            assert_eq!(t.n_endpoints, n);
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let t = Topology::fat_tree(4, 3, 64);
        let mut seen = HashSet::new();
        for e in &t.edges {
            let key = (
                t.vertex_index(e.a).min(t.vertex_index(e.b)),
                t.vertex_index(e.a).max(t.vertex_index(e.b)),
            );
            assert!(seen.insert(key), "duplicate edge {e:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn fat_tree_overflow_panics() {
        Topology::fat_tree(4, 2, 17);
    }
}
