//! Static fabric partitioning for the conservative sharded engine.
//!
//! The sharded driver in `elanib_simcore::shard` needs two things from
//! the network layer: an assignment of model state to shards, and a
//! **lookahead** — a lower bound on the simulated delay of any
//! influence that crosses between shards. For a fabric the natural cut
//! is a set of cables: any cross-shard influence must traverse at least
//! one cut cable, and a cable traversal costs at least its propagation
//! delay. The minimum propagation over the cut is therefore a sound
//! lookahead, and with the 2004-era parts modelled here (25 ns of
//! cable + SerDes on both networks) it is far larger than zero — which
//! is what makes conservative windows worth anything.
//!
//! [`Partition::contiguous`] is deliberately simple and deterministic:
//! endpoints are split into `k` contiguous, balanced blocks (the same
//! `owner = e·k/n` rule the shard engine's tests use), and switches
//! join the shard of the first endpoint that reaches them in a
//! multi-source BFS seeded in endpoint order. Contiguous blocks match
//! how both chassis are physically built — neighboring ports share a
//! leaf element — so most traffic of a well-placed job stays
//! shard-local and only spine cables land in the cut.

use elanib_simcore::Dur;

use crate::params::FabricParams;
use crate::topology::Topology;

/// A static assignment of fabric vertices to shards, with the cut
/// edges and the lookahead they justify.
#[derive(Clone, Debug)]
pub struct Partition {
    pub n_shards: usize,
    /// Shard of each vertex, indexed by [`Topology::vertex_index`]
    /// (endpoints first, then switches).
    pub shard_of: Vec<usize>,
    /// Indices into `Topology::edges` of cables whose ends lie in
    /// different shards.
    pub cut_edges: Vec<usize>,
}

impl Partition {
    /// Partition `topo` into `k` shards: endpoint `e` goes to shard
    /// `e·k / n_endpoints` (contiguous, balanced blocks), and each
    /// switch takes the shard of the first endpoint that reaches it in
    /// a breadth-first search seeded with all endpoints in index order
    /// (deterministic; ties broken by the lower endpoint).
    pub fn contiguous(topo: &Topology, k: usize) -> Partition {
        assert!(k >= 1, "need at least one shard");
        assert!(
            k <= topo.n_endpoints,
            "more shards ({k}) than endpoints ({})",
            topo.n_endpoints
        );
        let nv = topo.n_vertices();
        let mut shard_of = vec![usize::MAX; nv];
        let mut queue = std::collections::VecDeque::with_capacity(nv);
        for (e, s) in shard_of.iter_mut().enumerate().take(topo.n_endpoints) {
            *s = e * k / topo.n_endpoints;
            queue.push_back(e);
        }
        let adj = topo.adjacency();
        while let Some(v) = queue.pop_front() {
            let s = shard_of[v];
            for &(n, _) in &adj[v] {
                let i = topo.vertex_index(n);
                if shard_of[i] == usize::MAX {
                    shard_of[i] = s;
                    queue.push_back(i);
                }
            }
        }
        assert!(
            shard_of.iter().all(|&s| s != usize::MAX),
            "topology has a switch unreachable from any endpoint"
        );
        let cut_edges = topo
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| shard_of[topo.vertex_index(e.a)] != shard_of[topo.vertex_index(e.b)])
            .map(|(i, _)| i)
            .collect();
        Partition {
            n_shards: k,
            shard_of,
            cut_edges,
        }
    }

    /// Shard owning endpoint `e`.
    pub fn shard_of_endpoint(&self, e: usize) -> usize {
        self.shard_of[e]
    }

    /// The conservative lookahead this cut supports under `params`:
    /// the minimum propagation delay over all cut cables (every cable
    /// shares `params.link.propagation` here, but the minimum is taken
    /// so a future per-cable calibration stays sound). `None` when no
    /// edge is cut — a single shard needs no lookahead at all.
    pub fn lookahead(&self, params: &FabricParams) -> Option<Dur> {
        if self.cut_edges.is_empty() {
            return None;
        }
        Some(
            self.cut_edges
                .iter()
                .map(|_| params.link.propagation)
                .min()
                .expect("non-empty cut"),
        )
    }

    /// Per-directed-pair cut lookahead under `params`: entry `[s][d]`
    /// is the minimum propagation delay over the cut cables joining
    /// shards `s` and `d` *directly*, `None` when no cut cable joins
    /// them (influence must then route through intermediate shards —
    /// which is exactly what lets the adaptive engine grant those
    /// pairs horizons beyond [`Partition::lookahead`]'s global
    /// minimum). Cables are bidirectional, so the matrix is symmetric;
    /// the diagonal is `None`. Feed it to
    /// [`elanib_simcore::Lookahead::Pairwise`] /
    /// [`elanib_simcore::run_sharded_with`].
    pub fn pair_lookahead(&self, topo: &Topology, params: &FabricParams) -> Vec<Vec<Option<Dur>>> {
        let k = self.n_shards;
        let mut pairs: Vec<Vec<Option<Dur>>> = vec![vec![None; k]; k];
        for &i in &self.cut_edges {
            let e = &topo.edges[i];
            let (a, b) = (
                self.shard_of[topo.vertex_index(e.a)],
                self.shard_of[topo.vertex_index(e.b)],
            );
            let delay = params.link.propagation;
            for (s, d) in [(a, b), (b, a)] {
                let cell = &mut pairs[s][d];
                *cell = Some(cell.map_or(delay, |c| c.min(delay)));
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{elan4, infiniband_4x};
    use elanib_simcore::{Outbox, ShardModel, ShardMsg, Sim};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::rc::Rc;

    #[test]
    fn single_shard_has_no_cut() {
        let t = Topology::fat_tree(4, 3, 64);
        let p = Partition::contiguous(&t, 1);
        assert!(p.cut_edges.is_empty());
        assert_eq!(p.lookahead(&elan4()), None);
        assert!(p.shard_of.iter().all(|&s| s == 0));
    }

    #[test]
    fn blocks_are_contiguous_and_balanced() {
        let t = Topology::fat_tree(12, 2, 96);
        for k in [2usize, 3, 4, 5] {
            let p = Partition::contiguous(&t, k);
            let mut counts = vec![0usize; k];
            let mut last = 0usize;
            for e in 0..t.n_endpoints {
                let s = p.shard_of_endpoint(e);
                assert!(s >= last, "endpoint blocks must be contiguous (k={k})");
                last = s;
                counts[s] += 1;
            }
            let (lo, hi) = (96 / k, 96usize.div_ceil(k));
            assert!(
                counts.iter().all(|&c| c == lo || c == hi),
                "unbalanced blocks {counts:?} (k={k})"
            );
        }
    }

    #[test]
    fn every_switch_is_assigned_and_cut_is_exactly_cross_shard() {
        let t = Topology::fat_tree(4, 3, 64);
        let p = Partition::contiguous(&t, 4);
        assert_eq!(p.shard_of.len(), t.n_vertices());
        let cut: std::collections::HashSet<usize> = p.cut_edges.iter().copied().collect();
        for (i, e) in t.edges.iter().enumerate() {
            let same = p.shard_of[t.vertex_index(e.a)] == p.shard_of[t.vertex_index(e.b)];
            assert_eq!(!same, cut.contains(&i), "edge {i} cut classification");
        }
        // A 4-way split of a fat tree must cut spine cables, and the
        // lookahead those cables support is the cable propagation.
        assert!(!p.cut_edges.is_empty());
        assert_eq!(
            p.lookahead(&infiniband_4x()),
            Some(infiniband_4x().link.propagation)
        );
        assert_eq!(p.lookahead(&elan4()), Some(elan4().link.propagation));
    }

    #[test]
    fn pair_lookahead_mirrors_the_cut() {
        let t = Topology::fat_tree(4, 3, 64);
        let params = infiniband_4x();
        for k in [2usize, 4, 8] {
            let p = Partition::contiguous(&t, k);
            let pairs = p.pair_lookahead(&t, &params);
            assert_eq!(pairs.len(), k);
            // Which shard pairs a cut cable joins, recomputed directly.
            let mut joined = vec![vec![false; k]; k];
            for &i in &p.cut_edges {
                let e = &t.edges[i];
                let (a, b) = (
                    p.shard_of[t.vertex_index(e.a)],
                    p.shard_of[t.vertex_index(e.b)],
                );
                joined[a][b] = true;
                joined[b][a] = true;
            }
            let mut min_pair: Option<Dur> = None;
            for s in 0..k {
                assert_eq!(pairs[s].len(), k);
                assert_eq!(pairs[s][s], None, "diagonal must stay empty (k={k})");
                for d in 0..k {
                    assert_eq!(pairs[s][d], pairs[d][s], "cables are bidirectional");
                    match pairs[s][d] {
                        Some(v) => {
                            assert!(joined[s][d], "pair ({s},{d}) declared without a cut cable");
                            assert_eq!(v, params.link.propagation);
                            min_pair = Some(min_pair.map_or(v, |m| m.min(v)));
                        }
                        None => assert!(!joined[s][d], "cut cable ({s},{d}) not declared"),
                    }
                }
            }
            // The pessimistic collapse of the matrix is exactly the
            // global lookahead the old scheme used.
            assert_eq!(min_pair, p.lookahead(&params), "k={k}");
        }
    }

    #[test]
    fn leaf_groups_stay_with_their_endpoints() {
        // With one shard per leaf group, no endpoint cable is cut —
        // every leaf switch joins the shard of its own ports, so the
        // cut is purely switch-to-switch spine cables.
        let t = Topology::fat_tree(4, 3, 64);
        let p = Partition::contiguous(&t, 16);
        for i in &p.cut_edges {
            let e = &t.edges[*i];
            assert!(
                matches!(e.a, crate::topology::NodeRef::Switch(_))
                    && matches!(e.b, crate::topology::NodeRef::Switch(_)),
                "cut edge {i} touches an endpoint"
            );
        }
    }

    /// A neighbor-exchange ring over the partitioned fat tree, run
    /// through the conservative engine with the Partition-derived
    /// lookahead: every endpoint repeatedly forwards a token to the
    /// next endpoint with exactly one cable propagation of delay (the
    /// minimum the cut permits). Sharded and serial runs must agree
    /// exactly on every arrival count and on the final clock.
    struct RingModel {
        topo_endpoints: usize,
        part: Partition,
        hops: u32,
        params: FabricParams,
    }

    #[derive(Clone, Copy)]
    struct Hop {
        dst: usize,
        ttl: u32,
    }

    /// Everything a queued forwarding closure needs, cheap to clone:
    /// shared config behind one `Rc`, plus the shard's sim and outbox.
    #[derive(Clone)]
    struct RingState {
        cfg: Rc<(usize, Partition, FabricParams)>,
        arrivals: Rc<RefCell<BTreeMap<usize, u64>>>,
        sim: Sim,
        outbox: Outbox<Hop>,
    }

    fn forward(st: &RingState, hop: Hop) {
        let (n, ref part, ref params) = *st.cfg;
        *st.arrivals.borrow_mut().entry(hop.dst).or_insert(0) += 1;
        if hop.ttl == 0 {
            return;
        }
        let next = Hop {
            dst: (hop.dst + 1) % n,
            ttl: hop.ttl - 1,
        };
        let delay = params.link.propagation;
        if part.shard_of_endpoint(next.dst) == part.shard_of_endpoint(hop.dst) {
            // Intra-shard hop: a plain timed event on this shard's own
            // wheel.
            let st2 = st.clone();
            st.sim
                .call_at(st.sim.now() + delay, move |_| forward(&st2, next));
        } else {
            st.outbox
                .send(part.shard_of_endpoint(next.dst), delay, next);
        }
    }

    impl ShardModel for RingModel {
        type Msg = Hop;
        type State = RingState;
        type Out = (BTreeMap<usize, u64>, u64);

        fn build(&mut self, shard: usize, sim: &Sim, outbox: &Outbox<Hop>) -> RingState {
            let st = RingState {
                cfg: Rc::new((self.topo_endpoints, self.part.clone(), self.params)),
                arrivals: Rc::new(RefCell::new(BTreeMap::new())),
                sim: sim.clone(),
                outbox: outbox.clone(),
            };
            // Each shard seeds a token at every 8th endpoint it owns.
            for e in (0..self.topo_endpoints).step_by(8) {
                if self.part.shard_of_endpoint(e) == shard {
                    forward(
                        &st,
                        Hop {
                            dst: e,
                            ttl: self.hops,
                        },
                    );
                }
            }
            st
        }

        fn deliver(&mut self, st: &mut RingState, _sim: &Sim, msg: ShardMsg<Hop>) {
            // The arrival takes effect at the message's timestamp, not
            // at whatever instant this shard's clock happens to hold —
            // the deliver phase only *schedules*, it never acts.
            let st2 = st.clone();
            let hop = msg.payload;
            st.sim.call_at(msg.at, move |_| forward(&st2, hop));
        }

        fn finish(&mut self, st: RingState, sim: &Sim) -> (BTreeMap<usize, u64>, u64) {
            (st.arrivals.take(), sim.now().as_ps())
        }
    }

    #[test]
    fn partitioned_ring_is_identical_serial_and_sharded() {
        use elanib_simcore::{run_sharded_with, Lookahead};
        let t = Topology::fat_tree(4, 3, 64);
        let params = elan4();
        let run = |k: usize, look: Lookahead| {
            let shards: Vec<(u64, RingModel)> = (0..k)
                .map(|_| {
                    (
                        7u64,
                        RingModel {
                            topo_endpoints: t.n_endpoints,
                            part: Partition::contiguous(&t, k),
                            hops: 200,
                            params,
                        },
                    )
                })
                .collect();
            let (outs, stats) = run_sharded_with(look, shards);
            let mut merged: BTreeMap<usize, u64> = BTreeMap::new();
            let mut end = 0u64;
            for (map, t_end) in outs {
                for (kk, v) in map {
                    *merged.entry(kk).or_insert(0) += v;
                }
                end = end.max(t_end);
            }
            (merged, end, stats)
        };
        let uniform = |k: usize| {
            let part = Partition::contiguous(&t, k);
            Lookahead::Uniform(part.lookahead(&params).unwrap_or(params.link.propagation))
        };
        // The ring model's traffic crosses only ring-adjacent endpoint
        // blocks with one cable propagation of delay, so the sparse
        // pairwise spec it justifies declares exactly those pairs. (It
        // abstracts the fabric to endpoint-to-endpoint hops, so the
        // spec bounds the *model's* influence graph, not the physical
        // cut matrix — which would route block-to-block influence
        // through the spine-owning shard.)
        let ring_pairs = |k: usize| -> Lookahead {
            let pairs: Vec<Vec<Option<Dur>>> = (0..k)
                .map(|s| {
                    (0..k)
                        .map(|d| {
                            (((s + 1) % k == d) || ((d + 1) % k == s))
                                .then_some(params.link.propagation)
                        })
                        .collect()
                })
                .collect();
            Lookahead::Pairwise(pairs)
        };
        let (serial, serial_end, _) = run(1, uniform(1));
        assert!(!serial.is_empty());
        for k in [2usize, 4] {
            let (sharded, end, stats) = run(k, uniform(k));
            assert_eq!(sharded, serial, "arrival counts diverged at k={k}");
            assert_eq!(end, serial_end, "final clock diverged at k={k}");
            assert!(stats.messages > 0, "a 4-ary tree split must cross shards");
            assert!(!stats.adaptive);
            // Adaptive per-pair horizons: identical observations, and
            // the sparse ring spec must not need more barrier rounds.
            let (ada, ada_end, ada_stats) = run(k, ring_pairs(k));
            assert_eq!(ada, serial, "adaptive arrivals diverged at k={k}");
            assert_eq!(ada_end, serial_end, "adaptive clock diverged at k={k}");
            assert!(ada_stats.adaptive, "pairwise spec must engage adaptive");
            assert!(
                ada_stats.rounds <= stats.rounds,
                "adaptive rounds {} exceed uniform {} at k={k}",
                ada_stats.rounds,
                stats.rounds
            );
        }
    }
}
