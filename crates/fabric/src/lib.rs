//! # elanib-fabric — network fabric models
//!
//! The cables-and-switches layer of the reproduction. A [`Topology`]
//! (single crossbar or generalized k-ary n-tree, matching the internal
//! structure of the Voltaire ISR 9600 and the Quadrics QS5A chassis) is
//! combined with per-network [`params::FabricParams`] into a runtime
//! [`Fabric`] that carries messages with cut-through pipelining and
//! per-directed-link contention.
//!
//! Latency anatomy of one message (uncontended):
//!
//! ```text
//! serialization(wire bytes)            -- once, cut-through
//! + propagation × cables on path
//! + hop_latency × switches on path
//! ```
//!
//! plus queueing wherever a directed link is already busy.

pub mod fabric;
pub mod faults;
pub mod params;
pub mod partition;
pub mod routing;
pub mod topology;

pub use fabric::{CongStats, Fabric, WireOutcome};
pub use faults::{FaultPlan, FaultStats};
pub use params::{elan4, infiniband_4x, roce_ethernet, FabricParams, LinkParams, SwitchParams};
pub use partition::Partition;
pub use routing::Routes;
pub use topology::{Edge, NodeRef, Topology};

/// Build the fabric a 2004-era deployment of `nodes` nodes would use.
///
/// * InfiniBand: one 96-port ISR 9600 modelled as a 12-ary 2-tree
///   (capacity 144) — the paper's IB partition was 96 nodes on one
///   chassis.
/// * Elan-4: one 64-port QS5A modelled as a 4-ary 3-tree (capacity 64).
pub fn ib_fabric(nodes: usize) -> Fabric {
    Fabric::new(Topology::fat_tree(12, 2, nodes), infiniband_4x())
}

pub fn elan_fabric(nodes: usize) -> Fabric {
    Fabric::new(Topology::fat_tree(4, 3, nodes), elan4())
}

/// [`ib_fabric`] with an explicit fault plan (`None` still honours
/// `ELANIB_FAULTS`, matching `Fabric::new`).
pub fn ib_fabric_with(nodes: usize, plan: Option<std::sync::Arc<FaultPlan>>) -> Fabric {
    let plan = plan.or_else(faults::env_plan);
    Fabric::with_faults(Topology::fat_tree(12, 2, nodes), infiniband_4x(), plan)
}

/// [`elan_fabric`] with an explicit fault plan (`None` still honours
/// `ELANIB_FAULTS`).
pub fn elan_fabric_with(nodes: usize, plan: Option<std::sync::Arc<FaultPlan>>) -> Fabric {
    let plan = plan.or_else(faults::env_plan);
    Fabric::with_faults(Topology::fat_tree(4, 3, nodes), elan4(), plan)
}

/// RoCEv2 deployment fabric (EXTENSION): the same 12-ary 2-tree shape
/// as the InfiniBand chassis, carried over 10GbE links.
pub fn roce_fabric(nodes: usize) -> Fabric {
    Fabric::new(Topology::fat_tree(12, 2, nodes), roce_ethernet())
}

/// [`roce_fabric`] with an explicit fault plan (`None` still honours
/// `ELANIB_FAULTS`).
pub fn roce_fabric_with(nodes: usize, plan: Option<std::sync::Arc<FaultPlan>>) -> Fabric {
    let plan = plan.or_else(faults::env_plan);
    Fabric::with_faults(Topology::fat_tree(12, 2, nodes), roce_ethernet(), plan)
}
