//! Runtime fabric instance: directed channels per cable, cut-through
//! message forwarding with per-link contention.
//!
//! The forwarding model is packet-train cut-through: a message's head
//! ripples through the path paying per-switch hop latency and
//! propagation per cable, while each directed link it crosses is
//! reserved for the message's full serialization time. This captures
//! the two first-order effects the experiments need — pipelining (large
//! messages pay serialization roughly once, not per hop) and
//! contention (two messages crossing the same directed link serialize).

use elanib_simcore::{Dur, FifoChannel, Sim, SimTime};

use crate::params::FabricParams;
use crate::routing::Routes;
use crate::topology::Topology;

/// A fabric ready to carry traffic in one simulation.
pub struct Fabric {
    pub topo: Topology,
    pub params: FabricParams,
    routes: Routes,
    /// Two directed channels per undirected edge: `2*edge + dir`,
    /// where `dir = 0` carries a→b and `dir = 1` carries b→a.
    channels: Vec<FifoChannel>,
}

impl Fabric {
    pub fn new(topo: Topology, params: FabricParams) -> Fabric {
        let routes = Routes::compute(&topo);
        let channels = (0..topo.edges.len() * 2)
            .map(|_| FifoChannel::new(params.link.data_rate, Dur::ZERO))
            .collect();
        Fabric {
            topo,
            params,
            routes,
            channels,
        }
    }

    pub fn n_endpoints(&self) -> usize {
        self.topo.n_endpoints
    }

    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// Reserve the path for a `bytes`-long message from endpoint `src`
    /// to endpoint `dst`, starting no earlier than now, and return the
    /// simulated time at which the **last byte arrives at `dst`'s NIC
    /// port**. Purely a reservation — the caller models occupancy by
    /// sleeping until the returned instant.
    ///
    /// `src == dst` is not meaningful at the fabric level (intra-node
    /// traffic never reaches the cable) and panics.
    pub fn deliver_at(&self, sim: &Sim, src: usize, dst: usize, bytes: u64) -> SimTime {
        assert_ne!(src, dst, "fabric loopback is handled above the NIC");
        let wire = self.params.link.wire_bytes(bytes);
        let ser = self.params.link.serialize(bytes);
        let hop = self.params.switch.hop_latency;
        let prop = self.params.link.propagation;

        let verts = self.routes.vertex_path(&self.topo, src, dst);
        let edges = self.routes.path(src, dst);

        // Head time advances link by link; each link is additionally
        // reserved for the full serialization time so later messages
        // queue behind this one.
        let mut head = sim.now();
        let mut stall = Dur::ZERO;
        for (i, &edge) in edges.iter().enumerate() {
            let from = verts[i];
            let ch = &self.channels[directed_channel(&self.topo, edge, from)];
            // Cut-through: the head cannot enter the link before the
            // link has drained whatever is ahead of it.
            let free = ch.next_free();
            if free > head {
                stall += free.since(head);
            }
            head = head.max_t(free);
            // Occupy the link for our serialization time starting at
            // `head`: the link is busy for [head, head+ser).
            let _ = ch.reserve_from(head, wire);
            head += prop;
            if i + 1 < edges.len() {
                // The next vertex is a switch: pay its cut-through
                // latency before the head appears on the next link.
                head += hop;
            }
        }
        if let Some(tr) = sim.tracer() {
            tr.add("fabric.messages", 1);
            tr.add("fabric.wire_bytes", wire * edges.len() as u64);
            if !stall.is_zero() {
                tr.add("fabric.contention_stalls", 1);
                tr.observe("fabric.stall_ps", stall.as_ps());
            }
        }
        head + ser
    }

    /// Hop count between endpoints (for latency accounting / tests).
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        self.routes.hops(src, dst)
    }

    /// Total bytes carried over all directed links (stats).
    pub fn total_link_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats().bytes_total).sum()
    }

    /// Bytes carried by each directed channel, indexed `2*edge + dir`.
    pub fn per_link_bytes(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.stats().bytes_total).collect()
    }

    /// Fold this fabric's per-link statistics into the metrics
    /// registry. Called once at end of run (per-link counters are
    /// string-keyed, far too expensive to bump per message); only links
    /// that actually carried traffic get a counter.
    pub fn record_metrics(&self, tr: &elanib_simcore::trace::Tracer) {
        let mut busiest = 0u64;
        for (i, ch) in self.channels.iter().enumerate() {
            let st = ch.stats();
            if st.bytes_total == 0 {
                continue;
            }
            busiest = busiest.max(st.bytes_total);
            tr.add(format!("fabric.link{i}.bytes"), st.bytes_total);
        }
        tr.add("fabric.links_used", self.per_link_bytes().iter().filter(|&&b| b > 0).count() as u64);
        tr.gauge("fabric.busiest_link_bytes", busiest as i64);
    }
}

/// Index of the directed channel carrying traffic out of vertex `from`
/// across `edge`.
fn directed_channel(topo: &Topology, edge: usize, from: usize) -> usize {
    let e = topo.edges[edge];
    if topo.vertex_index(e.a) == from {
        2 * edge
    } else {
        debug_assert_eq!(topo.vertex_index(e.b), from);
        2 * edge + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{elan4, infiniband_4x};
    use std::cell::Cell;
    use std::rc::Rc;

    fn ib_crossbar(n: usize) -> Fabric {
        Fabric::new(Topology::single_crossbar(n), infiniband_4x())
    }

    #[test]
    fn small_message_latency_is_hops_plus_serialization() {
        let sim = Sim::new(1);
        let f = ib_crossbar(4);
        let p = f.params;
        let t = f.deliver_at(&sim, 0, 1, 8);
        // 2 cables + 1 switch: serialization once (cut-through),
        // 2 propagations, 1 hop latency.
        let expect = p.link.serialize(8) + p.link.propagation * 2 + p.switch.hop_latency;
        assert_eq!(t, SimTime::ZERO + expect);
    }

    #[test]
    fn large_message_dominated_by_one_serialization() {
        let sim = Sim::new(1);
        let f = Fabric::new(Topology::fat_tree(4, 3, 64), elan4());
        let bytes = 1_000_000;
        let t = f.deliver_at(&sim, 0, 63, bytes);
        let ser = f.params.link.serialize(bytes);
        // 6 hops of pipeline latency are negligible next to 1 MB of
        // serialization: total must be within 1% of one serialization.
        assert!(t.as_secs_f64() < ser.as_secs_f64() * 1.01);
        assert!(t.as_secs_f64() >= ser.as_secs_f64());
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        // Two endpoints under the same leaf both send 1 MB to the same
        // destination: the destination's cable is shared, so the second
        // message finishes a full serialization later.
        let sim = Sim::new(1);
        let f = ib_crossbar(4);
        let t1 = f.deliver_at(&sim, 0, 3, 1_000_000);
        let t2 = f.deliver_at(&sim, 1, 3, 1_000_000);
        let ser = f.params.link.serialize(1_000_000);
        assert!(t2 >= t1 + (ser - Dur::from_ns(1)), "t1={t1:?} t2={t2:?}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let sim = Sim::new(1);
        let f = ib_crossbar(8);
        let t1 = f.deliver_at(&sim, 0, 1, 1_000_000);
        let t2 = f.deliver_at(&sim, 2, 3, 1_000_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn delivery_usable_from_tasks() {
        let sim = Sim::new(1);
        let f = Rc::new(ib_crossbar(2));
        let done = Rc::new(Cell::new(false));
        let (ff, s, d) = (f.clone(), sim.clone(), done.clone());
        sim.spawn("sender", async move {
            let at = ff.deliver_at(&s, 0, 1, 4096);
            s.sleep_until(at).await;
            assert!(s.now() > SimTime::ZERO);
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn elan_delivers_faster_than_ib() {
        let sim = Sim::new(1);
        let ib = Fabric::new(Topology::fat_tree(12, 2, 32), infiniband_4x());
        let elan = Fabric::new(Topology::fat_tree(4, 3, 32), elan4());
        for bytes in [8u64, 1024, 65536, 1_000_000] {
            let t_ib = ib.deliver_at(&sim, 0, 31, bytes);
            let t_el = elan.deliver_at(&sim, 0, 31, bytes);
            assert!(t_el < t_ib, "bytes={bytes}: elan {t_el:?} vs ib {t_ib:?}");
        }
    }
}
