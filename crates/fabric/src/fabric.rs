//! Runtime fabric instance: directed channels per cable, cut-through
//! message forwarding with per-link contention.
//!
//! The forwarding model is packet-train cut-through: a message's head
//! ripples through the path paying per-switch hop latency and
//! propagation per cable, while each directed link it crosses is
//! reserved for the message's full serialization time. This captures
//! the two first-order effects the experiments need — pipelining (large
//! messages pay serialization roughly once, not per hop) and
//! contention (two messages crossing the same directed link serialize).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use elanib_simcore::{Dur, FifoChannel, FxHashMap, Sim, SimTime};

use crate::faults::{self, FaultPlan, FaultState, FaultStats};
use crate::params::FabricParams;
use crate::routing::Routes;
use crate::topology::Topology;

/// Outcome of one wire attempt under fault injection
/// ([`Fabric::deliver_attempt`]).
#[derive(Clone, Copy, Debug)]
pub enum WireOutcome {
    /// The message crossed the fabric. `lost`/`corrupted` count the
    /// packets the fault process hit en route (the *transport* decides
    /// what that means: IB retransmits the whole message, Elan pays a
    /// per-packet hardware retry). `rerouted` marks an adaptive detour
    /// around a downed link; `hops` is the path length actually taken.
    Delivered {
        arrives: SimTime,
        lost: u64,
        corrupted: u64,
        hops: u32,
        rerouted: bool,
    },
    /// Every usable route crosses a downed link; `until` is when the
    /// blocking outage window ends.
    LinkDown { until: SimTime },
}

/// A fabric ready to carry traffic in one simulation.
pub struct Fabric {
    pub topo: Topology,
    pub params: FabricParams,
    routes: Routes,
    /// Two directed channels per undirected edge: `2*edge + dir`,
    /// where `dir = 0` carries a→b and `dir = 1` carries b→a.
    channels: Vec<FifoChannel>,
    /// Fault-injection state; `None` (the overwhelmingly common case)
    /// keeps the zero-fault hot path untouched.
    faults: Option<Rc<FaultState>>,
    /// Lazily filled per-(src, dst) static route cache. Routing is
    /// static and deterministic, yet every delivery used to rebuild
    /// the same two path vectors from the next-hop tables — on every
    /// message of every exchange. Filled on first use per pair.
    path_cache: RefCell<FxHashMap<(usize, usize), CachedPath>>,
    /// Per-priority pause/ECN wire-signal totals (EXTENSION, RoCEv2).
    cong: RefCell<CongStats>,
}

/// Switch path + channel path for one (src, dst) pair, shared between
/// the cache and in-flight deliveries.
type CachedPath = Rc<(Vec<usize>, Vec<usize>)>;

/// Per-priority congestion-signal totals (EXTENSION, RoCEv2): 802.1Qbb
/// PFC pause frames and ECN congestion-experienced marks emitted on
/// this fabric's wires, indexed by traffic class `0..8`. All-zero on
/// the IB/Elan paths — only the RoCE congestion machinery emits them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CongStats {
    pub pause_frames: [u64; 8],
    pub ecn_marks: [u64; 8],
}

impl CongStats {
    /// Total pause frames across all traffic classes.
    pub fn total_pauses(&self) -> u64 {
        self.pause_frames.iter().sum()
    }
    /// Total ECN marks across all traffic classes.
    pub fn total_marks(&self) -> u64 {
        self.ecn_marks.iter().sum()
    }
}

impl Fabric {
    /// Build a fabric, picking up the process-wide `ELANIB_FAULTS`
    /// plan if one is set (see [`faults::env_plan`]).
    pub fn new(topo: Topology, params: FabricParams) -> Fabric {
        Self::with_faults(topo, params, faults::env_plan())
    }

    /// Build a fabric with an explicit fault plan (or none). An
    /// effectless plan is dropped so the fault-free hot path stays
    /// byte-identical to a plan-free run.
    pub fn with_faults(
        topo: Topology,
        params: FabricParams,
        plan: Option<Arc<FaultPlan>>,
    ) -> Fabric {
        let routes = Routes::compute(&topo);
        let channels: Vec<FifoChannel> = (0..topo.edges.len() * 2)
            .map(|_| FifoChannel::new(params.link.data_rate, Dur::ZERO))
            .collect();
        let faults = plan
            .filter(|p| !p.is_effectless())
            .map(|p| Rc::new(FaultState::new(p, channels.len())));
        Fabric {
            topo,
            params,
            routes,
            channels,
            faults,
            path_cache: RefCell::new(FxHashMap::default()),
            cong: RefCell::new(CongStats::default()),
        }
    }

    /// The static `(vertices, edges)` route for `src -> dst`, computed
    /// once per pair and shared thereafter.
    fn static_path(&self, src: usize, dst: usize) -> Rc<(Vec<usize>, Vec<usize>)> {
        if let Some(p) = self.path_cache.borrow().get(&(src, dst)) {
            return p.clone();
        }
        let verts = self.routes.vertex_path(&self.topo, src, dst);
        let edges = self.routes.path(src, dst);
        let p = Rc::new((verts, edges));
        self.path_cache.borrow_mut().insert((src, dst), p.clone());
        p
    }

    /// The fault-injection state, when a plan is active.
    pub fn faults(&self) -> Option<&Rc<FaultState>> {
        self.faults.as_ref()
    }

    /// End-of-run fault/recovery totals (all-zero when no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    pub fn n_endpoints(&self) -> usize {
        self.topo.n_endpoints
    }

    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// Reserve the path for a `bytes`-long message from endpoint `src`
    /// to endpoint `dst`, starting no earlier than now, and return the
    /// simulated time at which the **last byte arrives at `dst`'s NIC
    /// port**. Purely a reservation — the caller models occupancy by
    /// sleeping until the returned instant.
    ///
    /// `src == dst` is not meaningful at the fabric level (intra-node
    /// traffic never reaches the cable) and panics.
    pub fn deliver_at(&self, sim: &Sim, src: usize, dst: usize, bytes: u64) -> SimTime {
        assert_ne!(src, dst, "fabric loopback is handled above the NIC");
        let wire = self.params.link.wire_bytes(bytes);
        let ser = self.params.link.serialize(bytes);
        let hop = self.params.switch.hop_latency;
        let prop = self.params.link.propagation;

        let path = self.static_path(src, dst);
        let (verts, edges) = (&path.0, &path.1);

        // Head time advances link by link; each link is additionally
        // reserved for the full serialization time so later messages
        // queue behind this one.
        let mut head = sim.now();
        let mut stall = Dur::ZERO;
        for (i, &edge) in edges.iter().enumerate() {
            let from = verts[i];
            let ch = &self.channels[directed_channel(&self.topo, edge, from)];
            // Cut-through: the head cannot enter the link before the
            // link has drained whatever is ahead of it.
            let free = ch.next_free();
            if free > head {
                stall += free.since(head);
            }
            head = head.max_t(free);
            // Occupy the link for our serialization time starting at
            // `head`: the link is busy for [head, head+ser).
            let _ = ch.reserve_from(head, wire);
            head += prop;
            if i + 1 < edges.len() {
                // The next vertex is a switch: pay its cut-through
                // latency before the head appears on the next link.
                head += hop;
            }
        }
        if let Some(tr) = sim.tracer() {
            tr.add("fabric.messages", 1);
            tr.add("fabric.wire_bytes", wire * edges.len() as u64);
            if !stall.is_zero() {
                tr.add("fabric.contention_stalls", 1);
                tr.observe("fabric.stall_ps", stall.as_ps());
            }
        }
        head + ser
    }

    /// One wire attempt under the active fault plan: like
    /// [`Fabric::deliver_at`], but the path may cross outage windows
    /// (→ [`WireOutcome::LinkDown`], or an adaptive detour when
    /// `adaptive` — the Elan behaviour), links may be degraded
    /// (serialization stretched by the reciprocal of the factor), and
    /// each MTU packet is drawn against the loss/corruption rates.
    ///
    /// Without an active plan this is exactly `deliver_at` — same
    /// reservations, same timing, zero extra work.
    ///
    /// Modelling notes: outage/degradation windows are evaluated at
    /// the attempt's start time (windows are µs–ms, message flight
    /// times ns–µs, so the head never straddles a window edge in
    /// practice), and a `LinkDown` attempt reserves nothing — the
    /// message never entered the fabric.
    pub fn deliver_attempt(
        &self,
        sim: &Sim,
        src: usize,
        dst: usize,
        bytes: u64,
        adaptive: bool,
    ) -> WireOutcome {
        let fs = match &self.faults {
            Some(fs) => fs,
            None => {
                return WireOutcome::Delivered {
                    arrives: self.deliver_at(sim, src, dst, bytes),
                    lost: 0,
                    corrupted: 0,
                    hops: self.routes.hops(src, dst),
                    rerouted: false,
                }
            }
        };
        assert_ne!(src, dst, "fabric loopback is handled above the NIC");
        let now = sim.now();

        let path = self.static_path(src, dst);
        let mut verts: &[usize] = &path.0;
        let mut edges: &[usize] = &path.1;
        let detour_path: (Vec<usize>, Vec<usize>);
        let mut rerouted = false;
        let down_until = edges
            .iter()
            .filter_map(|&e| fs.link_down(e, now))
            .fold(None::<SimTime>, |acc, t| {
                Some(acc.map_or(t, |a| a.max_t(t)))
            });
        if let Some(until) = down_until {
            let detour = if adaptive {
                self.routes
                    .path_avoiding(&self.topo, src, dst, &|e| fs.link_down(e, now).is_some())
            } else {
                None
            };
            match detour {
                Some((v, e)) => {
                    fs.note_reroute();
                    if let Some(tr) = sim.tracer() {
                        tr.add("fault.reroutes", 1);
                    }
                    detour_path = (v, e);
                    verts = &detour_path.0;
                    edges = &detour_path.1;
                    rerouted = true;
                }
                None => {
                    fs.note_down_hit();
                    if let Some(tr) = sim.tracer() {
                        tr.add("fault.link_down_hits", 1);
                    }
                    return WireOutcome::LinkDown { until };
                }
            }
        }

        let wire = self.params.link.wire_bytes(bytes);
        let ser = self.params.link.serialize(bytes);
        let hop = self.params.switch.hop_latency;
        let prop = self.params.link.propagation;
        let packets = bytes.div_ceil(self.params.link.mtu as u64).max(1);

        let mut head = now;
        let mut stall = Dur::ZERO;
        let (mut lost, mut corrupted) = (0u64, 0u64);
        let mut min_factor = 1.0f64;
        for (i, &edge) in edges.iter().enumerate() {
            let from = verts[i];
            let chan_idx = directed_channel(&self.topo, edge, from);
            let ch = &self.channels[chan_idx];
            let factor = fs.degrade(edge, now);
            min_factor = min_factor.min(factor);
            let wire_eff = if factor < 1.0 {
                (wire as f64 / factor).ceil() as u64
            } else {
                wire
            };
            let free = ch.next_free();
            if free > head {
                stall += free.since(head);
            }
            head = head.max_t(free);
            let _ = ch.reserve_from(head, wire_eff);
            let (l, c) = fs.sample_link(chan_idx, packets);
            lost += l;
            corrupted += c;
            head += prop;
            if i + 1 < edges.len() {
                head += hop;
            }
        }
        if let Some(tr) = sim.tracer() {
            tr.add("fabric.messages", 1);
            tr.add("fabric.wire_bytes", wire * edges.len() as u64);
            if !stall.is_zero() {
                tr.add("fabric.contention_stalls", 1);
                tr.observe("fabric.stall_ps", stall.as_ps());
            }
        }
        // Cut-through still pays serialization once; a degraded link on
        // the path throttles the whole pipeline to its rate.
        let ser_eff = if min_factor < 1.0 {
            ser.scale(1.0 / min_factor)
        } else {
            ser
        };
        WireOutcome::Delivered {
            arrives: head + ser_eff,
            lost,
            corrupted,
            hops: edges.len() as u32,
            rerouted,
        }
    }

    /// Hop count between endpoints (for latency accounting / tests).
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        self.routes.hops(src, dst)
    }

    /// Worst queueing backlog on the static `src -> dst` route at
    /// `now`: how long the most congested directed link on the path
    /// stays busy past `now`. This is the congestion signal RoCEv2's
    /// PFC/ECN machinery watches (switch egress queue depth, expressed
    /// in drain time). Reading it reserves nothing.
    pub fn path_backlog(&self, now: SimTime, src: usize, dst: usize) -> Dur {
        if src == dst {
            return Dur::ZERO;
        }
        let path = self.static_path(src, dst);
        let (verts, edges) = (&path.0, &path.1);
        let mut worst = Dur::ZERO;
        for (i, &edge) in edges.iter().enumerate() {
            let ch = &self.channels[directed_channel(&self.topo, edge, verts[i])];
            let free = ch.next_free();
            if free > now {
                let d = free.since(now);
                if d > worst {
                    worst = d;
                }
            }
        }
        worst
    }

    /// Record one 802.1Qbb PFC pause frame on traffic class `prio`
    /// (EXTENSION, RoCEv2 wire signaling).
    pub fn note_pause(&self, prio: usize) {
        self.cong.borrow_mut().pause_frames[prio & 7] += 1;
    }

    /// Record one ECN congestion-experienced mark on traffic class
    /// `prio` (EXTENSION, RoCEv2 wire signaling).
    pub fn note_ecn(&self, prio: usize) {
        self.cong.borrow_mut().ecn_marks[prio & 7] += 1;
    }

    /// End-of-run per-priority pause/ECN totals (all-zero off the RoCE
    /// path).
    pub fn cong_stats(&self) -> CongStats {
        self.cong.borrow().clone()
    }

    /// Total bytes carried over all directed links (stats).
    pub fn total_link_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats().bytes_total).sum()
    }

    /// Bytes carried by each directed channel, indexed `2*edge + dir`.
    pub fn per_link_bytes(&self) -> Vec<u64> {
        self.channels
            .iter()
            .map(|c| c.stats().bytes_total)
            .collect()
    }

    /// Fold this fabric's per-link statistics into the metrics
    /// registry. Called once at end of run (per-link counters are
    /// string-keyed, far too expensive to bump per message); only links
    /// that actually carried traffic get a counter.
    pub fn record_metrics(&self, tr: &elanib_simcore::trace::Tracer) {
        let mut busiest = 0u64;
        for (i, ch) in self.channels.iter().enumerate() {
            let st = ch.stats();
            if st.bytes_total == 0 {
                continue;
            }
            busiest = busiest.max(st.bytes_total);
            tr.add(format!("fabric.link{i}.bytes"), st.bytes_total);
        }
        tr.add(
            "fabric.links_used",
            self.per_link_bytes().iter().filter(|&&b| b > 0).count() as u64,
        );
        tr.gauge("fabric.busiest_link_bytes", busiest as i64);
        if let Some(fs) = &self.faults {
            let st = fs.stats();
            for (key, v) in [
                ("fault.drops", st.drops),
                ("fault.corrupts", st.corrupts),
                ("fault.reroutes", st.reroutes),
                ("fault.link_down_hits", st.down_hits),
                ("fault.outage_waits", st.outage_waits),
                ("ib.retransmits", st.ib_retransmits),
                ("ib.rnr_naks", st.rnr_naks),
                ("ib.qp_errors", st.qp_errors),
                ("elan.link_retries", st.elan_link_retries),
            ] {
                if v > 0 {
                    tr.add(key, v);
                }
            }
        }
        let cong = self.cong.borrow();
        for p in 0..8 {
            if cong.pause_frames[p] > 0 {
                tr.add(format!("roce.prio{p}.pause_frames"), cong.pause_frames[p]);
            }
            if cong.ecn_marks[p] > 0 {
                tr.add(format!("roce.prio{p}.ecn_marks"), cong.ecn_marks[p]);
            }
        }
    }
}

/// Index of the directed channel carrying traffic out of vertex `from`
/// across `edge`.
fn directed_channel(topo: &Topology, edge: usize, from: usize) -> usize {
    let e = topo.edges[edge];
    if topo.vertex_index(e.a) == from {
        2 * edge
    } else {
        debug_assert_eq!(topo.vertex_index(e.b), from);
        2 * edge + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{elan4, infiniband_4x};
    use std::cell::Cell;
    use std::rc::Rc;

    fn ib_crossbar(n: usize) -> Fabric {
        Fabric::new(Topology::single_crossbar(n), infiniband_4x())
    }

    #[test]
    fn small_message_latency_is_hops_plus_serialization() {
        let sim = Sim::new(1);
        let f = ib_crossbar(4);
        let p = f.params;
        let t = f.deliver_at(&sim, 0, 1, 8);
        // 2 cables + 1 switch: serialization once (cut-through),
        // 2 propagations, 1 hop latency.
        let expect = p.link.serialize(8) + p.link.propagation * 2 + p.switch.hop_latency;
        assert_eq!(t, SimTime::ZERO + expect);
    }

    #[test]
    fn large_message_dominated_by_one_serialization() {
        let sim = Sim::new(1);
        let f = Fabric::new(Topology::fat_tree(4, 3, 64), elan4());
        let bytes = 1_000_000;
        let t = f.deliver_at(&sim, 0, 63, bytes);
        let ser = f.params.link.serialize(bytes);
        // 6 hops of pipeline latency are negligible next to 1 MB of
        // serialization: total must be within 1% of one serialization.
        assert!(t.as_secs_f64() < ser.as_secs_f64() * 1.01);
        assert!(t.as_secs_f64() >= ser.as_secs_f64());
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        // Two endpoints under the same leaf both send 1 MB to the same
        // destination: the destination's cable is shared, so the second
        // message finishes a full serialization later.
        let sim = Sim::new(1);
        let f = ib_crossbar(4);
        let t1 = f.deliver_at(&sim, 0, 3, 1_000_000);
        let t2 = f.deliver_at(&sim, 1, 3, 1_000_000);
        let ser = f.params.link.serialize(1_000_000);
        assert!(t2 >= t1 + (ser - Dur::from_ns(1)), "t1={t1:?} t2={t2:?}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let sim = Sim::new(1);
        let f = ib_crossbar(8);
        let t1 = f.deliver_at(&sim, 0, 1, 1_000_000);
        let t2 = f.deliver_at(&sim, 2, 3, 1_000_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn delivery_usable_from_tasks() {
        let sim = Sim::new(1);
        let f = Rc::new(ib_crossbar(2));
        let done = Rc::new(Cell::new(false));
        let (ff, s, d) = (f.clone(), sim.clone(), done.clone());
        sim.spawn("sender", async move {
            let at = ff.deliver_at(&s, 0, 1, 4096);
            s.sleep_until(at).await;
            assert!(s.now() > SimTime::ZERO);
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn attempt_without_plan_matches_deliver_at() {
        let sim = Sim::new(1);
        let a = ib_crossbar(4);
        let b = ib_crossbar(4);
        let direct = a.deliver_at(&sim, 0, 1, 4096);
        match b.deliver_attempt(&sim, 0, 1, 4096, false) {
            WireOutcome::Delivered {
                arrives,
                lost,
                corrupted,
                hops,
                rerouted,
            } => {
                assert_eq!(arrives, direct);
                assert_eq!((lost, corrupted), (0, 0));
                assert_eq!(hops, 2);
                assert!(!rerouted);
            }
            WireOutcome::LinkDown { .. } => panic!("no plan, no outage"),
        }
        assert_eq!(b.per_link_bytes(), a.per_link_bytes());
        assert_eq!(b.fault_stats(), crate::faults::FaultStats::default());
    }

    #[test]
    fn outage_blocks_static_route_without_adaptivity() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let sim = Sim::new(1);
        let base = Fabric::new(Topology::fat_tree(12, 2, 16), infiniband_4x());
        let dead = base.routes().path(0, 15)[1];
        let plan = FaultPlan::parse(&format!("outage=link{dead}@0+1ms")).unwrap();
        let f = Fabric::with_faults(
            Topology::fat_tree(12, 2, 16),
            infiniband_4x(),
            Some(Arc::new(plan)),
        );
        match f.deliver_attempt(&sim, 0, 15, 4096, false) {
            WireOutcome::LinkDown { until } => {
                assert_eq!(until, SimTime::ZERO + Dur::from_ms(1));
            }
            WireOutcome::Delivered { .. } => panic!("static route must hit the outage"),
        }
        // A blocked attempt reserves nothing.
        assert_eq!(f.total_link_bytes(), 0);
        assert_eq!(f.fault_stats().down_hits, 1);
    }

    #[test]
    fn adaptive_attempt_reroutes_around_outage() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let sim = Sim::new(1);
        let base = Fabric::new(Topology::fat_tree(4, 3, 16), elan4());
        let dead = base.routes().path(0, 15)[1];
        let plan = FaultPlan::parse(&format!("outage=link{dead}@0+1ms")).unwrap();
        let f = Fabric::with_faults(Topology::fat_tree(4, 3, 16), elan4(), Some(Arc::new(plan)));
        let expected_hops = f.hops(0, 15);
        match f.deliver_attempt(&sim, 0, 15, 4096, true) {
            WireOutcome::Delivered { rerouted, hops, .. } => {
                assert!(rerouted);
                // Fat-tree up-phase has equal-cost siblings: the
                // detour keeps the hop count.
                assert_eq!(hops, expected_hops);
            }
            WireOutcome::LinkDown { .. } => panic!("adaptive routing must detour"),
        }
        // The dead edge carried nothing in either direction.
        let per_link = f.per_link_bytes();
        assert_eq!(per_link[2 * dead] + per_link[2 * dead + 1], 0);
        assert_eq!(f.fault_stats().reroutes, 1);
    }

    #[test]
    fn outage_boundary_at_exact_packet_timestamps() {
        use crate::faults::FaultPlan;
        use std::cell::RefCell;
        use std::sync::Arc;
        // A packet attempted at *exactly* the window start is down; one
        // at exactly the end sails through ([start, end) is
        // end-exclusive). Probed from simulation tasks so the attempt
        // really happens at those clock values.
        let base = ib_crossbar(4);
        let dead = base.routes().path(0, 1)[0];
        let plan = FaultPlan::parse(&format!("outage=link{dead}@100us+100us")).unwrap();
        let f = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(4),
            infiniband_4x(),
            Some(Arc::new(plan)),
        ));
        let sim = Sim::new(1);
        let outcomes = Rc::new(RefCell::new(Vec::new()));
        for us in [99u64, 100, 199, 200] {
            let (ff, s, out) = (f.clone(), sim.clone(), outcomes.clone());
            sim.spawn(format!("probe{us}"), async move {
                s.sleep(Dur::from_us(us)).await;
                let down = matches!(
                    ff.deliver_attempt(&s, 0, 1, 64, false),
                    WireOutcome::LinkDown { .. }
                );
                out.borrow_mut().push((us, down));
            });
        }
        sim.run().unwrap();
        let o = outcomes.borrow();
        assert!(o.contains(&(99, false)), "{o:?}");
        assert!(o.contains(&(100, true)), "window start is inclusive: {o:?}");
        assert!(o.contains(&(199, true)), "{o:?}");
        assert!(o.contains(&(200, false)), "window end is exclusive: {o:?}");
    }

    #[test]
    fn zero_length_messages_still_face_crc_corruption() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        // A zero-byte message still travels as one header packet, so
        // the CRC process must get a draw at it — with corrupt=1 every
        // such packet corrupts on every link of the path.
        let sim = Sim::new(1);
        let plan = FaultPlan::parse("corrupt=1, seed=2").unwrap();
        let f = Fabric::with_faults(
            Topology::single_crossbar(4),
            infiniband_4x(),
            Some(Arc::new(plan)),
        );
        match f.deliver_attempt(&sim, 0, 1, 0, false) {
            WireOutcome::Delivered {
                lost, corrupted, ..
            } => {
                assert_eq!(lost, 0);
                assert!(corrupted >= 1, "one packet minimum, all corrupted");
                assert_eq!(f.fault_stats().corrupts, corrupted);
            }
            WireOutcome::LinkDown { .. } => panic!("corruption is not an outage"),
        }
    }

    #[test]
    fn degraded_link_stretches_serialization() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let sim = Sim::new(1);
        let clean = ib_crossbar(4);
        let plan = FaultPlan::parse("degrade=link0@0+1s*0.5").unwrap();
        let slow = Fabric::with_faults(
            Topology::single_crossbar(4),
            infiniband_4x(),
            Some(Arc::new(plan)),
        );
        let t_clean = clean.deliver_at(&sim, 0, 1, 1_000_000);
        let t_slow = match slow.deliver_attempt(&sim, 0, 1, 1_000_000, false) {
            WireOutcome::Delivered { arrives, .. } => arrives,
            WireOutcome::LinkDown { .. } => panic!("degrade is not an outage"),
        };
        let ser = clean.params.link.serialize(1_000_000);
        // Half rate on the first cable throttles the pipeline: one
        // extra serialization time, give or take fixed latencies.
        assert!(
            t_slow >= t_clean + (ser - Dur::from_us(1)),
            "{t_clean:?} vs {t_slow:?}"
        );
    }

    #[test]
    fn lossy_plan_draws_are_counted() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let sim = Sim::new(1);
        let plan = FaultPlan::parse("loss=0.5, seed=3").unwrap();
        let f = Fabric::with_faults(
            Topology::single_crossbar(4),
            infiniband_4x(),
            Some(Arc::new(plan)),
        );
        let (mut lost_total, mut corrupted_total) = (0u64, 0u64);
        for _ in 0..100 {
            match f.deliver_attempt(&sim, 0, 1, 2048, false) {
                WireOutcome::Delivered {
                    lost, corrupted, ..
                } => {
                    lost_total += lost;
                    corrupted_total += corrupted;
                }
                WireOutcome::LinkDown { .. } => unreachable!(),
            }
        }
        // 100 messages × 1 packet × 2 links at p=0.5 — some must drop.
        assert!(lost_total > 50, "lost {lost_total}");
        assert_eq!(corrupted_total, 0);
        assert_eq!(f.fault_stats().drops, lost_total);
    }

    #[test]
    fn elan_delivers_faster_than_ib() {
        let sim = Sim::new(1);
        let ib = Fabric::new(Topology::fat_tree(12, 2, 32), infiniband_4x());
        let elan = Fabric::new(Topology::fat_tree(4, 3, 32), elan4());
        for bytes in [8u64, 1024, 65536, 1_000_000] {
            let t_ib = ib.deliver_at(&sim, 0, 31, bytes);
            let t_el = elan.deliver_at(&sim, 0, 31, bytes);
            assert!(t_el < t_ib, "bytes={bytes}: elan {t_el:?} vs ib {t_ib:?}");
        }
    }
}
