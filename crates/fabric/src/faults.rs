//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] schedules faults in *simulated* time: per-link packet
//! loss probability, CRC corruption probability, transient link outage
//! windows, bandwidth degradation windows, and NIC stall intervals. All
//! probabilistic draws are a stateless hash of
//! `(plan seed, directed channel index, per-channel packet counter)`, so
//! a given plan produces bit-identical faults regardless of thread
//! count, tracing, caching, or the order unrelated simulations run in.
//!
//! Plans come from `ELANIB_FAULTS=<spec>` (see [`FaultPlan::parse`] for
//! the grammar) or are passed explicitly to
//! [`crate::Fabric::with_faults`]. A plan that injects nothing —
//! zero rates and no scheduled windows — is treated exactly like no
//! plan at all, so the fault layer is provably zero-effect when off.

use std::cell::Cell;
use std::sync::{Arc, LazyLock};

use elanib_simcore::{Dur, SimTime};

/// A scheduled link outage: the undirected edge `link` carries nothing
/// during `[start, start + dur)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outage {
    pub link: usize,
    pub start: Dur,
    pub dur: Dur,
}

/// A scheduled bandwidth degradation: edge `link` serializes slower by
/// `factor` (0 < factor <= 1) during `[start, start + dur)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degrade {
    pub link: usize,
    pub start: Dur,
    pub dur: Dur,
    pub factor: f64,
}

/// A scheduled NIC stall: endpoint `ep` neither sends nor receives
/// during `[start, start + dur)` (models a hiccupping host / firmware).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicStall {
    pub ep: usize,
    pub start: Dur,
    pub dur: Dur,
}

/// A complete, deterministic fault schedule for one fabric.
///
/// `Debug` output is part of the cache-key contract: two plans that
/// render identically inject identical faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed folded into every probabilistic draw.
    pub seed: u64,
    /// Per-packet loss probability on every directed link.
    pub loss: f64,
    /// Per-packet CRC-corruption probability (detected at the
    /// receiver; same recovery path as a loss, but counted apart).
    pub corrupt: f64,
    pub outages: Vec<Outage>,
    pub degrades: Vec<Degrade>,
    pub stalls: Vec<NicStall>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            loss: 0.0,
            corrupt: 0.0,
            outages: Vec::new(),
            degrades: Vec::new(),
            stalls: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing at all — such a plan is
    /// equivalent to running without one.
    pub fn is_effectless(&self) -> bool {
        self.loss <= 0.0
            && self.corrupt <= 0.0
            && self.outages.is_empty()
            && self.degrades.is_empty()
            && self.stalls.is_empty()
    }

    /// Drop scheduled windows that provably cannot affect a run that
    /// ends by `horizon`: anything starting at or past the horizon,
    /// plus zero-length windows (`[start, start)` is empty under the
    /// end-exclusive window rule). The rates are untouched — a loss
    /// process has no schedule to prune. A plan whose every window is
    /// filtered and whose rates are zero becomes [`is_effectless`]
    /// (and the fabric then drops it entirely), which is what makes
    /// "this plan was a no-op" a provable statement rather than an
    /// empirical one.
    ///
    /// [`is_effectless`]: FaultPlan::is_effectless
    pub fn truncated_to(&self, horizon: Dur) -> FaultPlan {
        let live = |start: Dur, dur: Dur| start < horizon && dur > Dur::ZERO;
        let mut p = self.clone();
        p.outages.retain(|o| live(o.start, o.dur));
        p.degrades.retain(|d| live(d.start, d.dur));
        p.stalls.retain(|s| live(s.start, s.dur));
        p
    }

    /// Deterministically sample a fault plan from `seed` for a fabric
    /// with `links` undirected edges and `eps` endpoints, scheduling
    /// all windows inside `[0, horizon)`. This is the fuzzer's
    /// generator hook: the draw chain is the fault layer's own
    /// stateless SplitMix64, so a sampled plan is a pure function of
    /// its arguments — same seed, same plan, forever. Roughly half of
    /// all seeds yield a quiet plan (no loss), mirroring how often
    /// real scenarios run clean.
    pub fn sample(seed: u64, links: usize, eps: usize, horizon: Dur) -> FaultPlan {
        let d = |k: u64, n: u64| unit_draw(seed, k, n);
        let span = horizon.as_ps().max(1);
        let window = |k: u64, n: u64| -> (Dur, Dur) {
            let start = Dur::from_ps((d(k, n) * span as f64) as u64);
            // Durations up to a quarter horizon, never zero.
            let dur = Dur::from_ps((d(k, n + 1) * (span / 4) as f64) as u64 + 1);
            (start, dur)
        };
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        if d(1, 0) < 0.5 {
            plan.loss = [1e-3, 1e-2, 3e-2][(d(1, 1) * 3.0) as usize % 3];
        }
        if d(2, 0) < 0.3 {
            plan.corrupt = [1e-3, 1e-2][(d(2, 1) * 2.0) as usize % 2];
        }
        if links > 0 {
            for i in 0..(d(3, 0) * 3.0) as u64 {
                let (start, dur) = window(3, i * 3 + 2);
                plan.outages.push(Outage {
                    link: (d(3, i * 3 + 1) * links as f64) as usize % links,
                    start,
                    dur,
                });
            }
            for i in 0..(d(4, 0) * 3.0) as u64 {
                let (start, dur) = window(4, i * 4 + 2);
                plan.degrades.push(Degrade {
                    link: (d(4, i * 4 + 1) * links as f64) as usize % links,
                    start,
                    dur,
                    factor: 0.25 + 0.75 * d(4, i * 4 + 4),
                });
            }
        }
        if eps > 0 {
            for i in 0..(d(5, 0) * 2.0) as u64 {
                let (start, dur) = window(5, i * 3 + 2);
                plan.stalls.push(NicStall {
                    ep: (d(5, i * 3 + 1) * eps as f64) as usize % eps,
                    start,
                    dur,
                });
            }
        }
        plan
    }

    /// Strictly simpler variants of this plan, most-aggressive
    /// reduction first — the fuzzer's shrinking hook. Each candidate
    /// removes one kind of injection (or halves a schedule); a shrinker
    /// re-runs the failing scenario after each step and keeps the
    /// reduction only if the failure survives. Returns nothing for an
    /// effectless plan — there is nothing left to remove.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        let mut push = |f: &dyn Fn(&mut FaultPlan)| {
            let mut p = self.clone();
            f(&mut p);
            out.push(p);
        };
        if !self.outages.is_empty() {
            push(&|p| p.outages.truncate(p.outages.len() / 2));
        }
        if !self.degrades.is_empty() {
            push(&|p| p.degrades.truncate(p.degrades.len() / 2));
        }
        if !self.stalls.is_empty() {
            push(&|p| p.stalls.truncate(p.stalls.len() / 2));
        }
        if self.corrupt > 0.0 {
            push(&|p| p.corrupt = 0.0);
        }
        if self.loss > 0.0 {
            push(&|p| p.loss = 0.0);
        }
        out
    }

    /// Parse a fault spec. Two forms:
    ///
    /// * `@/path/to/plan` — load the file at that path and parse its
    ///   contents (JSON if the first non-space byte is `{`, otherwise
    ///   the directive grammar below; `#` starts a line comment).
    /// * a comma/newline-separated directive list:
    ///
    /// ```text
    /// seed=7                        fold 7 into every draw (default 1)
    /// loss=1e-3                     per-packet loss probability
    /// corrupt=1e-4                  per-packet CRC-corruption probability
    /// outage=link3@500us+200us      edge 3 down during [500us, 700us)
    /// degrade=link2@1ms+2ms*0.5     edge 2 at half rate during [1ms, 3ms)
    /// stall=ep1@300us+50us          endpoint 1 stalled during [300us, 350us)
    /// ```
    ///
    /// Durations are a float plus `ns`/`us`/`ms`/`s`; a bare number
    /// means microseconds.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if let Some(path) = spec.strip_prefix('@') {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault plan {path}: {e}"))?;
            return Self::parse_text(&text);
        }
        Self::parse_text(spec)
    }

    fn parse_text(text: &str) -> Result<FaultPlan, String> {
        if text.trim_start().starts_with('{') {
            return Self::from_json(text);
        }
        let mut plan = FaultPlan::default();
        for raw in text.split(['\n', ',']) {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("fault directive without '=': {line:?}"))?;
            let (key, val) = (key.trim(), val.trim());
            match key {
                "seed" => {
                    plan.seed = val.parse().map_err(|e| format!("bad seed {val:?}: {e}"))?;
                }
                "loss" => plan.loss = parse_prob("loss", val)?,
                "corrupt" => plan.corrupt = parse_prob("corrupt", val)?,
                "outage" => {
                    let (link, start, dur) = parse_window("link", val)?;
                    plan.outages.push(Outage { link, start, dur });
                }
                "degrade" => {
                    let (head, factor) = val
                        .rsplit_once('*')
                        .ok_or_else(|| format!("degrade without '*factor': {val:?}"))?;
                    let factor: f64 = factor
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad degrade factor {factor:?}: {e}"))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("degrade factor must be in (0, 1], got {factor}"));
                    }
                    let (link, start, dur) = parse_window("link", head)?;
                    plan.degrades.push(Degrade {
                        link,
                        start,
                        dur,
                        factor,
                    });
                }
                "stall" => {
                    let (ep, start, dur) = parse_window("ep", val)?;
                    plan.stalls.push(NicStall { ep, start, dur });
                }
                _ => return Err(format!("unknown fault directive {key:?}")),
            }
        }
        Ok(plan)
    }

    /// Parse the JSON form:
    ///
    /// ```text
    /// {"seed": 7, "loss": 1e-3, "corrupt": 0,
    ///  "outages":  [{"link": 3, "start_us": 500, "dur_us": 200}],
    ///  "degrades": [{"link": 2, "start_us": 1000, "dur_us": 2000, "factor": 0.5}],
    ///  "stalls":   [{"ep": 1, "start_us": 300, "dur_us": 50}]}
    /// ```
    fn from_json(text: &str) -> Result<FaultPlan, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("fault plan JSON must be an object")?;
        let mut plan = FaultPlan::default();
        for (key, val) in obj {
            match key.as_str() {
                "seed" => {
                    plan.seed = val.as_f64().ok_or("seed must be a number")? as u64;
                }
                "loss" => {
                    plan.loss = val.as_f64().ok_or("loss must be a number")?;
                    parse_prob("loss", &plan.loss.to_string())?;
                }
                "corrupt" => {
                    plan.corrupt = val.as_f64().ok_or("corrupt must be a number")?;
                    parse_prob("corrupt", &plan.corrupt.to_string())?;
                }
                "outages" => {
                    for o in val.as_arr().ok_or("outages must be an array")? {
                        let (link, start, dur) = json_window(o, "link")?;
                        plan.outages.push(Outage { link, start, dur });
                    }
                }
                "degrades" => {
                    for o in val.as_arr().ok_or("degrades must be an array")? {
                        let (link, start, dur) = json_window(o, "link")?;
                        let factor = o
                            .get("factor")
                            .and_then(|f| f.as_f64())
                            .ok_or("degrade entry needs a numeric \"factor\"")?;
                        if !(factor > 0.0 && factor <= 1.0) {
                            return Err(format!("degrade factor must be in (0, 1], got {factor}"));
                        }
                        plan.degrades.push(Degrade {
                            link,
                            start,
                            dur,
                            factor,
                        });
                    }
                }
                "stalls" => {
                    for o in val.as_arr().ok_or("stalls must be an array")? {
                        let (ep, start, dur) = json_window(o, "ep")?;
                        plan.stalls.push(NicStall { ep, start, dur });
                    }
                }
                other => return Err(format!("unknown fault plan key {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_prob(what: &str, val: &str) -> Result<f64, String> {
    let p: f64 = val
        .parse()
        .map_err(|e| format!("bad {what} probability {val:?}: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what} probability must be in [0, 1], got {p}"));
    }
    Ok(p)
}

/// Parse `<prefix><idx>@<start>+<dur>`, e.g. `link3@500us+200us`.
fn parse_window(prefix: &str, val: &str) -> Result<(usize, Dur, Dur), String> {
    let rest = val
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected {prefix}<idx>@<start>+<dur>, got {val:?}"))?;
    let (idx, times) = rest
        .split_once('@')
        .ok_or_else(|| format!("expected {prefix}<idx>@<start>+<dur>, got {val:?}"))?;
    let idx: usize = idx
        .trim()
        .parse()
        .map_err(|e| format!("bad {prefix} index {idx:?}: {e}"))?;
    let (start, dur) = times
        .split_once('+')
        .ok_or_else(|| format!("expected <start>+<dur> in {val:?}"))?;
    Ok((idx, parse_dur(start)?, parse_dur(dur)?))
}

/// Parse a duration: float + `ns`/`us`/`ms`/`s` suffix; bare = µs.
fn parse_dur(s: &str) -> Result<Dur, String> {
    let s = s.trim();
    let (num, scale_ps) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e9)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e12)
    } else {
        (s, 1e6)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|e| format!("bad duration {s:?}: {e}"))?;
    if v < 0.0 {
        return Err(format!("duration must be non-negative, got {s:?}"));
    }
    Ok(Dur((v * scale_ps).round() as u64))
}

fn json_window(o: &json::Value, idx_key: &str) -> Result<(usize, Dur, Dur), String> {
    let obj_err = || format!("entry must be an object with {idx_key:?}/start_us/dur_us");
    let idx = o
        .get(idx_key)
        .and_then(|v| v.as_f64())
        .ok_or_else(obj_err)? as usize;
    let start = o
        .get("start_us")
        .and_then(|v| v.as_f64())
        .ok_or_else(obj_err)?;
    let dur = o
        .get("dur_us")
        .and_then(|v| v.as_f64())
        .ok_or_else(obj_err)?;
    if start < 0.0 || dur < 0.0 {
        return Err("start_us/dur_us must be non-negative".into());
    }
    Ok((idx, Dur::from_us_f64(start), Dur::from_us_f64(dur)))
}

/// The process-wide plan from `ELANIB_FAULTS`, if one is set, parses,
/// and is not effectless. A malformed spec is reported once on stderr
/// and ignored (fail-open: exhibits keep producing their baseline
/// numbers rather than aborting mid-regeneration).
pub fn env_plan() -> Option<Arc<FaultPlan>> {
    static PLAN: LazyLock<Option<Arc<FaultPlan>>> = LazyLock::new(|| {
        let spec = std::env::var("ELANIB_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(p) if p.is_effectless() => None,
            Ok(p) => Some(Arc::new(p)),
            Err(e) => {
                eprintln!("warning: ignoring ELANIB_FAULTS: {e}");
                None
            }
        }
    });
    PLAN.clone()
}

/// End-of-run fault and recovery totals for one fabric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by the loss process.
    pub drops: u64,
    /// Packets corrupted by the CRC process.
    pub corrupts: u64,
    /// Messages that found their static route down and took an
    /// adaptive detour (Elan only).
    pub reroutes: u64,
    /// Messages that found a route down with no detour available.
    pub down_hits: u64,
    /// IB whole-message retransmissions (timeout-driven).
    pub ib_retransmits: u64,
    /// IB receiver-not-ready NAKs taken.
    pub rnr_naks: u64,
    /// IB queue pairs driven into the error state.
    pub qp_errors: u64,
    /// Elan link-level hardware packet retries.
    pub elan_link_retries: u64,
    /// Elan waits for an outage window to end (no detour existed).
    pub outage_waits: u64,
}

/// Per-fabric runtime fault state: the plan plus deterministic draw
/// counters and recovery totals. Lives behind `Rc` inside [`crate::Fabric`];
/// the NIC layer calls the `note_*` hooks as it exercises recovery.
pub struct FaultState {
    plan: Arc<FaultPlan>,
    /// Per-directed-channel packet sequence numbers: the draw index.
    pkt_seq: Vec<Cell<u64>>,
    drops: Cell<u64>,
    corrupts: Cell<u64>,
    reroutes: Cell<u64>,
    down_hits: Cell<u64>,
    ib_retransmits: Cell<u64>,
    rnr_naks: Cell<u64>,
    qp_errors: Cell<u64>,
    elan_link_retries: Cell<u64>,
    outage_waits: Cell<u64>,
}

impl FaultState {
    pub fn new(plan: Arc<FaultPlan>, n_directed_channels: usize) -> FaultState {
        FaultState {
            plan,
            pkt_seq: (0..n_directed_channels).map(|_| Cell::new(0)).collect(),
            drops: Cell::new(0),
            corrupts: Cell::new(0),
            reroutes: Cell::new(0),
            down_hits: Cell::new(0),
            ib_retransmits: Cell::new(0),
            rnr_naks: Cell::new(0),
            qp_errors: Cell::new(0),
            elan_link_retries: Cell::new(0),
            outage_waits: Cell::new(0),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the loss/corruption outcome for `packets` consecutive
    /// packets crossing directed channel `chan`. Returns
    /// `(lost, corrupted)` counts. The per-channel sequence number
    /// advances by `packets` even when both rates are zero, so adding
    /// a rate later never perturbs unrelated draws.
    pub fn sample_link(&self, chan: usize, packets: u64) -> (u64, u64) {
        let seq = &self.pkt_seq[chan];
        let base = seq.get();
        seq.set(base + packets);
        if self.plan.loss <= 0.0 && self.plan.corrupt <= 0.0 {
            return (0, 0);
        }
        let (mut lost, mut corrupted) = (0u64, 0u64);
        for n in base..base + packets {
            let r = unit_draw(self.plan.seed, chan as u64, n);
            if r < self.plan.loss {
                lost += 1;
            } else if r < self.plan.loss + self.plan.corrupt {
                corrupted += 1;
            }
        }
        self.drops.set(self.drops.get() + lost);
        self.corrupts.set(self.corrupts.get() + corrupted);
        (lost, corrupted)
    }

    /// If edge `edge` is inside an outage window at `t`, the instant
    /// the *latest* covering window ends.
    pub fn link_down(&self, edge: usize, t: SimTime) -> Option<SimTime> {
        let mut until: Option<SimTime> = None;
        for o in &self.plan.outages {
            if o.link != edge {
                continue;
            }
            let start = SimTime::ZERO + o.start;
            let end = start + o.dur;
            if t >= start && t < end {
                until = Some(match until {
                    Some(u) => u.max_t(end),
                    None => end,
                });
            }
        }
        until
    }

    /// Effective bandwidth factor for edge `edge` at `t` (1.0 = full
    /// rate). Overlapping degradations multiply.
    pub fn degrade(&self, edge: usize, t: SimTime) -> f64 {
        let mut f = 1.0;
        for d in &self.plan.degrades {
            if d.link != edge {
                continue;
            }
            let start = SimTime::ZERO + d.start;
            if t >= start && t < start + d.dur {
                f *= d.factor;
            }
        }
        f
    }

    /// If endpoint `ep`'s NIC is stalled at `t`, the instant the
    /// latest covering stall ends.
    pub fn stall_until(&self, ep: usize, t: SimTime) -> Option<SimTime> {
        let mut until: Option<SimTime> = None;
        for s in &self.plan.stalls {
            if s.ep != ep {
                continue;
            }
            let start = SimTime::ZERO + s.start;
            let end = start + s.dur;
            if t >= start && t < end {
                until = Some(match until {
                    Some(u) => u.max_t(end),
                    None => end,
                });
            }
        }
        until
    }

    pub fn note_reroute(&self) {
        self.reroutes.set(self.reroutes.get() + 1);
    }
    pub fn note_down_hit(&self) {
        self.down_hits.set(self.down_hits.get() + 1);
    }
    pub fn note_ib_retransmit(&self) {
        self.ib_retransmits.set(self.ib_retransmits.get() + 1);
    }
    pub fn note_rnr_nak(&self) {
        self.rnr_naks.set(self.rnr_naks.get() + 1);
    }
    pub fn note_qp_error(&self) {
        self.qp_errors.set(self.qp_errors.get() + 1);
    }
    pub fn note_elan_link_retries(&self, n: u64) {
        self.elan_link_retries.set(self.elan_link_retries.get() + n);
    }
    pub fn note_outage_wait(&self) {
        self.outage_waits.set(self.outage_waits.get() + 1);
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.get(),
            corrupts: self.corrupts.get(),
            reroutes: self.reroutes.get(),
            down_hits: self.down_hits.get(),
            ib_retransmits: self.ib_retransmits.get(),
            rnr_naks: self.rnr_naks.get(),
            qp_errors: self.qp_errors.get(),
            elan_link_retries: self.elan_link_retries.get(),
            outage_waits: self.outage_waits.get(),
        }
    }
}

/// SplitMix64-based stateless draw in `[0, 1)` — the fault layer's
/// only randomness. Independent of the kernel's RNG, thread count, and
/// evaluation order by construction.
fn unit_draw(seed: u64, chan: u64, n: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(chan.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(n.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Minimal JSON reader for fault-plan files — numbers, strings, bools,
/// null, arrays, objects. Kept here (not a dependency) because the
/// container vendors no serde and the plan schema is tiny.
mod json {
    pub enum Value {
        Num(f64),
        // Strings/bools/null are parsed for grammar completeness; the
        // plan schema itself only consumes numbers, arrays, objects.
        #[allow(dead_code)]
        Str(String),
        #[allow(dead_code)]
        Bool(bool),
        Null,
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_obj()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos} in fault plan JSON"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {} in fault plan JSON",
                c as char, *pos
            ))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut obj = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(obj));
                }
                loop {
                    skip_ws(b, pos);
                    let k = string(b, pos)?;
                    expect(b, pos, b':')?;
                    obj.push((k, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(obj));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(arr));
                }
                loop {
                    arr.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(arr));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).unwrap();
                s.parse()
                    .map(Value::Num)
                    .map_err(|e| format!("bad JSON number {s:?}: {e}"))
            }
            None => Err("unexpected end of fault plan JSON".into()),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape \\{}", *other as char)),
                    });
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string in fault plan JSON".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_parses_every_directive() {
        let p = FaultPlan::parse(
            "seed=7, loss=1e-3, corrupt=1e-4, outage=link3@500us+200us, \
             degrade=link2@1ms+2ms*0.5, stall=ep1@300us+50us",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.loss, 1e-3);
        assert_eq!(p.corrupt, 1e-4);
        assert_eq!(
            p.outages,
            vec![Outage {
                link: 3,
                start: Dur::from_us(500),
                dur: Dur::from_us(200),
            }]
        );
        assert_eq!(p.degrades.len(), 1);
        assert_eq!(p.degrades[0].link, 2);
        assert_eq!(p.degrades[0].start, Dur::from_ms(1));
        assert_eq!(p.degrades[0].dur, Dur::from_ms(2));
        assert_eq!(p.degrades[0].factor, 0.5);
        assert_eq!(
            p.stalls,
            vec![NicStall {
                ep: 1,
                start: Dur::from_us(300),
                dur: Dur::from_us(50),
            }]
        );
    }

    #[test]
    fn newlines_and_comments_accepted() {
        let p = FaultPlan::parse("seed=3 # the seed\nloss=0.01\n# whole-line comment\n").unwrap();
        assert_eq!(p.seed, 3);
        assert_eq!(p.loss, 0.01);
    }

    #[test]
    fn durations_parse_all_units() {
        assert_eq!(parse_dur("5ns").unwrap(), Dur::from_ns(5));
        assert_eq!(parse_dur("5us").unwrap(), Dur::from_us(5));
        assert_eq!(parse_dur("5ms").unwrap(), Dur::from_ms(5));
        assert_eq!(parse_dur("1s").unwrap(), Dur(1_000_000_000_000));
        assert_eq!(parse_dur("2.5").unwrap(), Dur::from_us_f64(2.5)); // bare = µs
    }

    #[test]
    fn json_form_parses() {
        let p = FaultPlan::parse(
            r#"{"seed": 7, "loss": 0.001,
                "outages":  [{"link": 3, "start_us": 500, "dur_us": 200}],
                "degrades": [{"link": 2, "start_us": 1000, "dur_us": 2000, "factor": 0.5}],
                "stalls":   [{"ep": 1, "start_us": 300, "dur_us": 50}]}"#,
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.loss, 0.001);
        assert_eq!(p.outages[0].link, 3);
        assert_eq!(p.outages[0].start, Dur::from_us(500));
        assert_eq!(p.degrades[0].factor, 0.5);
        assert_eq!(p.stalls[0].ep, 1);
    }

    #[test]
    fn parse_errors_are_reported_not_panics() {
        assert!(FaultPlan::parse("loss=2.0").is_err()); // out of range
        assert!(FaultPlan::parse("frob=1").is_err()); // unknown key
        assert!(FaultPlan::parse("outage=link3").is_err()); // no window
        assert!(FaultPlan::parse("degrade=link1@0+1ms*1.5").is_err()); // factor > 1
        assert!(FaultPlan::parse("{\"nope\": 1}").is_err());
        assert!(FaultPlan::parse("{bad json").is_err());
    }

    #[test]
    fn effectless_detection() {
        assert!(FaultPlan::parse("").unwrap().is_effectless());
        assert!(FaultPlan::parse("seed=9, loss=0").unwrap().is_effectless());
        assert!(!FaultPlan::parse("loss=1e-6").unwrap().is_effectless());
        assert!(!FaultPlan::parse("outage=link0@0+1us")
            .unwrap()
            .is_effectless());
    }

    #[test]
    fn windows_outside_the_run_filter_to_provable_noops() {
        let plan = FaultPlan::parse(
            "outage=link0@500us+100us, degrade=link1@900us+10us*0.5, stall=ep0@1ms+1us",
        )
        .unwrap();
        // Horizon below every window start: the whole schedule is a
        // provable no-op and the plan collapses to effectless.
        let t = plan.truncated_to(Dur::from_us(400));
        assert!(t.is_effectless(), "{t:?}");
        // Horizon inside the first window: only it survives.
        let t = plan.truncated_to(Dur::from_us(600));
        assert_eq!(t.outages.len(), 1);
        assert!(t.degrades.is_empty() && t.stalls.is_empty());
        // A window starting exactly at the horizon is outside the run
        // (the run's events all land strictly before it).
        assert!(plan.truncated_to(Dur::from_us(500)).outages.is_empty());
        // Rates have no schedule to prune: a lossy plan stays live.
        let lossy = FaultPlan::parse("loss=1e-3, outage=link0@1s+1s").unwrap();
        let t = lossy.truncated_to(Dur::from_us(1));
        assert!(t.outages.is_empty() && !t.is_effectless());
        // Zero-length windows are empty under end-exclusivity.
        let z = FaultPlan {
            outages: vec![Outage {
                link: 0,
                start: Dur::from_us(1),
                dur: Dur::ZERO,
            }],
            ..FaultPlan::default()
        };
        assert!(z.truncated_to(Dur::from_secs(1)).is_effectless());
    }

    #[test]
    fn sampled_plans_are_pure_functions_of_the_seed() {
        let horizon = Dur::from_ms(1);
        let mut distinct = 0;
        for seed in 0..50u64 {
            let a = FaultPlan::sample(seed, 24, 8, horizon);
            assert_eq!(a, FaultPlan::sample(seed, 24, 8, horizon));
            for o in &a.outages {
                assert!(o.link < 24 && o.start < horizon && o.dur > Dur::ZERO);
            }
            for d in &a.degrades {
                assert!(d.link < 24 && (0.25..=1.0).contains(&d.factor));
            }
            for s in &a.stalls {
                assert!(s.ep < 8);
            }
            if !a.is_effectless() {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "sampling must produce live plans");
        assert_ne!(
            FaultPlan::sample(1, 24, 8, horizon),
            FaultPlan::sample(2, 24, 8, horizon)
        );
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler() {
        let size = |p: &FaultPlan| {
            p.outages.len()
                + p.degrades.len()
                + p.stalls.len()
                + (p.loss > 0.0) as usize
                + (p.corrupt > 0.0) as usize
        };
        let plan = FaultPlan::parse(
            "loss=0.01, corrupt=0.001, outage=link0@1us+1us, outage=link1@2us+1us, \
             stall=ep0@1us+1us",
        )
        .unwrap();
        let cands = plan.shrink_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(size(c) < size(&plan), "not simpler: {c:?}");
        }
        assert!(FaultPlan::default().shrink_candidates().is_empty());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let plan = Arc::new(FaultPlan {
            loss: 0.3,
            ..FaultPlan::default()
        });
        let a = FaultState::new(plan.clone(), 4);
        let b = FaultState::new(plan.clone(), 4);
        for chan in 0..4 {
            assert_eq!(a.sample_link(chan, 100), b.sample_link(chan, 100));
        }
        let other = FaultState::new(
            Arc::new(FaultPlan {
                seed: 2,
                ..(*plan).clone()
            }),
            4,
        );
        let a2 = FaultState::new(plan, 4);
        let mut diff = false;
        for chan in 0..4 {
            if a2.sample_link(chan, 100) != other.sample_link(chan, 100) {
                diff = true;
            }
        }
        assert!(diff, "different seeds should change at least one draw");
    }

    #[test]
    fn loss_rate_roughly_matches_probability() {
        let plan = Arc::new(FaultPlan {
            loss: 0.1,
            ..FaultPlan::default()
        });
        let fs = FaultState::new(plan, 1);
        let (lost, _) = fs.sample_link(0, 100_000);
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed loss rate {rate}");
        assert_eq!(fs.stats().drops, lost);
    }

    #[test]
    fn sequence_advances_even_at_zero_rate() {
        // A zero-rate channel must consume the same draw indices as a
        // lossy one, so turning a rate on later never shifts other
        // channels' draws.
        let lossy = Arc::new(FaultPlan {
            loss: 0.5,
            ..FaultPlan::default()
        });
        let clean = Arc::new(FaultPlan::default());
        let a = FaultState::new(lossy.clone(), 1);
        let b = FaultState::new(clean, 1);
        b.sample_link(0, 50); // advance past 50 packets at zero rate
        let a_ref = FaultState::new(lossy, 1);
        a_ref.sample_link(0, 50);
        let skipped = a_ref.sample_link(0, 10);
        a.sample_link(0, 50);
        assert_eq!(a.sample_link(0, 10), skipped);
        assert_eq!(b.pkt_seq[0].get(), 50);
    }

    #[test]
    fn outage_window_edges() {
        let plan = Arc::new(
            FaultPlan::parse("outage=link1@100us+50us, outage=link1@120us+100us").unwrap(),
        );
        let fs = FaultState::new(plan, 4);
        let t = |us: u64| SimTime::ZERO + Dur::from_us(us);
        assert_eq!(fs.link_down(1, t(99)), None);
        assert_eq!(fs.link_down(1, t(100)), Some(t(150))); // first window
        assert_eq!(fs.link_down(1, t(130)), Some(t(220))); // overlapping: latest end
        assert_eq!(fs.link_down(1, t(150)), Some(t(220)));
        assert_eq!(fs.link_down(1, t(220)), None); // end-exclusive
        assert_eq!(fs.link_down(0, t(130)), None); // other link unaffected
    }

    #[test]
    fn degrade_and_stall_windows() {
        let plan = Arc::new(
            FaultPlan::parse(
                "degrade=link0@100us+100us*0.5, degrade=link0@150us+100us*0.5, \
                              stall=ep2@10us+5us",
            )
            .unwrap(),
        );
        let fs = FaultState::new(plan, 2);
        let t = |us: u64| SimTime::ZERO + Dur::from_us(us);
        assert_eq!(fs.degrade(0, t(50)), 1.0);
        assert_eq!(fs.degrade(0, t(120)), 0.5);
        assert_eq!(fs.degrade(0, t(180)), 0.25); // overlap multiplies
        assert_eq!(fs.degrade(1, t(120)), 1.0);
        assert_eq!(fs.stall_until(2, t(12)), Some(t(15)));
        assert_eq!(fs.stall_until(2, t(15)), None);
        assert_eq!(fs.stall_until(0, t(12)), None);
    }
}
