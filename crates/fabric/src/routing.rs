//! Deterministic shortest-path routing with static multipath spreading.
//!
//! Routes are precomputed per destination endpoint by breadth-first
//! search over the topology. Where several equal-cost next hops exist
//! (the up-phase of a fat tree), the choice is spread deterministically
//! by source endpoint — the static, destination/source-hashed dispersal
//! both 2004-era fabrics actually used (neither had adaptive routing at
//! the granularity modelled here).

use std::collections::VecDeque;

use crate::topology::Topology;

/// Precomputed routing tables for one topology.
pub struct Routes {
    /// `dist[dst][vertex]` = hop count from vertex to destination
    /// endpoint `dst` (edges counted, endpoints and switches alike).
    dist: Vec<Vec<u32>>,
    /// `next[dst][vertex]` = list of (neighbor vertex, edge index)
    /// choices that lie on a shortest path toward `dst`, sorted by
    /// neighbor index for determinism.
    next: Vec<Vec<Vec<(usize, usize)>>>,
    n_endpoints: usize,
}

impl Routes {
    pub fn compute(topo: &Topology) -> Routes {
        let adj = topo.adjacency();
        let nv = topo.n_vertices();
        let mut dist = Vec::with_capacity(topo.n_endpoints);
        let mut next = Vec::with_capacity(topo.n_endpoints);
        for dst in 0..topo.n_endpoints {
            let mut d = vec![u32::MAX; nv];
            let mut q = VecDeque::new();
            d[dst] = 0;
            q.push_back(dst);
            while let Some(v) = q.pop_front() {
                for &(nbr, _) in &adj[v] {
                    let ni = topo.vertex_index(nbr);
                    if d[ni] == u32::MAX {
                        d[ni] = d[v] + 1;
                        q.push_back(ni);
                    }
                }
            }
            // Next-hop sets: any neighbor strictly closer to dst.
            let mut n: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nv];
            for v in 0..nv {
                if d[v] == u32::MAX || v == dst {
                    continue;
                }
                for &(nbr, edge) in &adj[v] {
                    let ni = topo.vertex_index(nbr);
                    if d[ni] + 1 == d[v] {
                        n[v].push((ni, edge));
                    }
                }
                n[v].sort_unstable();
            }
            dist.push(d);
            next.push(n);
        }
        Routes {
            dist,
            next,
            n_endpoints: topo.n_endpoints,
        }
    }

    /// Hop count (edges traversed) from endpoint `src` to endpoint
    /// `dst`. Zero when `src == dst`.
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        self.dist[dst][src]
    }

    /// The full path of edge indices from `src` to `dst`, using the
    /// deterministic spread: at each fork, choice index = `src % k`.
    pub fn path(&self, src: usize, dst: usize) -> Vec<usize> {
        assert!(src < self.n_endpoints && dst < self.n_endpoints);
        let mut path = Vec::new();
        if src == dst {
            return path;
        }
        let mut v = src;
        loop {
            let choices = &self.next[dst][v];
            assert!(
                !choices.is_empty(),
                "no route from vertex {v} to endpoint {dst}"
            );
            let (nv, edge) = choices[src % choices.len()];
            path.push(edge);
            if nv == dst {
                return path;
            }
            v = nv;
        }
    }

    /// A shortest path from `src` to `dst` that avoids every edge for
    /// which `avoid` returns true, or `None` when the avoided edges
    /// disconnect the pair. Returns `(vertices, edges)` with
    /// `vertices.len() == edges.len() + 1`.
    ///
    /// Used by the Elan adaptive-routing recovery path to detour
    /// around a downed link; recomputed per call (outages are rare)
    /// with a plain BFS whose first-parent tie-break is deterministic.
    pub fn path_avoiding(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        avoid: &dyn Fn(usize) -> bool,
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        assert!(src < self.n_endpoints && dst < self.n_endpoints);
        if src == dst {
            return Some((vec![src], Vec::new()));
        }
        let adj = topo.adjacency();
        let nv = topo.n_vertices();
        // parent[v] = (previous vertex, edge taken into v).
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; nv];
        let mut seen = vec![false; nv];
        let mut q = VecDeque::new();
        seen[src] = true;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            if v == dst {
                break;
            }
            for &(nbr, edge) in &adj[v] {
                if avoid(edge) {
                    continue;
                }
                let ni = topo.vertex_index(nbr);
                if !seen[ni] {
                    seen[ni] = true;
                    parent[ni] = Some((v, edge));
                    q.push_back(ni);
                }
            }
        }
        if !seen[dst] {
            return None;
        }
        let mut verts = vec![dst];
        let mut edges = Vec::new();
        let mut v = dst;
        while let Some((prev, edge)) = parent[v] {
            verts.push(prev);
            edges.push(edge);
            v = prev;
        }
        verts.reverse();
        edges.reverse();
        Some((verts, edges))
    }

    /// Sequence of vertices visited (including both endpoints).
    pub fn vertex_path(&self, topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
        let mut verts = vec![src];
        let mut v = src;
        for edge in self.path(src, dst) {
            let e = topo.edges[edge];
            let (a, b) = (topo.vertex_index(e.a), topo.vertex_index(e.b));
            v = if a == v { b } else { a };
            verts.push(v);
        }
        verts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_all_pairs_two_hops() {
        let t = Topology::single_crossbar(8);
        let r = Routes::compute(&t);
        for s in 0..8 {
            for d in 0..8 {
                if s == d {
                    assert_eq!(r.hops(s, d), 0);
                    assert!(r.path(s, d).is_empty());
                } else {
                    assert_eq!(r.hops(s, d), 2);
                    assert_eq!(r.path(s, d).len(), 2);
                }
            }
        }
    }

    #[test]
    fn fat_tree_path_lengths_are_up_down() {
        // In a k-ary n-tree, endpoints under the same leaf are 2 hops
        // apart; crossing the whole tree costs 2*levels hops.
        let t = Topology::fat_tree(4, 3, 64);
        let r = Routes::compute(&t);
        assert_eq!(r.hops(0, 1), 2); // same leaf
        assert_eq!(r.hops(0, 63), 6); // full up-down
        assert_eq!(r.hops(0, 4), 4); // adjacent leaf, common level-1
    }

    #[test]
    fn paths_are_consistent_edge_sequences() {
        let t = Topology::fat_tree(4, 2, 16);
        let r = Routes::compute(&t);
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let verts = r.vertex_path(&t, s, d);
                assert_eq!(verts.first(), Some(&s));
                assert_eq!(verts.last(), Some(&d));
                assert_eq!(verts.len() as u32 - 1, r.hops(s, d));
            }
        }
    }

    #[test]
    fn path_avoiding_detours_around_a_dead_edge() {
        let t = Topology::fat_tree(4, 3, 64);
        let r = Routes::compute(&t);
        let static_path = r.path(0, 63);
        let dead = static_path[1]; // the leaf's chosen up-link
        let (verts, edges) = r
            .path_avoiding(&t, 0, 63, &|e| e == dead)
            .expect("fat tree has alternate up-links");
        assert!(!edges.contains(&dead));
        assert_eq!(verts.first(), Some(&0));
        assert_eq!(verts.last(), Some(&63));
        assert_eq!(verts.len(), edges.len() + 1);
        // A fat tree's up-phase has equal-cost alternatives: the
        // detour is no longer than the static route.
        assert_eq!(edges.len() as u32, r.hops(0, 63));
    }

    #[test]
    fn path_avoiding_none_when_disconnected() {
        // Killing an endpoint's only cable disconnects it.
        let t = Topology::single_crossbar(4);
        let r = Routes::compute(&t);
        assert!(r.path_avoiding(&t, 0, 3, &|e| e == 0).is_none());
        // With nothing avoided it matches the static route length.
        let (_, edges) = r.path_avoiding(&t, 0, 3, &|_| false).unwrap();
        assert_eq!(edges.len() as u32, r.hops(0, 3));
    }

    #[test]
    fn multipath_spreads_by_source() {
        // Two sources under the same leaf sending to the same remote
        // destination should (usually) take different spine switches.
        let t = Topology::fat_tree(4, 2, 16);
        let r = Routes::compute(&t);
        let p0 = r.vertex_path(&t, 0, 15);
        let p1 = r.vertex_path(&t, 1, 15);
        assert_ne!(p0[2], p1[2], "spine choice should differ by source");
    }
}
