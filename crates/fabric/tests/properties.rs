//! Property-based tests over random topologies: routing must be total,
//! loop-free, and length-optimal for every fat tree we can build.

use proptest::prelude::*;

use elanib_fabric::{elan4, infiniband_4x, Fabric, Routes, Topology};
use elanib_simcore::Sim;

/// Strategy: (arity, levels, endpoints) for a valid, small fat tree.
fn fat_tree_params() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..=6, 1usize..=3).prop_flat_map(|(arity, levels)| {
        let cap = arity.pow(levels as u32);
        (Just(arity), Just(levels), 1..=cap.min(64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every endpoint pair is connected; paths are edge-consistent,
    /// acyclic in vertices, and match the BFS hop count.
    #[test]
    fn routing_is_total_and_shortest((arity, levels, n) in fat_tree_params()) {
        let topo = Topology::fat_tree(arity, levels, n);
        let routes = Routes::compute(&topo);
        for s in 0..n {
            for d in 0..n {
                if s == d { continue; }
                let verts = routes.vertex_path(&topo, s, d);
                prop_assert_eq!(*verts.first().unwrap(), s);
                prop_assert_eq!(*verts.last().unwrap(), d);
                prop_assert_eq!(verts.len() as u32 - 1, routes.hops(s, d));
                // No vertex repeats (shortest paths are simple).
                let mut sorted = verts.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), verts.len(), "cycle in path");
                // In a fat tree, hop counts are even (up-down) and
                // bounded by 2*levels.
                let h = routes.hops(s, d);
                prop_assert!(h >= 2 && h <= 2 * levels as u32);
                prop_assert_eq!(h % 2, 0);
            }
        }
    }

    /// Hop counts are symmetric.
    #[test]
    fn hops_symmetric((arity, levels, n) in fat_tree_params()) {
        let topo = Topology::fat_tree(arity, levels, n);
        let routes = Routes::compute(&topo);
        for s in 0..n {
            for d in (s + 1)..n {
                prop_assert_eq!(routes.hops(s, d), routes.hops(d, s));
            }
        }
    }

    /// Delivery times are causal (strictly after now) and monotone in
    /// message size for a fixed pair on an idle fabric.
    #[test]
    fn delivery_monotone_in_size(
        (arity, levels, n) in fat_tree_params(),
        sizes in prop::collection::vec(1u64..1_000_000, 2..6),
    ) {
        prop_assume!(n >= 2);
        let params = if arity % 2 == 0 { infiniband_4x() } else { elan4() };
        let mut sizes = sizes;
        sizes.sort_unstable();
        sizes.dedup();
        prop_assume!(sizes.len() >= 2);
        let mut last = None;
        for &bytes in &sizes {
            // Fresh fabric per size: idle links.
            let fabric = Fabric::new(Topology::fat_tree(arity, levels, n), params);
            let sim = Sim::new(1);
            let t = fabric.deliver_at(&sim, 0, n - 1, bytes);
            prop_assert!(t > sim.now());
            if let Some(prev) = last {
                prop_assert!(t > prev, "bigger messages take longer");
            }
            last = Some(t);
        }
    }

    /// Back-to-back messages on the same pair serialize: k messages
    /// take at least k serialization times.
    #[test]
    fn same_pair_messages_serialize(
        n in 2usize..=16,
        k in 2usize..=8,
        bytes in 10_000u64..500_000,
    ) {
        let fabric = Fabric::new(Topology::fat_tree(4, 2, n), elan4());
        let sim = Sim::new(1);
        let mut last = None;
        for _ in 0..k {
            let t = fabric.deliver_at(&sim, 0, n - 1, bytes);
            if let Some(prev) = last {
                prop_assert!(t > prev);
            }
            last = Some(t);
        }
        let ser = fabric.params.link.serialize(bytes);
        let min_total = ser.as_secs_f64() * (k as f64 - 0.5);
        prop_assert!(last.unwrap().as_secs_f64() >= min_total * 0.9);
    }
}
