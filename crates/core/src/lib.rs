//! # elanib-core — the comparison framework
//!
//! The paper's deliverable is not a single system but a *comparison*:
//! identical workloads on two networks, reported as scaling efficiency
//! and cost. This crate holds the cross-cutting pieces:
//!
//! * [`platform`] — Table 1, the evaluation platform (and its simulated
//!   counterpart for every component);
//! * [`extrapolate`] — the Figure 8 trend fitting and projection;
//! * [`report`] — aligned-text/CSV table rendering for the
//!   figure regenerators;
//! * [`inventory`] — the experiment index: every table and figure
//!   mapped to modules and a regenerating binary.

pub mod extrapolate;
pub mod inventory;
pub mod platform;
pub mod report;

pub use extrapolate::{figure8_series, EfficiencyTrend};
pub use inventory::{exhibit, Exhibit, EXHIBITS};
pub use platform::table1;
pub use report::{f, TextTable};
