//! # elanib-core — the comparison framework
//!
//! The paper's deliverable is not a single system but a *comparison*:
//! identical workloads on two networks, reported as scaling efficiency
//! and cost. This crate holds the cross-cutting pieces:
//!
//! * [`platform`] — Table 1, the evaluation platform (and its simulated
//!   counterpart for every component);
//! * [`extrapolate`] — the Figure 8 trend fitting and projection;
//! * [`report`] — aligned-text/CSV table rendering for the
//!   figure regenerators;
//! * [`inventory`] — the experiment index: every table and figure
//!   mapped to modules and a regenerating binary;
//! * [`sweep`] — the parallel sweep engine the regenerators use to fan
//!   independent simulations across a thread pool (results stay
//!   byte-identical to serial runs; see its module docs);
//! * [`simcache`] — content-addressed memoization of sweep points
//!   (in-run memo table + optional persistent tier), so exhibits that
//!   share grid points simulate each point once.

pub mod extrapolate;
pub mod inventory;
pub mod platform;
pub mod report;
pub mod simcache;
pub mod sweep;

pub use extrapolate::{figure8_series, EfficiencyTrend};
pub use inventory::{exhibit, Exhibit, EXHIBITS};
pub use platform::table1;
pub use report::{f, TextTable};
pub use sweep::{
    guided_placement, sweep, sweep_guided, sweep_guided_with_stats, sweep_with_opts,
    sweep_with_stats, PointResult, SweepOpts, SweepStats, MAX_RETAINED_FAILURES,
};
