//! Scaling-trend extrapolation (Figure 8).
//!
//! The paper extrapolates the membrane data "out to 8192 processors,
//! assuming the scaling trends continue exactly as they did for the
//! first 32 nodes". We do the same: fit efficiency against log₂(procs)
//! by least squares over the measured points, then project.

/// Least-squares linear fit `y = a + b·x`.
pub fn linfit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate fit");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Efficiency-trend model fitted on (procs, efficiency) points.
#[derive(Clone, Copy, Debug)]
pub struct EfficiencyTrend {
    pub intercept: f64,
    pub slope_per_doubling: f64,
}

impl EfficiencyTrend {
    pub fn fit(points: &[(usize, f64)]) -> EfficiencyTrend {
        let xs: Vec<f64> = points.iter().map(|&(p, _)| (p as f64).log2()).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, e)| e).collect();
        let (a, b) = linfit(&xs, &ys);
        EfficiencyTrend {
            intercept: a,
            slope_per_doubling: b,
        }
    }

    /// Projected efficiency at `procs` processes (clamped to (0, 1.5] —
    /// an extrapolated efficiency below zero is meaningless).
    pub fn at(&self, procs: usize) -> f64 {
        (self.intercept + self.slope_per_doubling * (procs as f64).log2()).clamp(0.001, 1.5)
    }

    /// Projected execution time for a scaled-size study whose perfect
    /// per-step time is `base_time`.
    pub fn time_at(&self, base_time: f64, procs: usize) -> f64 {
        base_time / self.at(procs)
    }
}

/// The Figure 8 series: measured points extended to `max_procs`,
/// doubling each step.
pub fn figure8_series(
    measured: &[(usize, f64)],
    base_time: f64,
    max_procs: usize,
) -> Vec<(usize, f64, f64)> {
    let trend = EfficiencyTrend::fit(measured);
    let mut out = Vec::new();
    let mut p = measured[0].0;
    while p <= max_procs {
        out.push((p, trend.at(p), trend.time_at(base_time, p)));
        p *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linfit_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 4.0, 3.0, 2.0];
        let (a, b) = linfit(&xs, &ys);
        assert!((a - 5.0).abs() < 1e-12);
        assert!((b + 1.0).abs() < 1e-12);
    }

    #[test]
    fn trend_projects_monotonic_decline() {
        let t = EfficiencyTrend::fit(&[(1, 1.0), (4, 0.96), (16, 0.92), (32, 0.90)]);
        assert!(t.slope_per_doubling < 0.0);
        assert!(t.at(1024) < t.at(32));
        assert!(t.at(8192) < t.at(1024));
        assert!(t.at(8192) > 0.0);
    }

    #[test]
    fn paper_magnitude_forty_percent_gap_at_1024() {
        // §5: with the measured 32-node trends, "the result is a
        // difference of nearly 40% in scaling efficiency at 1024
        // nodes". Feed trends shaped like our Figure 3 measurements.
        let elan = EfficiencyTrend::fit(&[(1, 1.0), (8, 0.962), (32, 0.942)]);
        let ib = EfficiencyTrend::fit(&[(1, 1.0), (8, 0.87), (32, 0.813)]);
        let gap = (elan.at(1024) - ib.at(1024)) / ib.at(1024);
        assert!(
            (0.20..0.60).contains(&gap),
            "relative efficiency gap at 1024 nodes: {gap}"
        );
    }

    #[test]
    fn time_projection_inverts_efficiency() {
        let t = EfficiencyTrend {
            intercept: 1.0,
            slope_per_doubling: -0.02,
        };
        let base = 2.0;
        assert!((t.time_at(base, 1) - 2.0).abs() < 1e-12);
        assert!(t.time_at(base, 1024) > 2.0);
    }

    #[test]
    fn figure8_series_spans_to_8192() {
        let s = figure8_series(&[(1, 1.0), (32, 0.9)], 1.0, 8192);
        assert_eq!(s.first().unwrap().0, 1);
        assert_eq!(s.last().unwrap().0, 8192);
        assert!(s.last().unwrap().1 < 0.9);
    }
}
