//! Table 1: the evaluation platform, as configured in this
//! reproduction (simulated counterparts of the paper's hardware).

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct PlatformRow {
    pub system: &'static str,
    pub description: &'static str,
}

/// The paper's Table 1, annotated with what this repository simulates
/// for each component.
pub fn table1() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            system: "Node Type",
            description: "Dell PowerEdge 1750: dual 3.06 GHz Intel Xeon, 533 MHz FSB, \
                          ServerWorks GC-LE, 133 MHz PCI-X for the interconnect \
                          [simulated: elanib-nodesim::Node, 2 CPUs, shared memory bus \
                          1.5 GB/s, shared PCI-X 0.95 GB/s, 512 KB L2]",
        },
        PlatformRow {
            system: "InfiniBand Interconnect",
            description: "Voltaire HCS 400 4X HCA, ISR 9600 switch router, 4X copper \
                          [simulated: elanib-nic::Hca + 12-ary 2-tree fabric, 1.0 GB/s \
                          links, 2 KB MTU]",
        },
        PlatformRow {
            system: "InfiniBand MPI",
            description: "MVAPICH 0.9.2 (Ohio State) [simulated: elanib-mpi::verbs — \
                          eager RDMA buffers at 1 KB threshold, host matching, \
                          RTS/CTS/FIN rendezvous, pin-down cache, progress only inside \
                          MPI calls]",
        },
        PlatformRow {
            system: "Quadrics Interconnect",
            description: "QsNetII: QM500 adapter, QS5A 64-port switch [simulated: \
                          elanib-nic::ElanNet + 4-ary 3-tree fabric, 1.3 GB/s links, \
                          NIC-thread Tports matching]",
        },
        PlatformRow {
            system: "Quadrics MPI",
            description: "Quadrics MPI (MPICH-based), release MPI.1.24-28 [simulated: \
                          elanib-mpi::tports — thin shim, NIC-resident matching and \
                          rendezvous, independent progress]",
        },
        PlatformRow {
            system: "Cluster",
            description: "96-node InfiniBand partition, 32-node Elan-4 partition, \
                          identical compute nodes [simulated: up to 64 nodes per \
                          network at 1 or 2 processes per node]",
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_covers_all_components() {
        let t = super::table1();
        assert_eq!(t.len(), 6);
        let all: String = t.iter().map(|r| r.description).collect();
        for needle in ["PCI-X", "MVAPICH", "Tports", "QM500", "ISR 9600"] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }
}
