//! Parallel sweep engine for exhibit regeneration.
//!
//! Every figure and table in the reproduction is a *sweep*: the same
//! simulation family evaluated over a grid of independent points
//! (message sizes, node counts, network types, config ablations). Each
//! point builds its own [`elanib_simcore::Sim`], runs it to completion
//! and extracts one number — no point shares any state with another.
//! That makes the grid embarrassingly parallel **across** simulations
//! while each kernel stays strictly single-threaded, so parallel
//! execution cannot perturb results: every sim's event sequence is a
//! pure function of its seed and program, and [`sweep`] returns results
//! in item order regardless of which worker finished first or last.
//!
//! ```
//! let squares = elanib_core::sweep::sweep(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! ## Scheduling
//!
//! [`sweep`] fans the items across a scoped pool of OS threads
//! (`std::thread::scope` — no runtime dependency, workers borrow the
//! item slice and the closure directly). Work is claimed by atomic
//! counter, so a slow point (the 32-node MD job dwarfs the 1-node one)
//! doesn't leave siblings idle behind a static partition. The pool
//! size comes from `ELANIB_SWEEP_THREADS`, defaulting to the machine's
//! available parallelism; `ELANIB_SWEEP_THREADS=1` bypasses the pool
//! entirely and runs the items inline, in order, on the calling thread
//! — the reference serial mode the determinism regression tests diff
//! against.
//!
//! ## Sharded mode (`ELANIB_DES_SHARDS`)
//!
//! Setting `ELANIB_DES_SHARDS=k` (see
//! [`elanib_simcore::des_shards`]) switches the pool to **static
//! round-robin shard placement**: shard `i` runs items `i`, `i+k`,
//! `i+2k`, … on its own thread, so which worker runs which simulation
//! is a pure function of the item index — no atomic race decides
//! placement. Results are still returned in item order and each kernel
//! is still single-threaded, so every exhibit CSV is byte-identical to
//! a serial run; the determinism gate in `bench/tests/des_determinism`
//! and the `par-des` CI stage both diff exactly that. When set, this
//! variable takes precedence over `ELANIB_SWEEP_THREADS`
//! (`ELANIB_DES_SHARDS=1` is the inline serial mode). This is the
//! exhibit-level face of the conservative sharded engine; the
//! in-one-sim engine lives in `elanib_simcore::shard` with fabric
//! cuts supplying its lookahead (`elanib_fabric::Partition`).
//!
//! ## Instrumentation
//!
//! [`sweep_with_stats`] also returns a [`SweepStats`]: jobs run, pool
//! width, kernel events dispatched (sampled from
//! [`elanib_simcore::thread_events`] around each job, so only
//! simulation work is counted) and wall time.
//! [`SweepStats::record`] appends a JSON-lines perf record to the file
//! named by `ELANIB_BENCH_JSON`, which is how `BENCH_sweep.json`
//! speedup evidence is captured.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-worker observability record of one sweep: how many points the
/// worker claimed, the kernel events it dispatched, and how long it
/// was busy. Always gathered — a few samples per worker, not per job.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStat {
    pub worker: usize,
    pub jobs: u64,
    pub events: u64,
    /// Wall time from the worker's first claim attempt to its exit.
    pub busy: Duration,
}

/// Throughput report for one [`sweep_with_stats`] call.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Number of sweep points executed.
    pub jobs: usize,
    /// Worker threads used (1 = serial inline mode).
    pub threads: usize,
    /// Kernel events dispatched by the jobs' simulations, summed over
    /// workers. Zero if the jobs ran no sims.
    pub events: u64,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// Points that panicked and were isolated (always 0 unless the
    /// sweep ran with [`SweepOpts::isolate_panics`]).
    pub failed: usize,
    /// `Some(k)` when `ELANIB_DES_SHARDS=k` forced static round-robin
    /// shard placement; `None` under ordinary atomic work claiming.
    pub shards: Option<usize>,
    /// Per-worker breakdown, indexed by worker (one entry, worker 0,
    /// in the serial inline mode).
    pub per_worker: Vec<WorkerStat>,
}

impl SweepStats {
    /// Aggregate event throughput across the pool.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Merge another sweep's stats into this one (summing jobs, events
    /// and wall time; keeping the widest pool). Lets a driver that runs
    /// several sweeps report one combined record.
    pub fn absorb(&mut self, other: &SweepStats) {
        self.jobs += other.jobs;
        self.events += other.events;
        self.wall += other.wall;
        self.threads = self.threads.max(other.threads);
        self.failed += other.failed;
        self.shards = self.shards.or(other.shards);
        // Merge worker breakdowns by worker index (the pools of the
        // absorbed sweeps map onto the same OS-thread slots).
        for w in &other.per_worker {
            if self.per_worker.len() <= w.worker {
                self.per_worker
                    .resize_with(w.worker + 1, WorkerStat::default);
                for (i, s) in self.per_worker.iter_mut().enumerate() {
                    s.worker = i;
                }
            }
            let s = &mut self.per_worker[w.worker];
            s.jobs += w.jobs;
            s.events += w.events;
            s.busy += w.busy;
        }
    }

    /// Append a `{"kind":"sweep",...}` JSON record for this sweep to
    /// the JSON-lines file named by `ELANIB_BENCH_JSON`. No-op when the
    /// variable is unset or empty.
    ///
    /// Several exhibit binaries can append to the same file from a
    /// driver script, so the line goes through
    /// [`elanib_simcore::trace::jsonl::append_line`], which issues the
    /// whole record as one `O_APPEND` write — concurrent appenders can
    /// interleave lines but never split one.
    pub fn record(&self, label: &str) {
        let Ok(path) = std::env::var("ELANIB_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let shards = match self.shards {
            Some(k) => k.to_string(),
            None => "null".to_string(),
        };
        let mut line = format!(
            "{{\"kind\":\"sweep\",\"schema\":3,\"git_rev\":\"{}\",\"label\":\"{}\",\"jobs\":{},\"threads\":{},\"shards\":{},\"payload_mode\":\"{}\",\"events\":{},\"failed\":{},\"wall_s\":{:.6},\"events_per_sec\":{:.1},\"unix_ts\":{}",
            elanib_simcore::trace::git_rev(),
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.jobs,
            self.threads,
            shards,
            elanib_simcore::payload_mode(),
            self.events,
            self.failed,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            ts
        );
        // Worker breakdown last, with short non-colliding keys, so the
        // first-occurrence field scans the gate/report use still hit
        // the top-level fields above.
        line.push_str(",\"workers\":[");
        for (i, w) in self.per_worker.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{{\"w\":{},\"j\":{},\"e\":{},\"busy_s\":{:.6}}}",
                w.worker,
                w.jobs,
                w.events,
                w.busy.as_secs_f64()
            ));
        }
        line.push_str("]}");
        let _ = elanib_simcore::trace::jsonl::append_line(std::path::Path::new(&path), &line);
    }
}

/// Pool width a sweep will use for `n_items` work items:
/// `ELANIB_DES_SHARDS` if set (static shard placement, takes
/// precedence), else `ELANIB_SWEEP_THREADS` if set (clamped to ≥ 1),
/// otherwise the machine's available parallelism — never more threads
/// than items.
pub fn sweep_threads(n_items: usize) -> usize {
    if let Some(k) = elanib_simcore::des_shards() {
        return k.max(1).min(n_items.max(1));
    }
    let configured = std::env::var("ELANIB_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    configured.max(1).min(n_items.max(1))
}

/// Evaluate `f` over every item, in parallel, returning results in
/// item order. See the [module docs](self) for the execution model.
///
/// A panic in any job is propagated to the caller after the scope
/// joins (sibling jobs already claimed still run to completion).
pub fn sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_with_stats(items, f).0
}

/// [`sweep`], additionally reporting a [`SweepStats`].
pub fn sweep_with_stats<I, T, F>(items: &[I], f: F) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let shards = elanib_simcore::des_shards();
    let threads = sweep_threads(items.len());
    sweep_on_pool(items, f, threads, shards)
}

/// The engine under [`sweep_with_stats`]: explicit pool width and
/// placement policy. `shards = Some(_)` selects static round-robin
/// placement — worker `w` runs items `w, w+threads, w+2·threads, …` —
/// so the item→thread mapping is deterministic; `None` selects atomic
/// work claiming. Separated out (and kept crate-visible) so tests can
/// drive both placements without mutating process-global environment.
pub(crate) fn sweep_on_pool<I, T, F>(
    items: &[I],
    f: F,
    threads: usize,
    shards: Option<usize>,
) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let t0 = Instant::now();
    let events = AtomicU64::new(0);
    let done = AtomicUsize::new(0);

    let run_one = |i: usize| -> T {
        let ev0 = elanib_simcore::thread_events();
        let out = f(&items[i]);
        events.fetch_add(elanib_simcore::thread_events() - ev0, Ordering::Relaxed);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        // Live heartbeat for long sweeps (no-op unless ELANIB_PROGRESS
        // is set; rate-limited inside, fields built lazily).
        elanib_simcore::trace::progress::beat("sweep", || {
            format!(
                "\"done\":{d},\"total\":{},\"events\":{}",
                items.len(),
                events.load(Ordering::Relaxed)
            )
        });
        out
    };

    // Per-worker accounting: thread_events is per-OS-thread, so
    // sampling it at a worker's entry and exit attributes events to
    // that worker exactly.
    let worker_stat = |w: usize, jobs: u64, ev0: u64, started: Instant| WorkerStat {
        worker: w,
        jobs,
        events: elanib_simcore::thread_events() - ev0,
        busy: started.elapsed(),
    };

    let (results, per_worker): (Vec<T>, Vec<WorkerStat>) = if threads <= 1 {
        // Serial reference mode: inline, in order, on this thread.
        let ev0 = elanib_simcore::thread_events();
        let out: Vec<T> = (0..items.len()).map(run_one).collect();
        let ws = worker_stat(0, items.len() as u64, ev0, t0);
        (out, vec![ws])
    } else {
        let next = AtomicUsize::new(0);
        let static_rr = shards.is_some();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);

        let worker = |w: usize| {
            let next = &next;
            let run_one = &run_one;
            let worker_stat = &worker_stat;
            move || {
                let started = Instant::now();
                let ev0 = elanib_simcore::thread_events();
                let mut out: Vec<(usize, T)> = Vec::new();
                if static_rr {
                    // Deterministic placement: this shard's items are a
                    // pure function of its index.
                    let mut i = w;
                    while i < items.len() {
                        out.push((i, run_one(i)));
                        i += threads;
                    }
                } else {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, run_one(i)));
                    }
                }
                let ws = worker_stat(w, out.len() as u64, ev0, started);
                (out, ws)
            }
        };

        let mut panic_payload = None;
        let mut worker_stats: Vec<WorkerStat> = vec![WorkerStat::default(); threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|w| scope.spawn(worker(w))).collect();
            for h in handles {
                match h.join() {
                    Ok((batch, ws)) => {
                        worker_stats[ws.worker] = ws;
                        for (i, t) in batch {
                            slots[i] = Some(t);
                        }
                    }
                    Err(p) => panic_payload = Some(p),
                }
            }
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        (
            slots
                .into_iter()
                .map(|s| s.expect("every sweep index claimed exactly once"))
                .collect(),
            worker_stats,
        )
    };

    let stats = SweepStats {
        jobs: items.len(),
        threads,
        events: events.into_inner(),
        wall: t0.elapsed(),
        failed: 0,
        shards,
        per_worker,
    };
    (results, stats)
}

/// Execution options for [`sweep_with_opts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOpts {
    /// Catch a panicking point instead of propagating it: the point
    /// becomes [`PointResult::Failed`], every other point still runs,
    /// and the failure count lands in [`SweepStats::failed`] (and the
    /// JSONL perf record). Off by default — a panic in a *trusted*
    /// exhibit grid is a bug and should abort loudly.
    pub isolate_panics: bool,
}

/// Outcome of one sweep point under [`SweepOpts::isolate_panics`].
#[derive(Clone, Debug, PartialEq)]
pub enum PointResult<T> {
    Ok(T),
    /// The point panicked. `payload` is the panic message;
    /// `params_hash` fingerprints the item's `Debug` form so a driver
    /// can report *which* grid cell died without carrying the item.
    Failed {
        payload: String,
        params_hash: u64,
    },
}

impl<T> PointResult<T> {
    pub fn ok(self) -> Option<T> {
        match self {
            PointResult::Ok(t) => Some(t),
            PointResult::Failed { .. } => None,
        }
    }

    pub fn is_failed(&self) -> bool {
        matches!(self, PointResult::Failed { .. })
    }
}

/// Fingerprint a sweep item for failure reports.
fn params_hash<I: std::fmt::Debug>(item: &I) -> u64 {
    use std::hash::Hasher;
    let mut h = elanib_simcore::FxHasher::default();
    h.write(format!("{item:?}").as_bytes());
    h.finish()
}

/// [`sweep_with_stats`] with per-point panic isolation available. With
/// `opts.isolate_panics` a panicking job is caught on its worker
/// thread, recorded as [`PointResult::Failed`], and the sweep finishes
/// every remaining point; without it the semantics are exactly
/// [`sweep_with_stats`] (panics propagate after the scope joins).
pub fn sweep_with_opts<I, T, F>(
    items: &[I],
    opts: SweepOpts,
    f: F,
) -> (Vec<PointResult<T>>, SweepStats)
where
    I: Sync + std::fmt::Debug,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if !opts.isolate_panics {
        let (out, stats) = sweep_with_stats(items, f);
        return (out.into_iter().map(PointResult::Ok).collect(), stats);
    }
    let failed = AtomicUsize::new(0);
    let (out, mut stats) = sweep_with_stats(items, |item| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
            Ok(t) => PointResult::Ok(t),
            Err(p) => {
                let payload = if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                failed.fetch_add(1, Ordering::Relaxed);
                eprintln!("[sweep] point {item:?} failed: {payload}");
                PointResult::Failed {
                    payload,
                    params_hash: params_hash(item),
                }
            }
        }
    });
    stats.failed = failed.into_inner();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_simcore::{Dur, Sim};

    /// Tiny sim: `n` tasks each sleeping a few times; returns
    /// (final time in ns, events processed).
    fn toy_sim(seed_and_n: &(u64, u32)) -> (u64, u64) {
        let &(seed, n) = seed_and_n;
        let sim = Sim::new(seed);
        for i in 0..n {
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                for k in 1..=4u64 {
                    s.sleep(Dur::from_ns(k * (i as u64 + 1))).await;
                }
            });
        }
        let t = sim.run().unwrap();
        (t.as_ps(), sim.events_processed())
    }

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<(u64, u32)> = (0..40).map(|i| (i, (i % 7) as u32 + 1)).collect();
        let out = sweep(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        // Can't set the env var here (tests share a process), so
        // exercise both engine paths directly via sweep_threads' two
        // regimes: 1 item forces the serial path, many items the pool.
        let items: Vec<(u64, u32)> = (0..16).map(|i| (100 + i, 3)).collect();
        let (par, stats) = sweep_with_stats(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(par, serial);
        assert_eq!(stats.jobs, 16);
        assert!(stats.threads >= 1);
        // Event accounting must equal the sum over jobs.
        let total: u64 = serial.iter().map(|&(_, e)| e).sum();
        assert_eq!(stats.events, total);
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<(u64, u32)> = vec![];
        assert!(sweep(&none, toy_sim).is_empty());
        let one = [(7u64, 2u32)];
        let (out, stats) = sweep_with_stats(&one, toy_sim);
        assert_eq!(out, vec![toy_sim(&one[0])]);
        assert_eq!(stats.threads, 1, "one item must use the inline path");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            sweep(&items, |&i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = SweepStats {
            jobs: 2,
            threads: 4,
            events: 100,
            wall: Duration::from_millis(10),
            failed: 1,
            shards: None,
            per_worker: vec![WorkerStat {
                worker: 0,
                jobs: 2,
                events: 100,
                busy: Duration::from_millis(9),
            }],
        };
        let b = SweepStats {
            jobs: 3,
            threads: 2,
            events: 50,
            wall: Duration::from_millis(5),
            failed: 2,
            shards: Some(2),
            per_worker: vec![
                WorkerStat {
                    worker: 0,
                    jobs: 1,
                    events: 20,
                    busy: Duration::from_millis(2),
                },
                WorkerStat {
                    worker: 1,
                    jobs: 2,
                    events: 30,
                    busy: Duration::from_millis(3),
                },
            ],
        };
        a.absorb(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.events, 150);
        assert_eq!(a.threads, 4);
        assert_eq!(a.wall, Duration::from_millis(15));
        assert_eq!(a.failed, 3);
        assert_eq!(a.shards, Some(2));
        // Worker breakdowns merged by index.
        assert_eq!(a.per_worker.len(), 2);
        assert_eq!(a.per_worker[0].jobs, 3);
        assert_eq!(a.per_worker[0].events, 120);
        assert_eq!(a.per_worker[1].worker, 1);
        assert_eq!(a.per_worker[1].events, 30);
    }

    #[test]
    fn per_worker_stats_account_for_all_jobs_and_events() {
        let items: Vec<(u64, u32)> = (0..20).map(|i| (i, (i % 5) as u32 + 1)).collect();
        for (threads, shards) in [(1usize, None), (4, None), (4, Some(4))] {
            let (_, stats) = sweep_on_pool(&items, toy_sim, threads, shards);
            assert_eq!(stats.per_worker.len(), threads);
            let jobs: u64 = stats.per_worker.iter().map(|w| w.jobs).sum();
            assert_eq!(jobs, items.len() as u64, "threads={threads}");
            let events: u64 = stats.per_worker.iter().map(|w| w.events).sum();
            assert_eq!(events, stats.events, "threads={threads}");
        }
    }

    #[test]
    fn static_shard_placement_matches_serial_and_claimed_pools() {
        // Drive the placement policies directly (no process-global env
        // mutation): static round-robin shards must produce the same
        // item-ordered results as the serial path and the atomic pool.
        let items: Vec<(u64, u32)> = (0..23).map(|i| (i, (i % 5) as u32 + 1)).collect();
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        for k in [2usize, 3, 4] {
            let (out, stats) = sweep_on_pool(&items, toy_sim, k, Some(k));
            assert_eq!(out, serial, "k={k}");
            assert_eq!(stats.shards, Some(k));
            assert_eq!(stats.threads, k);
        }
        let (out, stats) = sweep_on_pool(&items, toy_sim, 3, None);
        assert_eq!(out, serial);
        assert_eq!(stats.shards, None);
    }

    #[test]
    fn profiler_histograms_identical_across_runs_and_shard_counts() {
        use elanib_simcore::profile::ProfDet;
        use elanib_simcore::KernelProfiler;
        use std::sync::Mutex;

        // toy_sim's program, with an explicit per-sim profiler whose
        // deterministic half is merged into a local accumulator.
        let items: Vec<(u64, u32)> = (0..12).map(|i| (i, (i % 4) as u32 + 1)).collect();
        let run = |threads: usize, shards: Option<usize>| -> String {
            let agg = Mutex::new(ProfDet::default());
            sweep_on_pool(
                &items,
                |&(seed, n)| {
                    let prof = KernelProfiler::forced();
                    let sim = Sim::with_profiler(seed, prof.clone());
                    for i in 0..n {
                        let s = sim.clone();
                        sim.spawn(format!("t{i}"), async move {
                            for k in 1..=4u64 {
                                s.sleep(Dur::from_ns(k * (i as u64 + 1))).await;
                            }
                        });
                    }
                    sim.run().unwrap();
                    agg.lock().unwrap().merge(&prof.snapshot().det);
                },
                threads,
                shards,
            );
            agg.into_inner().unwrap().to_json()
        };
        // Byte-identical across shard placements and across repeat runs:
        // the deterministic half is a pure function of the grid, and the
        // merge is commutative, so worker scheduling cannot leak in.
        let base = run(1, None);
        assert!(base.contains("\"poll\""));
        assert_eq!(base, run(2, Some(2)), "2-shard placement diverged");
        assert_eq!(base, run(4, Some(4)), "4-shard placement diverged");
        assert_eq!(base, run(3, None), "claimed pool diverged");
        assert_eq!(base, run(1, None), "repeat run diverged");
    }

    #[test]
    fn isolated_panic_completes_every_other_point() {
        let items: Vec<u32> = (0..12).collect();
        let opts = SweepOpts {
            isolate_panics: true,
        };
        let (out, stats) = sweep_with_opts(&items, opts, |&i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 12);
        assert_eq!(stats.failed, 1);
        for (i, r) in out.into_iter().enumerate() {
            if i == 5 {
                match r {
                    PointResult::Failed {
                        payload,
                        params_hash,
                    } => {
                        assert!(payload.contains("boom at 5"), "{payload}");
                        assert_eq!(params_hash, super::params_hash(&5u32));
                    }
                    PointResult::Ok(_) => panic!("point 5 should have failed"),
                }
            } else {
                assert_eq!(r.ok(), Some(i as u32 * 2));
            }
        }
    }

    #[test]
    fn opts_without_isolation_match_plain_sweep() {
        let items: Vec<u32> = (0..6).collect();
        let (out, stats) = sweep_with_opts(&items, SweepOpts::default(), |&i| i + 1);
        let flat: Vec<u32> = out.into_iter().map(|r| r.ok().unwrap()).collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(stats.failed, 0);
    }
}
