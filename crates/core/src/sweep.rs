//! Parallel sweep engine for exhibit regeneration.
//!
//! Every figure and table in the reproduction is a *sweep*: the same
//! simulation family evaluated over a grid of independent points
//! (message sizes, node counts, network types, config ablations). Each
//! point builds its own [`elanib_simcore::Sim`], runs it to completion
//! and extracts one number — no point shares any state with another.
//! That makes the grid embarrassingly parallel **across** simulations
//! while each kernel stays strictly single-threaded, so parallel
//! execution cannot perturb results: every sim's event sequence is a
//! pure function of its seed and program, and [`sweep`] returns results
//! in item order regardless of which worker finished first or last.
//!
//! ```
//! let squares = elanib_core::sweep::sweep(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! ## Scheduling
//!
//! [`sweep`] fans the items across a scoped pool of OS threads
//! (`std::thread::scope` — no runtime dependency, workers borrow the
//! item slice and the closure directly). Work is claimed by atomic
//! counter, so a slow point (the 32-node MD job dwarfs the 1-node one)
//! doesn't leave siblings idle behind a static partition. The pool
//! size comes from `ELANIB_SWEEP_THREADS`, defaulting to the machine's
//! available parallelism; `ELANIB_SWEEP_THREADS=1` bypasses the pool
//! entirely and runs the items inline, in order, on the calling thread
//! — the reference serial mode the determinism regression tests diff
//! against.
//!
//! ## Instrumentation
//!
//! [`sweep_with_stats`] also returns a [`SweepStats`]: jobs run, pool
//! width, kernel events dispatched (sampled from
//! [`elanib_simcore::thread_events`] around each job, so only
//! simulation work is counted) and wall time.
//! [`SweepStats::record`] appends a JSON-lines perf record to the file
//! named by `ELANIB_BENCH_JSON`, which is how `BENCH_sweep.json`
//! speedup evidence is captured.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Throughput report for one [`sweep_with_stats`] call.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Number of sweep points executed.
    pub jobs: usize,
    /// Worker threads used (1 = serial inline mode).
    pub threads: usize,
    /// Kernel events dispatched by the jobs' simulations, summed over
    /// workers. Zero if the jobs ran no sims.
    pub events: u64,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
}

impl SweepStats {
    /// Aggregate event throughput across the pool.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Merge another sweep's stats into this one (summing jobs, events
    /// and wall time; keeping the widest pool). Lets a driver that runs
    /// several sweeps report one combined record.
    pub fn absorb(&mut self, other: &SweepStats) {
        self.jobs += other.jobs;
        self.events += other.events;
        self.wall += other.wall;
        self.threads = self.threads.max(other.threads);
    }

    /// Append a `{"kind":"sweep",...}` JSON record for this sweep to
    /// the JSON-lines file named by `ELANIB_BENCH_JSON`. No-op when the
    /// variable is unset or empty.
    ///
    /// Several exhibit binaries can append to the same file from a
    /// driver script, so the line goes through
    /// [`elanib_simcore::trace::jsonl::append_line`], which issues the
    /// whole record as one `O_APPEND` write — concurrent appenders can
    /// interleave lines but never split one.
    pub fn record(&self, label: &str) {
        let Ok(path) = std::env::var("ELANIB_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = format!(
            "{{\"kind\":\"sweep\",\"label\":\"{}\",\"jobs\":{},\"threads\":{},\"events\":{},\"wall_s\":{:.6},\"events_per_sec\":{:.1},\"unix_ts\":{}}}",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.jobs,
            self.threads,
            self.events,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            ts
        );
        let _ = elanib_simcore::trace::jsonl::append_line(std::path::Path::new(&path), &line);
    }
}

/// Pool width a sweep will use for `n_items` work items:
/// `ELANIB_SWEEP_THREADS` if set (clamped to ≥ 1), otherwise the
/// machine's available parallelism — never more threads than items.
pub fn sweep_threads(n_items: usize) -> usize {
    let configured = std::env::var("ELANIB_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    configured.max(1).min(n_items.max(1))
}

/// Evaluate `f` over every item, in parallel, returning results in
/// item order. See the [module docs](self) for the execution model.
///
/// A panic in any job is propagated to the caller after the scope
/// joins (sibling jobs already claimed still run to completion).
pub fn sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_with_stats(items, f).0
}

/// [`sweep`], additionally reporting a [`SweepStats`].
pub fn sweep_with_stats<I, T, F>(items: &[I], f: F) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let t0 = Instant::now();
    let threads = sweep_threads(items.len());
    let events = AtomicU64::new(0);

    let run_one = |i: usize| -> T {
        let ev0 = elanib_simcore::thread_events();
        let out = f(&items[i]);
        events.fetch_add(
            elanib_simcore::thread_events() - ev0,
            Ordering::Relaxed,
        );
        out
    };

    let results: Vec<T> = if threads <= 1 {
        // Serial reference mode: inline, in order, on this thread.
        (0..items.len()).map(run_one).collect()
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);

        let worker = || {
            let mut out: Vec<(usize, T)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                out.push((i, run_one(i)));
            }
            out
        };

        let mut panic_payload = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            for h in handles {
                match h.join() {
                    Ok(batch) => {
                        for (i, t) in batch {
                            slots[i] = Some(t);
                        }
                    }
                    Err(p) => panic_payload = Some(p),
                }
            }
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every sweep index claimed exactly once"))
            .collect()
    };

    let stats = SweepStats {
        jobs: items.len(),
        threads,
        events: events.into_inner(),
        wall: t0.elapsed(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_simcore::{Dur, Sim};

    /// Tiny sim: `n` tasks each sleeping a few times; returns
    /// (final time in ns, events processed).
    fn toy_sim(seed_and_n: &(u64, u32)) -> (u64, u64) {
        let &(seed, n) = seed_and_n;
        let sim = Sim::new(seed);
        for i in 0..n {
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                for k in 1..=4u64 {
                    s.sleep(Dur::from_ns(k * (i as u64 + 1))).await;
                }
            });
        }
        let t = sim.run().unwrap();
        (t.as_ps(), sim.events_processed())
    }

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<(u64, u32)> = (0..40).map(|i| (i, (i % 7) as u32 + 1)).collect();
        let out = sweep(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        // Can't set the env var here (tests share a process), so
        // exercise both engine paths directly via sweep_threads' two
        // regimes: 1 item forces the serial path, many items the pool.
        let items: Vec<(u64, u32)> = (0..16).map(|i| (100 + i, 3)).collect();
        let (par, stats) = sweep_with_stats(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(par, serial);
        assert_eq!(stats.jobs, 16);
        assert!(stats.threads >= 1);
        // Event accounting must equal the sum over jobs.
        let total: u64 = serial.iter().map(|&(_, e)| e).sum();
        assert_eq!(stats.events, total);
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<(u64, u32)> = vec![];
        assert!(sweep(&none, toy_sim).is_empty());
        let one = [(7u64, 2u32)];
        let (out, stats) = sweep_with_stats(&one, toy_sim);
        assert_eq!(out, vec![toy_sim(&one[0])]);
        assert_eq!(stats.threads, 1, "one item must use the inline path");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            sweep(&items, |&i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = SweepStats {
            jobs: 2,
            threads: 4,
            events: 100,
            wall: Duration::from_millis(10),
        };
        let b = SweepStats {
            jobs: 3,
            threads: 2,
            events: 50,
            wall: Duration::from_millis(5),
        };
        a.absorb(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.events, 150);
        assert_eq!(a.threads, 4);
        assert_eq!(a.wall, Duration::from_millis(15));
    }
}
