//! Parallel sweep engine for exhibit regeneration.
//!
//! Every figure and table in the reproduction is a *sweep*: the same
//! simulation family evaluated over a grid of independent points
//! (message sizes, node counts, network types, config ablations). Each
//! point builds its own [`elanib_simcore::Sim`], runs it to completion
//! and extracts one number — no point shares any state with another.
//! That makes the grid embarrassingly parallel **across** simulations
//! while each kernel stays strictly single-threaded, so parallel
//! execution cannot perturb results: every sim's event sequence is a
//! pure function of its seed and program, and [`sweep`] returns results
//! in item order regardless of which worker finished first or last.
//!
//! ```
//! let squares = elanib_core::sweep::sweep(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! ## Scheduling
//!
//! [`sweep`] fans the items across a scoped pool of OS threads
//! (`std::thread::scope` — no runtime dependency, workers borrow the
//! item slice and the closure directly). Work is claimed by atomic
//! counter, so a slow point (the 32-node MD job dwarfs the 1-node one)
//! doesn't leave siblings idle behind a static partition. The pool
//! size comes from `ELANIB_SWEEP_THREADS`, defaulting to the machine's
//! available parallelism; `ELANIB_SWEEP_THREADS=1` bypasses the pool
//! entirely and runs the items inline, in order, on the calling thread
//! — the reference serial mode the determinism regression tests diff
//! against.
//!
//! ## Sharded mode (`ELANIB_DES_SHARDS`)
//!
//! Setting `ELANIB_DES_SHARDS=k` (see
//! [`elanib_simcore::des_shards`]) switches the pool to **static
//! round-robin shard placement**: shard `i` runs items `i`, `i+k`,
//! `i+2k`, … on its own thread, so which worker runs which simulation
//! is a pure function of the item index — no atomic race decides
//! placement. Results are still returned in item order and each kernel
//! is still single-threaded, so every exhibit CSV is byte-identical to
//! a serial run; the determinism gate in `bench/tests/des_determinism`
//! and the `par-des` CI stage both diff exactly that. When set, this
//! variable takes precedence over `ELANIB_SWEEP_THREADS`
//! (`ELANIB_DES_SHARDS=1` is the inline serial mode). This is the
//! exhibit-level face of the conservative sharded engine; the
//! in-one-sim engine lives in `elanib_simcore::shard` with fabric
//! cuts supplying its lookahead (`elanib_fabric::Partition`).
//!
//! ## Instrumentation
//!
//! [`sweep_with_stats`] also returns a [`SweepStats`]: jobs run, pool
//! width, kernel events dispatched (sampled from
//! [`elanib_simcore::thread_events`] around each job, so only
//! simulation work is counted) and wall time.
//! [`SweepStats::record`] appends a JSON-lines perf record to the file
//! named by `ELANIB_BENCH_JSON`, which is how `BENCH_sweep.json`
//! speedup evidence is captured.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-worker observability record of one sweep: how many points the
/// worker claimed, the kernel events it dispatched, and how long it
/// was busy. Always gathered — a few samples per worker, not per job.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStat {
    pub worker: usize,
    pub jobs: u64,
    pub events: u64,
    /// Wall time from the worker's first claim attempt to its exit.
    pub busy: Duration,
}

/// Upper bound on panic messages retained in [`SweepStats::failures`]
/// (and serialized into the JSONL record). Keeps a pathological batch
/// — every point dead — from ballooning the perf log.
pub const MAX_RETAINED_FAILURES: usize = 5;

/// Throughput report for one [`sweep_with_stats`] call.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Number of sweep points executed.
    pub jobs: usize,
    /// Worker threads used (1 = serial inline mode).
    pub threads: usize,
    /// Kernel events dispatched by the jobs' simulations, summed over
    /// workers. Zero if the jobs ran no sims.
    pub events: u64,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// Points that panicked and were isolated (always 0 unless the
    /// sweep ran with [`SweepOpts::isolate_panics`]).
    pub failed: usize,
    /// The first [`MAX_RETAINED_FAILURES`] isolated panic messages, in
    /// completion order — so a fuzz batch's failures are attributable
    /// from the JSONL record alone, without re-running the sweep.
    /// `failed` still counts *every* failure; this is a bounded sample.
    pub failures: Vec<String>,
    /// `Some(k)` when `ELANIB_DES_SHARDS=k` forced static shard
    /// placement; `None` under ordinary atomic work claiming.
    pub shards: Option<usize>,
    /// Per-worker breakdown, indexed by worker (one entry, worker 0,
    /// in the serial inline mode).
    pub per_worker: Vec<WorkerStat>,
    /// Kernel events dispatched by each item's own simulation, in item
    /// order — the per-point cost feedback [`sweep_guided_with_stats`]
    /// hints are calibrated from. Not serialized into the JSONL record
    /// (per-worker rollups cover the balance evidence).
    pub per_item_events: Vec<u64>,
}

impl SweepStats {
    /// Aggregate event throughput across the pool.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Merge another sweep's stats into this one (summing jobs, events
    /// and wall time; keeping the widest pool). Lets a driver that runs
    /// several sweeps report one combined record.
    pub fn absorb(&mut self, other: &SweepStats) {
        self.jobs += other.jobs;
        self.events += other.events;
        self.wall += other.wall;
        self.threads = self.threads.max(other.threads);
        self.failed += other.failed;
        for m in &other.failures {
            if self.failures.len() >= MAX_RETAINED_FAILURES {
                break;
            }
            self.failures.push(m.clone());
        }
        self.shards = self.shards.or(other.shards);
        self.per_item_events
            .extend_from_slice(&other.per_item_events);
        // Merge worker breakdowns by worker index (the pools of the
        // absorbed sweeps map onto the same OS-thread slots).
        for w in &other.per_worker {
            if self.per_worker.len() <= w.worker {
                self.per_worker
                    .resize_with(w.worker + 1, WorkerStat::default);
                for (i, s) in self.per_worker.iter_mut().enumerate() {
                    s.worker = i;
                }
            }
            let s = &mut self.per_worker[w.worker];
            s.jobs += w.jobs;
            s.events += w.events;
            s.busy += w.busy;
        }
    }

    /// Append a `{"kind":"sweep",...}` JSON record for this sweep to
    /// the JSON-lines file named by `ELANIB_BENCH_JSON`. No-op when the
    /// variable is unset or empty.
    ///
    /// Several exhibit binaries can append to the same file from a
    /// driver script, so the line goes through
    /// [`elanib_simcore::trace::jsonl::append_line`], which issues the
    /// whole record as one `O_APPEND` write — concurrent appenders can
    /// interleave lines but never split one.
    pub fn record(&self, label: &str) {
        let Ok(path) = std::env::var("ELANIB_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let shards = match self.shards {
            Some(k) => k.to_string(),
            None => "null".to_string(),
        };
        let mut line = format!(
            "{{\"kind\":\"sweep\",\"schema\":3,\"git_rev\":\"{}\",\"label\":\"{}\",\"jobs\":{},\"threads\":{},\"shards\":{},\"payload_mode\":\"{}\",\"events\":{},\"failed\":{},\"wall_s\":{:.6},\"events_per_sec\":{:.1},\"unix_ts\":{}",
            elanib_simcore::trace::git_rev(),
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.jobs,
            self.threads,
            shards,
            elanib_simcore::payload_mode(),
            self.events,
            self.failed,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            ts
        );
        if !self.failures.is_empty() {
            line.push_str(",\"failures\":[");
            for (i, m) in self.failures.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                // Panic messages can span lines (deadlock reports do);
                // JSON strings cannot.
                let esc = m
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
                    .replace('\t', "\\t");
                line.push('"');
                line.push_str(&esc);
                line.push('"');
            }
            line.push(']');
        }
        // Worker breakdown last, with short non-colliding keys, so the
        // first-occurrence field scans the gate/report use still hit
        // the top-level fields above.
        line.push_str(",\"workers\":[");
        for (i, w) in self.per_worker.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{{\"w\":{},\"j\":{},\"e\":{},\"busy_s\":{:.6}}}",
                w.worker,
                w.jobs,
                w.events,
                w.busy.as_secs_f64()
            ));
        }
        line.push_str("]}");
        let _ = elanib_simcore::trace::jsonl::append_line(std::path::Path::new(&path), &line);
    }
}

/// Pool width a sweep will use for `n_items` work items:
/// `ELANIB_DES_SHARDS` if set (static shard placement, takes
/// precedence), else `ELANIB_SWEEP_THREADS` if set (clamped to ≥ 1),
/// otherwise the machine's available parallelism — never more threads
/// than items.
pub fn sweep_threads(n_items: usize) -> usize {
    if let Some(k) = elanib_simcore::des_shards() {
        return k.max(1).min(n_items.max(1));
    }
    let configured = std::env::var("ELANIB_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    configured.max(1).min(n_items.max(1))
}

/// `ELANIB_GUIDED_PLACEMENT`: cost-guided sweep placement for
/// [`sweep_guided_with_stats`], on by default. `0` / `off` ignores the
/// hints and falls back to plain order (atomic claiming) or static
/// round-robin (shard mode) — the escape hatch the placement A/B
/// records diff against. Read per call (tests flip it mid-process).
pub fn guided_placement() -> bool {
    !matches!(
        std::env::var("ELANIB_GUIDED_PLACEMENT").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// Item indices in longest-processing-time order: descending cost
/// hint, ties broken by the lower index — fully deterministic.
fn lpt_order(hints: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..hints.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(hints[i]), i));
    order
}

/// Deterministic LPT assignment of items onto `threads` workers:
/// biggest hint first, each onto the least-loaded worker (ties to the
/// lowest worker index) — the classic greedy makespan bound, against
/// round-robin's adversarial worst case. Computed identically on
/// every run, so shard-mode placement stays a pure function of the
/// hints.
fn lpt_assign(hints: &[u64], threads: usize) -> Vec<Vec<usize>> {
    let mut assign: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut load = vec![0u64; threads];
    for i in lpt_order(hints) {
        let w = (0..threads).min_by_key(|&w| (load[w], w)).unwrap();
        load[w] = load[w].saturating_add(hints[i].max(1));
        assign[w].push(i);
    }
    assign
}

/// Evaluate `f` over every item, in parallel, returning results in
/// item order. See the [module docs](self) for the execution model.
///
/// A panic in any job is propagated to the caller after the scope
/// joins (sibling jobs already claimed still run to completion).
pub fn sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_with_stats(items, f).0
}

/// [`sweep`], additionally reporting a [`SweepStats`].
pub fn sweep_with_stats<I, T, F>(items: &[I], f: F) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let shards = elanib_simcore::des_shards();
    let threads = sweep_threads(items.len());
    sweep_on_pool(items, f, threads, shards, None)
}

/// [`sweep_with_stats`] with per-item cost hints guiding placement
/// (`hints[i]` ∝ the expected work of `items[i]`: kernel events from a
/// previous run's [`SweepStats::per_item_events`], or an analytic
/// proxy like the point's rank count). Big jobs are claimed first
/// (atomic mode) or LPT-packed onto workers (static shard mode), so a
/// grid whose largest point dwarfs the rest no longer serializes
/// behind a nearly-drained pool. Placement never affects results —
/// every item is still its own single-threaded sim, returned in item
/// order — and `ELANIB_GUIDED_PLACEMENT=0` falls back to unhinted
/// placement.
pub fn sweep_guided_with_stats<I, T, F>(items: &[I], hints: &[u64], f: F) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    assert_eq!(
        hints.len(),
        items.len(),
        "one cost hint per sweep item required"
    );
    let shards = elanib_simcore::des_shards();
    let threads = sweep_threads(items.len());
    let hints = guided_placement().then_some(hints);
    sweep_on_pool(items, f, threads, shards, hints)
}

/// [`sweep_guided_with_stats`] without the stats.
pub fn sweep_guided<I, T, F>(items: &[I], hints: &[u64], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_guided_with_stats(items, hints, f).0
}

/// The engine under [`sweep_with_stats`]: explicit pool width and
/// placement policy. `shards = Some(_)` selects static placement —
/// round-robin (worker `w` runs items `w, w+threads, w+2·threads, …`)
/// or, with cost `hints`, deterministic LPT packing — so the
/// item→thread mapping is a pure function of the inputs; `None`
/// selects atomic work claiming (with `hints`, claimed biggest-first).
/// Separated out (and kept crate-visible) so tests can drive every
/// placement without mutating process-global environment.
pub(crate) fn sweep_on_pool<I, T, F>(
    items: &[I],
    f: F,
    threads: usize,
    shards: Option<usize>,
    hints: Option<&[u64]>,
) -> (Vec<T>, SweepStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let t0 = Instant::now();
    let events = AtomicU64::new(0);
    let done = AtomicUsize::new(0);
    let per_item: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();

    let run_one = |i: usize| -> T {
        let ev0 = elanib_simcore::thread_events();
        let out = f(&items[i]);
        let delta = elanib_simcore::thread_events() - ev0;
        per_item[i].store(delta, Ordering::Relaxed);
        events.fetch_add(delta, Ordering::Relaxed);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        // Live heartbeat for long sweeps (no-op unless ELANIB_PROGRESS
        // is set; rate-limited inside, fields built lazily).
        elanib_simcore::trace::progress::beat("sweep", || {
            format!(
                "\"done\":{d},\"total\":{},\"events\":{}",
                items.len(),
                events.load(Ordering::Relaxed)
            )
        });
        out
    };

    // Per-worker accounting: thread_events is per-OS-thread, so
    // sampling it at a worker's entry and exit attributes events to
    // that worker exactly.
    let worker_stat = |w: usize, jobs: u64, ev0: u64, started: Instant| WorkerStat {
        worker: w,
        jobs,
        events: elanib_simcore::thread_events() - ev0,
        busy: started.elapsed(),
    };

    let (results, per_worker): (Vec<T>, Vec<WorkerStat>) = if threads <= 1 {
        // Serial reference mode: inline, in order, on this thread.
        let ev0 = elanib_simcore::thread_events();
        let out: Vec<T> = (0..items.len()).map(run_one).collect();
        let ws = worker_stat(0, items.len() as u64, ev0, t0);
        (out, vec![ws])
    } else {
        let next = AtomicUsize::new(0);
        let static_rr = shards.is_some();
        // Guided placement is resolved once, up front, into plain
        // data: an LPT packing for the static pool, a biggest-first
        // claim order for the dynamic one. Workers only read it.
        let assignment: Option<Vec<Vec<usize>>> = match (static_rr, hints) {
            (true, Some(h)) => Some(lpt_assign(h, threads)),
            _ => None,
        };
        let claim_order: Option<Vec<usize>> = match (static_rr, hints) {
            (false, Some(h)) => Some(lpt_order(h)),
            _ => None,
        };
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);

        let worker = |w: usize| {
            let next = &next;
            let run_one = &run_one;
            let worker_stat = &worker_stat;
            let assignment = &assignment;
            let claim_order = &claim_order;
            move || {
                let started = Instant::now();
                let ev0 = elanib_simcore::thread_events();
                let mut out: Vec<(usize, T)> = Vec::new();
                if let Some(assign) = assignment {
                    // Guided static placement: this shard's items come
                    // from the precomputed LPT packing.
                    for &i in &assign[w] {
                        out.push((i, run_one(i)));
                    }
                } else if static_rr {
                    // Deterministic placement: this shard's items are a
                    // pure function of its index.
                    let mut i = w;
                    while i < items.len() {
                        out.push((i, run_one(i)));
                        i += threads;
                    }
                } else {
                    loop {
                        let n = next.fetch_add(1, Ordering::Relaxed);
                        if n >= items.len() {
                            break;
                        }
                        // With hints the shared counter walks the LPT
                        // order, so the biggest jobs are claimed first.
                        let i = claim_order.as_ref().map_or(n, |o| o[n]);
                        out.push((i, run_one(i)));
                    }
                }
                let ws = worker_stat(w, out.len() as u64, ev0, started);
                (out, ws)
            }
        };

        let mut panic_payload = None;
        let mut worker_stats: Vec<WorkerStat> = vec![WorkerStat::default(); threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|w| scope.spawn(worker(w))).collect();
            for h in handles {
                match h.join() {
                    Ok((batch, ws)) => {
                        worker_stats[ws.worker] = ws;
                        for (i, t) in batch {
                            slots[i] = Some(t);
                        }
                    }
                    Err(p) => panic_payload = Some(p),
                }
            }
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        (
            slots
                .into_iter()
                .map(|s| s.expect("every sweep index claimed exactly once"))
                .collect(),
            worker_stats,
        )
    };

    let stats = SweepStats {
        jobs: items.len(),
        threads,
        events: events.into_inner(),
        wall: t0.elapsed(),
        failed: 0,
        failures: Vec::new(),
        shards,
        per_worker,
        per_item_events: per_item.into_iter().map(AtomicU64::into_inner).collect(),
    };
    (results, stats)
}

/// Execution options for [`sweep_with_opts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOpts {
    /// Catch a panicking point instead of propagating it: the point
    /// becomes [`PointResult::Failed`], every other point still runs,
    /// and the failure count lands in [`SweepStats::failed`] (and the
    /// JSONL perf record). Off by default — a panic in a *trusted*
    /// exhibit grid is a bug and should abort loudly.
    pub isolate_panics: bool,
}

/// Outcome of one sweep point under [`SweepOpts::isolate_panics`].
#[derive(Clone, Debug, PartialEq)]
pub enum PointResult<T> {
    Ok(T),
    /// The point panicked. `payload` is the panic message;
    /// `params_hash` fingerprints the item's `Debug` form so a driver
    /// can report *which* grid cell died without carrying the item.
    Failed {
        payload: String,
        params_hash: u64,
    },
}

impl<T> PointResult<T> {
    pub fn ok(self) -> Option<T> {
        match self {
            PointResult::Ok(t) => Some(t),
            PointResult::Failed { .. } => None,
        }
    }

    pub fn is_failed(&self) -> bool {
        matches!(self, PointResult::Failed { .. })
    }
}

/// Fingerprint a sweep item for failure reports.
fn params_hash<I: std::fmt::Debug>(item: &I) -> u64 {
    use std::hash::Hasher;
    let mut h = elanib_simcore::FxHasher::default();
    h.write(format!("{item:?}").as_bytes());
    h.finish()
}

/// [`sweep_with_stats`] with per-point panic isolation available. With
/// `opts.isolate_panics` a panicking job is caught on its worker
/// thread, recorded as [`PointResult::Failed`], and the sweep finishes
/// every remaining point; without it the semantics are exactly
/// [`sweep_with_stats`] (panics propagate after the scope joins).
pub fn sweep_with_opts<I, T, F>(
    items: &[I],
    opts: SweepOpts,
    f: F,
) -> (Vec<PointResult<T>>, SweepStats)
where
    I: Sync + std::fmt::Debug,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if !opts.isolate_panics {
        let (out, stats) = sweep_with_stats(items, f);
        return (out.into_iter().map(PointResult::Ok).collect(), stats);
    }
    let failed = AtomicUsize::new(0);
    let retained: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let (out, mut stats) = sweep_with_stats(items, |item| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
            Ok(t) => PointResult::Ok(t),
            Err(p) => {
                let payload = if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                failed.fetch_add(1, Ordering::Relaxed);
                {
                    let mut r = retained.lock().unwrap();
                    if r.len() < MAX_RETAINED_FAILURES {
                        r.push(payload.clone());
                    }
                }
                eprintln!("[sweep] point {item:?} failed: {payload}");
                PointResult::Failed {
                    payload,
                    params_hash: params_hash(item),
                }
            }
        }
    });
    stats.failed = failed.into_inner();
    stats.failures = retained.into_inner().unwrap();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_simcore::{Dur, Sim};

    /// Tiny sim: `n` tasks each sleeping a few times; returns
    /// (final time in ns, events processed).
    fn toy_sim(seed_and_n: &(u64, u32)) -> (u64, u64) {
        let &(seed, n) = seed_and_n;
        let sim = Sim::new(seed);
        for i in 0..n {
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                for k in 1..=4u64 {
                    s.sleep(Dur::from_ns(k * (i as u64 + 1))).await;
                }
            });
        }
        let t = sim.run().unwrap();
        (t.as_ps(), sim.events_processed())
    }

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<(u64, u32)> = (0..40).map(|i| (i, (i % 7) as u32 + 1)).collect();
        let out = sweep(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        // Can't set the env var here (tests share a process), so
        // exercise both engine paths directly via sweep_threads' two
        // regimes: 1 item forces the serial path, many items the pool.
        let items: Vec<(u64, u32)> = (0..16).map(|i| (100 + i, 3)).collect();
        let (par, stats) = sweep_with_stats(&items, toy_sim);
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        assert_eq!(par, serial);
        assert_eq!(stats.jobs, 16);
        assert!(stats.threads >= 1);
        // Event accounting must equal the sum over jobs.
        let total: u64 = serial.iter().map(|&(_, e)| e).sum();
        assert_eq!(stats.events, total);
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<(u64, u32)> = vec![];
        assert!(sweep(&none, toy_sim).is_empty());
        let one = [(7u64, 2u32)];
        let (out, stats) = sweep_with_stats(&one, toy_sim);
        assert_eq!(out, vec![toy_sim(&one[0])]);
        assert_eq!(stats.threads, 1, "one item must use the inline path");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            sweep(&items, |&i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = SweepStats {
            jobs: 2,
            threads: 4,
            events: 100,
            wall: Duration::from_millis(10),
            failed: 1,
            failures: vec!["boom-a".into()],
            shards: None,
            per_worker: vec![WorkerStat {
                worker: 0,
                jobs: 2,
                events: 100,
                busy: Duration::from_millis(9),
            }],
            per_item_events: vec![60, 40],
        };
        let b = SweepStats {
            jobs: 3,
            threads: 2,
            events: 50,
            wall: Duration::from_millis(5),
            failed: 2,
            failures: vec!["boom-b1".into(), "boom-b2".into()],
            shards: Some(2),
            per_worker: vec![
                WorkerStat {
                    worker: 0,
                    jobs: 1,
                    events: 20,
                    busy: Duration::from_millis(2),
                },
                WorkerStat {
                    worker: 1,
                    jobs: 2,
                    events: 30,
                    busy: Duration::from_millis(3),
                },
            ],
            per_item_events: vec![20, 10, 20],
        };
        a.absorb(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.events, 150);
        assert_eq!(a.threads, 4);
        assert_eq!(a.wall, Duration::from_millis(15));
        assert_eq!(a.failed, 3);
        assert_eq!(
            a.failures,
            vec!["boom-a".to_string(), "boom-b1".into(), "boom-b2".into()]
        );
        assert_eq!(a.shards, Some(2));
        // Worker breakdowns merged by index.
        assert_eq!(a.per_worker.len(), 2);
        assert_eq!(a.per_worker[0].jobs, 3);
        assert_eq!(a.per_worker[0].events, 120);
        assert_eq!(a.per_worker[1].worker, 1);
        assert_eq!(a.per_worker[1].events, 30);
        assert_eq!(a.per_item_events, vec![60, 40, 20, 10, 20]);
    }

    #[test]
    fn per_worker_stats_account_for_all_jobs_and_events() {
        let items: Vec<(u64, u32)> = (0..20).map(|i| (i, (i % 5) as u32 + 1)).collect();
        for (threads, shards) in [(1usize, None), (4, None), (4, Some(4))] {
            let (_, stats) = sweep_on_pool(&items, toy_sim, threads, shards, None);
            assert_eq!(stats.per_worker.len(), threads);
            let jobs: u64 = stats.per_worker.iter().map(|w| w.jobs).sum();
            assert_eq!(jobs, items.len() as u64, "threads={threads}");
            let events: u64 = stats.per_worker.iter().map(|w| w.events).sum();
            assert_eq!(events, stats.events, "threads={threads}");
        }
    }

    #[test]
    fn static_shard_placement_matches_serial_and_claimed_pools() {
        // Drive the placement policies directly (no process-global env
        // mutation): static round-robin shards must produce the same
        // item-ordered results as the serial path and the atomic pool.
        let items: Vec<(u64, u32)> = (0..23).map(|i| (i, (i % 5) as u32 + 1)).collect();
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        for k in [2usize, 3, 4] {
            let (out, stats) = sweep_on_pool(&items, toy_sim, k, Some(k), None);
            assert_eq!(out, serial, "k={k}");
            assert_eq!(stats.shards, Some(k));
            assert_eq!(stats.threads, k);
        }
        let (out, stats) = sweep_on_pool(&items, toy_sim, 3, None, None);
        assert_eq!(out, serial);
        assert_eq!(stats.shards, None);
    }

    #[test]
    fn profiler_histograms_identical_across_runs_and_shard_counts() {
        use elanib_simcore::profile::ProfDet;
        use elanib_simcore::KernelProfiler;
        use std::sync::Mutex;

        // toy_sim's program, with an explicit per-sim profiler whose
        // deterministic half is merged into a local accumulator.
        let items: Vec<(u64, u32)> = (0..12).map(|i| (i, (i % 4) as u32 + 1)).collect();
        let run = |threads: usize, shards: Option<usize>| -> String {
            let agg = Mutex::new(ProfDet::default());
            sweep_on_pool(
                &items,
                |&(seed, n)| {
                    let prof = KernelProfiler::forced();
                    let sim = Sim::with_profiler(seed, prof.clone());
                    for i in 0..n {
                        let s = sim.clone();
                        sim.spawn(format!("t{i}"), async move {
                            for k in 1..=4u64 {
                                s.sleep(Dur::from_ns(k * (i as u64 + 1))).await;
                            }
                        });
                    }
                    sim.run().unwrap();
                    agg.lock().unwrap().merge(&prof.snapshot().det);
                },
                threads,
                shards,
                None,
            );
            agg.into_inner().unwrap().to_json()
        };
        // Byte-identical across shard placements and across repeat runs:
        // the deterministic half is a pure function of the grid, and the
        // merge is commutative, so worker scheduling cannot leak in.
        let base = run(1, None);
        assert!(base.contains("\"poll\""));
        assert_eq!(base, run(2, Some(2)), "2-shard placement diverged");
        assert_eq!(base, run(4, Some(4)), "4-shard placement diverged");
        assert_eq!(base, run(3, None), "claimed pool diverged");
        assert_eq!(base, run(1, None), "repeat run diverged");
    }

    #[test]
    fn isolated_panic_completes_every_other_point() {
        let items: Vec<u32> = (0..12).collect();
        let opts = SweepOpts {
            isolate_panics: true,
        };
        let (out, stats) = sweep_with_opts(&items, opts, |&i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 12);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.failures.len(), 1);
        assert!(
            stats.failures[0].contains("boom at 5"),
            "{:?}",
            stats.failures
        );
        for (i, r) in out.into_iter().enumerate() {
            if i == 5 {
                match r {
                    PointResult::Failed {
                        payload,
                        params_hash,
                    } => {
                        assert!(payload.contains("boom at 5"), "{payload}");
                        assert_eq!(params_hash, super::params_hash(&5u32));
                    }
                    PointResult::Ok(_) => panic!("point 5 should have failed"),
                }
            } else {
                assert_eq!(r.ok(), Some(i as u32 * 2));
            }
        }
    }

    #[test]
    fn retained_failure_sample_is_bounded() {
        // Every point dies: the count reports all of them, the retained
        // message sample stays at the bound.
        let items: Vec<u32> = (0..20).collect();
        let opts = SweepOpts {
            isolate_panics: true,
        };
        let (out, stats) = sweep_with_opts(&items, opts, |&i| -> u32 { panic!("dead {i}") });
        assert_eq!(stats.failed, 20);
        assert_eq!(stats.failures.len(), MAX_RETAINED_FAILURES);
        assert!(out.iter().all(|r| r.is_failed()));
    }

    #[test]
    fn opts_without_isolation_match_plain_sweep() {
        let items: Vec<u32> = (0..6).collect();
        let (out, stats) = sweep_with_opts(&items, SweepOpts::default(), |&i| i + 1);
        let flat: Vec<u32> = out.into_iter().map(|r| r.ok().unwrap()).collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn lpt_order_is_descending_with_index_ties() {
        assert_eq!(lpt_order(&[3, 9, 9, 1, 7]), vec![1, 2, 4, 0, 3]);
        assert_eq!(lpt_order(&[5, 5, 5]), vec![0, 1, 2]);
        assert!(lpt_order(&[]).is_empty());
    }

    #[test]
    fn lpt_assign_balances_an_adversarial_round_robin_case() {
        // Round-robin over [big, small, big, small] with 2 workers puts
        // both bigs on worker 0; LPT splits them one per worker.
        let hints = [100u64, 1, 100, 1];
        let assign = lpt_assign(&hints, 2);
        let load = |w: &Vec<usize>| -> u64 { w.iter().map(|&i| hints[i]).sum() };
        assert_eq!(load(&assign[0]), 101);
        assert_eq!(load(&assign[1]), 101);
        // Every item placed exactly once.
        let mut all: Vec<usize> = assign.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Deterministic: recomputing yields the identical packing.
        assert_eq!(assign, lpt_assign(&hints, 2));
        // Zero hints count as 1 so empty workers still round-robin.
        let z = lpt_assign(&[0, 0, 0, 0], 2);
        assert_eq!(z.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 2]);
    }

    #[test]
    fn guided_placement_matches_unguided_results() {
        // Placement is pure scheduling: hinted pools (both modes) must
        // return byte-identical item-ordered results, and the per-item
        // event feedback must match the serial reference per index.
        let items: Vec<(u64, u32)> = (0..17).map(|i| (i, (i % 6) as u32 + 1)).collect();
        let serial: Vec<_> = items.iter().map(toy_sim).collect();
        let serial_events: Vec<u64> = serial.iter().map(|&(_, e)| e).collect();
        let hints: Vec<u64> = (0..items.len() as u64).rev().collect();
        for shards in [None, Some(3)] {
            let (out, stats) = sweep_on_pool(&items, toy_sim, 3, shards, Some(&hints));
            assert_eq!(out, serial, "shards={shards:?}");
            assert_eq!(stats.per_item_events, serial_events, "shards={shards:?}");
            let jobs: u64 = stats.per_worker.iter().map(|w| w.jobs).sum();
            assert_eq!(jobs, items.len() as u64);
        }
    }

    #[test]
    fn sweep_guided_with_stats_runs_and_reports_per_item_events() {
        let items: Vec<(u64, u32)> = (0..9).map(|i| (i, (i % 3) as u32 + 1)).collect();
        let hints: Vec<u64> = items.iter().map(|&(_, n)| n as u64 * 10).collect();
        let (out, stats) = sweep_guided_with_stats(&items, &hints, toy_sim);
        assert_eq!(out, items.iter().map(toy_sim).collect::<Vec<_>>());
        assert_eq!(stats.per_item_events.len(), items.len());
        let total: u64 = stats.per_item_events.iter().sum();
        assert_eq!(
            total, stats.events,
            "per-item feedback must sum to the total"
        );
    }

    #[test]
    #[should_panic(expected = "one cost hint per sweep item")]
    fn guided_sweep_rejects_mismatched_hints() {
        let items = [(1u64, 1u32), (2, 1)];
        sweep_guided(&items, &[5], toy_sim);
    }
}
