//! Plain-text report formatting shared by the figure/table
//! regenerators: aligned columns and CSV emission, no dependencies.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with right-aligned numeric-looking columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncol {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }

    /// Render as CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with engineering-ish precision for report cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.1 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["size", "latency"]);
        t.row(vec!["8".to_string(), f(2.95)]);
        t.row(vec!["1048576".to_string(), f(1180.0)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[2].trim_start().starts_with('8'));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "2"]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_formatting_tiers() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(42.25), "42.2");
        assert_eq!(f(2.9517), "2.952");
        assert_eq!(f(0.00123), "0.00123");
    }
}
