//! # simcache — content-addressed memoization of sweep points
//!
//! Every exhibit in the reproduction is a grid of *pure* simulations:
//! the result of a point is a function of nothing but its parameter
//! struct and the baked-in seed. Several exhibits share points (the
//! fig1 microbenchmark sizes recur in the ablations; fig2/fig3
//! node-counts recur in the studies), and `regen_all.sh` re-simulates
//! all of them from scratch on every run. This module makes point
//! results content-addressed so identical points are simulated once:
//!
//! * **Memo tier** (in-run, always on unless disabled): a
//!   process-global table keyed by the point's *full structural key*
//!   (domain + crate version + `Debug` rendering of every parameter).
//!   Sweep workers that fan out duplicate points, and figure drivers
//!   that revisit a grid point, get the stored bytes back instead of
//!   running the kernel again.
//! * **Disk tier** (opt-in via `ELANIB_CACHE_DIR`): each entry is a
//!   small file named by the 64-bit structural hash, carrying the full
//!   key string for collision verification plus the encoded value. A
//!   warm `regen_all.sh` run skips already-simulated points entirely.
//!
//! ## Why the key is the `Debug` rendering
//!
//! The cache must never serve a stale value after a model change. A
//! structural hash of the *formatted parameter struct* gives that for
//! free: adding, removing, renaming, or re-typing any field changes
//! the rendering, hence the key, hence the cache misses. The crate
//! version is folded in as well, so any release invalidates wholesale.
//! Keys are compared as full strings (memo map) or verified against
//! the stored key (disk), so hash collisions cannot alias entries.
//!
//! ## Why values roundtrip exactly
//!
//! Results are almost entirely `f64` seconds/MB-s; encoding goes
//! through [`put_f64`]/[`take_f64`] which store IEEE-754 bits
//! verbatim. A cache hit therefore reproduces the *byte-identical*
//! CSV a fresh simulation would have produced — the property the
//! regeneration determinism checks enforce.
//!
//! ## Environment
//!
//! | variable            | effect                                              |
//! |---------------------|-----------------------------------------------------|
//! | `ELANIB_CACHE=off`  | disable both tiers (`0`/`false`/`no` also accepted) |
//! | `ELANIB_CACHE_DIR`  | directory for the persistent tier (created lazily)  |
//!
//! Tests use [`set_override`] instead of env vars — the environment is
//! read once per process (mirroring `elanib_trace`), so flipping vars
//! mid-run is not reliable.
//!
//! Hit/miss/store counts accumulate in process-global counters
//! ([`stats`]); `elanib-bench` samples them around each exhibit and
//! reports the deltas through the trace/metrics registry
//! (`cache.hits` / `cache.misses` / `cache.stores`) and the
//! `BENCH_regen.json` records.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

use elanib_simcore::FxHasher;

/// Where lookups are allowed to go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Every call computes; nothing is stored. (`ELANIB_CACHE=off`.)
    Off,
    /// In-process memo table only — the default.
    Memo,
    /// Memo table plus the persistent tier rooted at this directory.
    Disk(PathBuf),
}

static OVERRIDE_SET: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<Mode>> = Mutex::new(None);

/// Force a mode for every subsequent lookup (`Some`), or restore
/// env-driven behaviour (`None`). Test-only in spirit: determinism
/// tests that compare two *live* runs must pin [`Mode::Off`] so the
/// second run actually simulates.
pub fn set_override(mode: Option<Mode>) {
    OVERRIDE_SET.store(mode.is_some(), Ordering::SeqCst);
    *OVERRIDE.lock().unwrap() = mode;
}

fn env_mode() -> Mode {
    static ENV: LazyLock<Mode> = LazyLock::new(|| {
        if let Ok(v) = std::env::var("ELANIB_CACHE") {
            let v = v.to_ascii_lowercase();
            if v == "off" || v == "0" || v == "false" || v == "no" {
                return Mode::Off;
            }
        }
        match std::env::var("ELANIB_CACHE_DIR") {
            Ok(dir) if !dir.is_empty() => Mode::Disk(PathBuf::from(dir)),
            _ => Mode::Memo,
        }
    });
    ENV.clone()
}

/// Effective mode: the override if set, else the (cached) environment.
pub fn mode() -> Mode {
    if OVERRIDE_SET.load(Ordering::SeqCst) {
        if let Some(m) = OVERRIDE.lock().unwrap().clone() {
            return m;
        }
    }
    env_mode()
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static CORRUPT: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide lookup counts. Callers wanting per-exhibit
/// numbers sample before/after and subtract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    /// Disk entries rejected by integrity checks (bad magic, short
    /// read, checksum mismatch) and silently recomputed.
    pub corrupt: u64,
}

impl CacheStats {
    pub fn delta_since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
            corrupt: self.corrupt - earlier.corrupt,
        }
    }

    /// Hits as a fraction of lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
        corrupt: CORRUPT.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// A result type that can live in the cache. Encodings must roundtrip
/// *exactly* — the regeneration checks diff CSVs byte-for-byte, so a
/// hit must be indistinguishable from a fresh simulation.
pub trait CacheValue: Sized {
    fn encode(&self) -> Vec<u8>;
    /// `None` on malformed/truncated bytes — treated as a miss.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Append an `f64` as its IEEE-754 bits (exact roundtrip, NaN-safe).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_8(bytes: &mut &[u8]) -> Option<[u8; 8]> {
    let (head, rest) = bytes.split_first_chunk::<8>()?;
    *bytes = rest;
    Some(*head)
}

/// Consume an `f64` written by [`put_f64`].
pub fn take_f64(bytes: &mut &[u8]) -> Option<f64> {
    take_8(bytes).map(|b| f64::from_bits(u64::from_le_bytes(b)))
}

/// Consume a `u64` written by [`put_u64`].
pub fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
    take_8(bytes).map(u64::from_le_bytes)
}

impl CacheValue for f64 {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        put_f64(&mut buf, *self);
        buf
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        let v = take_f64(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

static MEMO: LazyLock<Mutex<HashMap<String, Vec<u8>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Drop every memo-tier entry. Test hook: lets cache tests force the
/// next lookup through the disk tier (or a fresh computation) without
/// spawning a new process.
pub fn clear_memo() {
    MEMO.lock().unwrap().clear();
}

/// Semantic cache-key version, independent of the crate version. Bump
/// it whenever the *meaning* of a cached value changes while every
/// parameter struct keeps its shape — e.g. a kernel or scheduling
/// change that alters what a cached simulation output represents.
/// Entries written under an older key version embed a key that no
/// longer matches the lookup key, so they self-invalidate as plain
/// misses and the recompute overwrites them in place.
///
/// v2: kernel hot-path flattening + conservative sharded engine
/// (tagged-union event payloads; `run_until`/`pop_before` windowing).
/// Exhibit numbers are byte-identical, but entries written by the
/// boxed-payload kernel predate the events/sec accounting the bench
/// regression gate keys on, so they must not satisfy new lookups.
const KEY_VERSION: u32 = 2;

/// The full structural key: stable across runs, different for any
/// change to the parameter struct shape or values, the crate version,
/// or the semantic [`KEY_VERSION`].
fn key_of<P: Debug + ?Sized>(domain: &str, params: &P) -> String {
    format!(
        "{domain}|v{}|k{KEY_VERSION}|{params:?}{}",
        env!("CARGO_PKG_VERSION"),
        faults_key_suffix()
    )
}

/// Environment-driven fault plans change every simulated number
/// without appearing in any parameter struct, so `ELANIB_FAULTS` is
/// folded into the key (explicit `NetConfig::faults` plans already
/// show up in the params `Debug` rendering). Read once per process,
/// like the mode.
fn faults_key_suffix() -> &'static str {
    static SUFFIX: LazyLock<String> = LazyLock::new(|| match std::env::var("ELANIB_FAULTS") {
        Ok(v) if !v.is_empty() => format!("|faults:{v}"),
        _ => String::new(),
    });
    &SUFFIX
}

fn hash_of(key: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(key.as_bytes());
    h.finish()
}

/// On-disk entry layout:
/// `[magic "ELC2"][key_len: u32 LE][key bytes][value bytes][FxHash64 LE]`.
/// The trailing checksum covers everything before it, so truncation,
/// bit rot, and format drift are all detected; the embedded key guards
/// against 64-bit filename-hash collisions.
const DISK_MAGIC: &[u8; 4] = b"ELC2";

fn disk_path(dir: &Path, domain: &str, key: &str) -> PathBuf {
    dir.join(format!("{domain}-{:016x}.bin", hash_of(key)))
}

fn blob_checksum(body: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

/// Validate framing and checksum; returns `(embedded key, value)`.
fn verify_entry(raw: &[u8]) -> Option<(&[u8], &[u8])> {
    if raw.len() < 4 + 4 + 8 || &raw[..4] != DISK_MAGIC {
        return None;
    }
    let (body, sum) = raw.split_at(raw.len() - 8);
    if blob_checksum(body) != u64::from_le_bytes(sum.try_into().unwrap()) {
        return None;
    }
    let key_len = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
    let rest = &body[8..];
    if rest.len() < key_len {
        return None;
    }
    Some((&rest[..key_len], &rest[key_len..]))
}

fn disk_read(path: &Path, key: &str) -> Option<Vec<u8>> {
    // Absent entry: a plain miss, not damage.
    let raw = fs::read(path).ok()?;
    let Some((entry_key, value)) = verify_entry(&raw) else {
        // Truncated / bit-flipped / pre-checksum format: recompute
        // silently (the store overwrites the bad entry) but leave an
        // audit trail.
        CORRUPT.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "[simcache] corrupt cache entry {} — ignoring and recomputing",
            path.display()
        );
        return None;
    };
    if entry_key != key.as_bytes() {
        return None; // intact entry for a different point (hash collision)
    }
    Some(value.to_vec())
}

fn disk_write(path: &Path, key: &str, value: &[u8]) {
    // Best-effort: a cache store that fails (read-only dir, full disk)
    // must never fail the exhibit — the computed value is still in
    // hand and in the memo tier.
    let Some(dir) = path.parent() else { return };
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut blob = Vec::with_capacity(4 + 4 + key.len() + value.len() + 8);
    blob.extend_from_slice(DISK_MAGIC);
    blob.extend_from_slice(&(key.len() as u32).to_le_bytes());
    blob.extend_from_slice(key.as_bytes());
    blob.extend_from_slice(value);
    let sum = blob_checksum(&blob);
    blob.extend_from_slice(&sum.to_le_bytes());
    // Atomic publish: concurrent sweep threads and concurrent regen
    // processes may store the same point; rename makes readers see
    // either nothing or a complete entry.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if fs::write(&tmp, &blob).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Look up `(domain, params)`; on miss run `compute`, store, return.
///
/// `domain` names the point function (e.g. `"md.step"`) and must be
/// unique per function — it namespaces otherwise-identical parameter
/// renderings. `params` must capture *everything* the result depends
/// on besides the function itself (seeds are baked into the point
/// functions, so they are part of the domain's identity).
pub fn get_or_compute<P, V, F>(domain: &str, params: &P, compute: F) -> V
where
    P: Debug + ?Sized,
    V: CacheValue,
    F: FnOnce() -> V,
{
    let mode = mode();
    if mode == Mode::Off {
        return compute();
    }
    let key = key_of(domain, params);

    if let Some(bytes) = MEMO.lock().unwrap().get(&key) {
        if let Some(v) = V::decode(bytes) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return v;
        }
    }
    if let Mode::Disk(dir) = &mode {
        let path = disk_path(dir, domain, &key);
        if let Some(bytes) = disk_read(&path, &key) {
            if let Some(v) = V::decode(&bytes) {
                HITS.fetch_add(1, Ordering::Relaxed);
                MEMO.lock().unwrap().insert(key, bytes);
                return v;
            }
        }
    }

    MISSES.fetch_add(1, Ordering::Relaxed);
    let v = compute();
    let bytes = v.encode();
    debug_assert!(
        V::decode(&bytes).is_some(),
        "CacheValue encoding must roundtrip"
    );
    if let Mode::Disk(dir) = &mode {
        disk_write(&disk_path(dir, domain, &key), &key, &bytes);
    }
    STORES.fetch_add(1, Ordering::Relaxed);
    MEMO.lock().unwrap().insert(key, bytes);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // The override is process-global; serialize tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn unique_domain(tag: &str) -> String {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        format!("test.{tag}.{}", NEXT.fetch_add(1, Ordering::Relaxed))
    }

    #[test]
    fn memo_tier_dedups_identical_points() {
        let _g = LOCK.lock().unwrap();
        set_override(Some(Mode::Memo));
        let domain = unique_domain("memo");
        let runs = AtomicUsize::new(0);
        let point = |x: u64| {
            get_or_compute(&domain, &x, || {
                runs.fetch_add(1, Ordering::Relaxed);
                x as f64 * 1.5
            })
        };
        assert_eq!(point(4), 6.0);
        assert_eq!(point(4), 6.0);
        assert_eq!(point(8), 12.0);
        assert_eq!(runs.load(Ordering::Relaxed), 2, "4 was memoized");
        set_override(None);
    }

    #[test]
    fn off_mode_always_computes_and_counts_nothing() {
        let _g = LOCK.lock().unwrap();
        set_override(Some(Mode::Off));
        let before = stats();
        let domain = unique_domain("off");
        let runs = AtomicUsize::new(0);
        for _ in 0..3 {
            let v: f64 = get_or_compute(&domain, &1u64, || {
                runs.fetch_add(1, Ordering::Relaxed);
                2.0
            });
            assert_eq!(v, 2.0);
        }
        assert_eq!(runs.load(Ordering::Relaxed), 3);
        assert_eq!(stats(), before, "disabled cache must not touch counters");
        set_override(None);
    }

    #[test]
    fn disk_tier_survives_memo_clear_and_verifies_keys() {
        let _g = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "elanib-simcache-test-{}-{}",
            std::process::id(),
            unique_domain("d")
        ));
        set_override(Some(Mode::Disk(dir.clone())));
        let domain = unique_domain("disk");
        let key = key_of(&domain, &7u64);

        let v: f64 = get_or_compute(&domain, &7u64, || 3.25);
        assert_eq!(v, 3.25);
        let path = disk_path(&dir, &domain, &key);
        assert!(path.exists(), "store must publish a disk entry");

        // Forget the memo entry; the disk tier must answer.
        MEMO.lock().unwrap().remove(&key);
        let v: f64 = get_or_compute(&domain, &7u64, || unreachable!("disk hit expected"));
        assert_eq!(v, 3.25);

        // An intact entry whose embedded key names a different point
        // (filename-hash collision) is a plain miss, not corruption.
        MEMO.lock().unwrap().remove(&key);
        let corrupt_before = stats().corrupt;
        disk_write(&path, "other|key", &99.0f64.encode());
        let v: f64 = get_or_compute(&domain, &7u64, || 3.25);
        assert_eq!(v, 3.25);
        assert_eq!(
            stats().corrupt,
            corrupt_before,
            "collision is not corruption"
        );

        set_override(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_and_truncation_are_detected_and_recomputed() {
        let _g = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "elanib-simcache-test-{}-{}",
            std::process::id(),
            unique_domain("c")
        ));
        set_override(Some(Mode::Disk(dir.clone())));
        let domain = unique_domain("corrupt");
        let key = key_of(&domain, &11u64);
        let path = disk_path(&dir, &domain, &key);

        let v: f64 = get_or_compute(&domain, &11u64, || 1.75);
        assert_eq!(v, 1.75);

        // Flip one bit in the stored value region: the checksum must
        // reject the entry, the point recomputes, and the recomputed
        // answer is byte-identical to the original.
        let mut blob = fs::read(&path).unwrap();
        let mid = blob.len() - 10; // inside the value bytes
        blob[mid] ^= 0x40;
        fs::write(&path, &blob).unwrap();
        MEMO.lock().unwrap().remove(&key);
        let corrupt_before = stats().corrupt;
        let v: f64 = get_or_compute(&domain, &11u64, || 1.75);
        assert_eq!(v, 1.75);
        assert_eq!(stats().corrupt, corrupt_before + 1);
        // The recompute overwrote the damaged entry; a fresh lookup is
        // a clean disk hit again.
        MEMO.lock().unwrap().remove(&key);
        let v: f64 = get_or_compute(&domain, &11u64, || unreachable!("disk hit expected"));
        assert_eq!(v, 1.75);

        // Truncation (e.g. a torn write surviving a crash) is also
        // corruption, not a wrong answer.
        let blob = fs::read(&path).unwrap();
        fs::write(&path, &blob[..blob.len() / 2]).unwrap();
        MEMO.lock().unwrap().remove(&key);
        let v: f64 = get_or_compute(&domain, &11u64, || 1.75);
        assert_eq!(v, 1.75);
        assert_eq!(stats().corrupt, corrupt_before + 2);

        set_override(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_fold_in_domain_params_and_version() {
        let k = key_of("md.step", &(1u64, 2u64));
        assert!(k.starts_with("md.step|v"));
        assert!(k.contains(&format!("|k{KEY_VERSION}|")));
        assert!(k.ends_with("|(1, 2)"));
        assert_ne!(key_of("a", &1u64), key_of("b", &1u64));
        assert_ne!(key_of("a", &1u64), key_of("a", &2u64));
    }

    #[test]
    fn stale_key_version_entry_self_invalidates_and_is_overwritten() {
        let _g = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "elanib-simcache-test-{}-{}",
            std::process::id(),
            unique_domain("v")
        ));
        set_override(Some(Mode::Disk(dir.clone())));
        let domain = unique_domain("stale");
        let key = key_of(&domain, &42u64);
        let path = disk_path(&dir, &domain, &key);

        // Plant an entry as a pre-KEY_VERSION-bump build would have
        // written it at this very path: intact framing and checksum,
        // but the embedded key lacks the `|k{N}|` component. The value
        // is deliberately wrong to prove it can never be served.
        let old_key = key.replace(&format!("|k{KEY_VERSION}|"), "|");
        assert_ne!(old_key, key);
        disk_write(&path, &old_key, &(-1.0f64).encode());
        assert!(path.exists());

        // Lookup under the current key: the stale entry is a plain
        // miss (not corruption), the point recomputes, and the store
        // overwrites the stale entry in place.
        let corrupt_before = stats().corrupt;
        let v: f64 = get_or_compute(&domain, &42u64, || 9.5);
        assert_eq!(v, 9.5);
        assert_eq!(
            stats().corrupt,
            corrupt_before,
            "a stale key version is not corruption"
        );

        // The overwrite is complete: a fresh lookup disk-hits the new
        // value, and the old key is gone from the entry.
        MEMO.lock().unwrap().remove(&key);
        let v: f64 = get_or_compute(&domain, &42u64, || unreachable!("disk hit expected"));
        assert_eq!(v, 9.5);
        let raw = fs::read(&path).unwrap();
        let (entry_key, _) = verify_entry(&raw).expect("entry intact");
        assert_eq!(entry_key, key.as_bytes());

        set_override(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_roundtrip_is_exact_including_specials() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 6.02e23] {
            let enc = v.encode();
            assert_eq!(f64::decode(&enc), Some(v));
        }
        let nan_bits = f64::NAN.encode();
        assert!(f64::decode(&nan_bits).unwrap().is_nan());
        assert_eq!(f64::decode(&[0u8; 7]), None, "truncated");
        assert_eq!(f64::decode(&[0u8; 9]), None, "trailing bytes");
    }
}
