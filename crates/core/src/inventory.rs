//! The experiment inventory: one entry per table/figure in the paper,
//! mapping it to the modules and binaries that regenerate it. Used by
//! `elanib-bench` to label output and by tests to prove coverage is
//! complete.

/// One paper exhibit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exhibit {
    /// Paper label, e.g. "Figure 1(a)".
    pub id: &'static str,
    pub title: &'static str,
    /// Workload / parameters in brief.
    pub workload: &'static str,
    /// Modules implementing the pieces.
    pub modules: &'static str,
    /// Binary that regenerates it (`cargo run -p elanib-bench --bin`).
    pub bin: &'static str,
}

/// Every table and figure in the paper's evaluation.
pub const EXHIBITS: &[Exhibit] = &[
    Exhibit {
        id: "Table 1",
        title: "Evaluation platform",
        workload: "configuration",
        modules: "elanib-core::platform, elanib-nodesim, elanib-nic, elanib-fabric",
        bin: "table1",
    },
    Exhibit {
        id: "Figure 1(a)",
        title: "Ping-pong latency vs message size",
        workload: "2 nodes, 1 PPN, 0 B - 4 MiB",
        modules: "elanib-microbench::pingpong, elanib-mpi::{verbs,tports}",
        bin: "fig1",
    },
    Exhibit {
        id: "Figure 1(b)",
        title: "Ping-pong + streaming bandwidth vs size",
        workload: "2 nodes, 1 PPN; streaming window pre-posted",
        modules: "elanib-microbench::{pingpong,streaming}, elanib-nic::regcache",
        bin: "fig1",
    },
    Exhibit {
        id: "Figure 1(c)",
        title: "Elan-4 / InfiniBand bandwidth ratio",
        workload: "derived from 1(b)",
        modules: "elanib-microbench",
        bin: "fig1",
    },
    Exhibit {
        id: "Figure 1(d)",
        title: "Effective bandwidth (b_eff) per process",
        workload: "2-32 nodes, 1 PPN, rings + random patterns",
        modules: "elanib-microbench::beff, elanib-mpi::collectives",
        bin: "fig1",
    },
    Exhibit {
        id: "Figure 2",
        title: "LAMMPS LJS scaled study: time + efficiency",
        workload: "32k atoms/proc, 1-32 nodes, 1 and 2 PPN",
        modules: "elanib-apps::md (ljs)",
        bin: "fig2",
    },
    Exhibit {
        id: "Figure 3",
        title: "LAMMPS membrane scaled study: time + efficiency",
        workload: "16k atoms/proc, overlap-heavy, 1-32 nodes, 1 and 2 PPN",
        modules: "elanib-apps::md (membrane)",
        bin: "fig3",
    },
    Exhibit {
        id: "Figure 4",
        title: "Sweep3D 150^3 fixed-size: grind time + efficiency",
        workload: "1,4,9,16,25 procs, 1 PPN",
        modules: "elanib-apps::sweep3d",
        bin: "fig4",
    },
    Exhibit {
        id: "Figure 5",
        title: "Sweep3D input-size family on InfiniBand",
        workload: "50^3-150^3, normalized at 4 procs",
        modules: "elanib-apps::sweep3d",
        bin: "fig5",
    },
    Exhibit {
        id: "Figure 6",
        title: "NAS CG class A: MOps/s/process + efficiency",
        workload: "n=14336, 1-32 procs (power of two), 1 PPN",
        modules: "elanib-apps::nascg",
        bin: "fig6",
    },
    Exhibit {
        id: "Table 2",
        title: "InfiniBand list prices",
        workload: "April 2004 list",
        modules: "elanib-cost::prices",
        bin: "tables",
    },
    Exhibit {
        id: "Table 3",
        title: "Quadrics Elan-4 list prices",
        workload: "April 2004 list",
        modules: "elanib-cost::prices",
        bin: "tables",
    },
    Exhibit {
        id: "Figure 7",
        title: "Network cost per port vs system size",
        workload: "8-4096 ports, three switch strategies",
        modules: "elanib-cost::curves",
        bin: "fig7",
    },
    Exhibit {
        id: "Figure 8",
        title: "Membrane study extrapolated to 8192 processors",
        workload: "trend fit of Figure 3 measurements",
        modules: "elanib-core::extrapolate, elanib-apps::md",
        bin: "fig8",
    },
    Exhibit {
        id: "Ablations (§7)",
        title: "Mechanism ablations: which feature explains the gap",
        workload: "membrane at 16 nodes, one mechanism toggled at a time",
        modules: "elanib-mpi (async_progress, explicit_registration), elanib-apps::md",
        bin: "ablations",
    },
    Exhibit {
        id: "Faults",
        title: "Fault injection: link-level vs end-to-end recovery (§3.1)",
        workload: "seeded loss/outage plans; ping-pong grid + 16-node stream",
        modules: "elanib-fabric::faults, elanib-nic::transfer, elanib-microbench::faultpoint",
        bin: "faults",
    },
    Exhibit {
        id: "RoCE",
        title: "RoCEv2 congestion control vs native IB (extension)",
        workload: "incast 2-32 nodes + 8 B allreduce; PFC/DCQCN/hybrid",
        modules: "elanib-nic::{backend,roce}, elanib-microbench::incast",
        bin: "roce",
    },
];

/// Look up an exhibit by id.
pub fn exhibit(id: &str) -> Option<&'static Exhibit> {
    EXHIBITS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_exhibit_is_covered() {
        // The evaluation has figures 1-8 and tables 1-3.
        for id in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Figure 1(a)",
            "Figure 1(b)",
            "Figure 1(c)",
            "Figure 1(d)",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
        ] {
            assert!(exhibit(id).is_some(), "missing exhibit {id}");
        }
        assert_eq!(EXHIBITS.len(), 17);
        assert!(exhibit("Ablations (§7)").is_some());
        assert!(exhibit("Faults").is_some());
        assert!(exhibit("RoCE").is_some());
    }

    #[test]
    fn exhibit_ids_unique() {
        let mut ids: Vec<_> = EXHIBITS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXHIBITS.len());
    }
}
