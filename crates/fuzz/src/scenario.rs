//! Seeded scenario generation, shrinking, and the replayable repro
//! format.
//!
//! A [`Scenario`] is one point in the configuration space the paper's
//! claims are supposed to hold over: cluster shape, message-size mix,
//! protocol thresholds, fault schedule, and every observer/engine knob
//! that must *not* change results (tracing, profiling, the point
//! cache, the sharded engine). [`Scenario::generate`] is a pure
//! function of its seed — the same SplitMix64 discipline the fault
//! layer uses — so a failing seed is a complete bug report on its own.
//!
//! When a scenario does fail, [`Scenario::shrink_candidates`] offers
//! strictly simpler variants (fewer nodes, shorter messages, a quieter
//! fault plan, fewer shards, observers off) for the shrinker in
//! [`crate::shrink`] to re-run, and [`Scenario::to_repro`] /
//! [`Scenario::parse_repro`] round-trip the minimized scenario through
//! the `fuzz_failures/<seed>.toml` file a human replays.

use elanib_fabric::faults::{Degrade, NicStall, Outage};
use elanib_fabric::{FaultPlan, Topology};
use elanib_mpi::RoceMode;
use elanib_simcore::Dur;

/// One generated configuration point. Every field participates in
/// repro serialization; `seed` doubles as the simulation seed.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Generator seed — also seeds both simulations and names the
    /// repro file.
    pub seed: u64,
    /// Cluster nodes (the Elan chassis caps at 64, IB at 144; the
    /// generator stays far below both).
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Ring-exchange message sizes, one message per entry per rank.
    pub msg_sizes: Vec<u64>,
    /// Verbs eager/rendezvous switch point (bytes).
    pub eager_ib: u64,
    /// Tports eager/rendezvous switch point (bytes).
    pub eager_elan: u64,
    /// Deterministic fault schedule (may be effectless — about half of
    /// all seeds run clean, mirroring real usage).
    pub faults: FaultPlan,
    /// Exercise the point cache's encode/decode roundtrip.
    pub cache: bool,
    /// Re-run with a structured tracer attached (observer-effect
    /// check).
    pub trace: bool,
    /// Re-run with the kernel profiler attached.
    pub profile: bool,
    /// Conservative-DES shard count for the partitioned-fabric
    /// determinism check (1 disables it).
    pub shards: usize,
    /// Use the adaptive per-pair lookahead spec instead of the uniform
    /// one in the sharded check.
    pub adaptive: bool,
    /// Fat-tree arity for the sharded check's topology.
    pub topo_radix: usize,
    /// Fat-tree levels for the sharded check's topology.
    pub topo_levels: usize,
    /// Verbs-side backend choice: `None` runs native InfiniBand,
    /// `Some(mode)` swaps in the RoCEv2 backend under that
    /// congestion-control mode — every invariant (conservation,
    /// determinism, observer effect, monotone degradation) must hold
    /// on the CC-paced path too. About 40% of seeds stay native.
    pub roce: Option<RoceMode>,
}

/// SplitMix64 — the same stateless generator the fault layer draws
/// from, reimplemented here so the crate stays dependency-light and a
/// scenario is a pure function of `(seed, draw index)`.
fn mix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, k)`.
fn unit(seed: u64, k: u64) -> f64 {
    (mix(seed, k) >> 11) as f64 / (1u64 << 53) as f64
}

/// Pick one element of `xs` from draw `(seed, k)`.
fn pick<T: Copy>(seed: u64, k: u64, xs: &[T]) -> T {
    xs[(unit(seed, k) * xs.len() as f64) as usize % xs.len()]
}

/// Simulated-time horizon fault windows are scheduled inside. Short
/// scenarios finish well under it; windows past the actual end simply
/// never fire (and [`FaultPlan::truncated_to`] can prove as much).
pub fn fault_horizon() -> Dur {
    Dur::from_us(500)
}

impl Scenario {
    /// Deterministically generate the scenario for `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let nodes = pick(seed, 10, &[2usize, 3, 4, 6, 8, 12, 16]);
        let ppn = pick(seed, 11, &[1usize, 1, 2]);
        let n_msgs = 2 + (unit(seed, 12) * 7.0) as usize;
        // Size regimes, weighted so both protocols' paths get steady
        // coverage: all-eager, all-rendezvous, a bimodal mix, and a
        // zero-heavy mix (zero-length messages are a boundary the
        // fault layer must survive too).
        let msg_sizes: Vec<u64> = match (unit(seed, 13) * 4.0) as usize {
            0 => (0..n_msgs)
                .map(|i| pick(seed, 100 + i as u64, &[1u64, 8, 64, 256, 1024]))
                .collect(),
            1 => (0..n_msgs)
                .map(|i| pick(seed, 100 + i as u64, &[4096u64, 16384, 65536]))
                .collect(),
            2 => (0..n_msgs)
                .map(|i| pick(seed, 100 + i as u64, &[64u64, 1024, 32768]))
                .collect(),
            _ => (0..n_msgs)
                .map(|i| pick(seed, 100 + i as u64, &[0u64, 0, 16, 2048]))
                .collect(),
        };
        let eager_ib = pick(seed, 14, &[256u64, 1024, 1024, 4096]);
        let eager_elan = pick(seed, 15, &[1024u64, 4096, 4096, 16384]);
        let (topo_radix, topo_levels) = pick(seed, 16, &[(4usize, 3usize), (8, 2), (12, 2)]);
        // Fault link/endpoint indices must be valid on both fabrics;
        // sample against the smaller edge set of the two.
        let links = Topology::fat_tree(12, 2, nodes)
            .edges
            .len()
            .min(Topology::fat_tree(4, 3, nodes).edges.len());
        Scenario {
            seed,
            nodes,
            ppn,
            msg_sizes,
            eager_ib,
            eager_elan,
            faults: FaultPlan::sample(mix(seed, 17), links, nodes, fault_horizon()),
            cache: unit(seed, 18) < 0.5,
            trace: unit(seed, 19) < 0.25,
            profile: unit(seed, 20) < 0.25,
            shards: pick(seed, 21, &[1usize, 1, 2, 4]),
            adaptive: unit(seed, 22) < 0.5,
            topo_radix,
            topo_levels,
            roce: match (unit(seed, 23) * 5.0) as usize {
                0 | 1 => None,
                2 => Some(RoceMode::Pfc),
                3 => Some(RoceMode::Dcqcn),
                _ => Some(RoceMode::Hybrid),
            },
        }
    }

    /// Total application bytes one rank sends (the conservation
    /// invariant's expected tally, per rank).
    pub fn bytes_per_rank(&self) -> u64 {
        self.msg_sizes.iter().sum()
    }

    /// Strictly simpler variants, most aggressive first. The shrinker
    /// re-runs the failing check after each candidate and keeps a
    /// reduction only if the failure survives; every candidate here
    /// strictly decreases [`Scenario::complexity`], so the loop
    /// terminates.
    pub fn shrink_candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        let mut push = |f: &dyn Fn(&mut Scenario)| {
            let mut s = self.clone();
            f(&mut s);
            if s != *self {
                out.push(s);
            }
        };
        if self.nodes > 2 {
            push(&|s| s.nodes = (s.nodes / 2).max(2));
        }
        if self.ppn > 1 {
            push(&|s| s.ppn = 1);
        }
        if self.msg_sizes.len() > 1 {
            push(&|s| {
                let keep = s.msg_sizes.len() / 2;
                s.msg_sizes.truncate(keep.max(1));
            });
        }
        if self.msg_sizes.iter().any(|&b| b > 1) {
            push(&|s| {
                for b in &mut s.msg_sizes {
                    *b /= 2;
                }
            });
        }
        for plan in self.faults.shrink_candidates() {
            push(&|s| s.faults = plan.clone());
        }
        if self.shards > 1 {
            push(&|s| s.shards /= 2);
        }
        if self.adaptive {
            push(&|s| s.adaptive = false);
        }
        if self.roce.is_some() {
            // Native IB is the simpler transport: no CC pacing state.
            push(&|s| s.roce = None);
        }
        if self.cache {
            push(&|s| s.cache = false);
        }
        if self.trace {
            push(&|s| s.trace = false);
        }
        if self.profile {
            push(&|s| s.profile = false);
        }
        out
    }

    /// A size metric every shrink candidate strictly decreases — the
    /// shrinker's termination argument.
    pub fn complexity(&self) -> u64 {
        let plan = &self.faults;
        self.nodes as u64 * 1000
            + self.ppn as u64 * 100
            + self.msg_sizes.len() as u64 * 10
            + self
                .msg_sizes
                .iter()
                .map(|b| 64 - b.leading_zeros() as u64)
                .sum::<u64>()
            + (plan.outages.len() + plan.degrades.len() + plan.stalls.len()) as u64 * 10
            + (plan.loss > 0.0) as u64 * 10
            + (plan.corrupt > 0.0) as u64 * 10
            + self.shards as u64
            + self.adaptive as u64
            + self.roce.is_some() as u64
            + self.cache as u64
            + self.trace as u64
            + self.profile as u64
    }

    /// Render the scenario as the repro file's contents. `mutate`
    /// records a deliberate harness mutation (mutation testing) so the
    /// replay reproduces the same violation.
    pub fn to_repro(&self, mutate: Option<&str>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# elanib-fuzz failing-scenario repro; replay with:");
        let _ = writeln!(
            s,
            "#   cargo run -p elanib-bench --bin fuzz -- --replay fuzz_failures/{}.toml",
            self.seed
        );
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "nodes = {}", self.nodes);
        let _ = writeln!(s, "ppn = {}", self.ppn);
        let sizes: Vec<String> = self.msg_sizes.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(s, "msg_sizes = \"{}\"", sizes.join(","));
        let _ = writeln!(s, "eager_ib = {}", self.eager_ib);
        let _ = writeln!(s, "eager_elan = {}", self.eager_elan);
        let _ = writeln!(s, "cache = {}", self.cache);
        let _ = writeln!(s, "trace = {}", self.trace);
        let _ = writeln!(s, "profile = {}", self.profile);
        let _ = writeln!(s, "shards = {}", self.shards);
        let _ = writeln!(s, "adaptive = {}", self.adaptive);
        let _ = writeln!(s, "topo_radix = {}", self.topo_radix);
        let _ = writeln!(s, "topo_levels = {}", self.topo_levels);
        if let Some(mode) = self.roce {
            let _ = writeln!(s, "roce = \"{mode}\"");
        }
        let _ = writeln!(s, "fault_seed = {}", self.faults.seed);
        let _ = writeln!(s, "fault_loss = {}", self.faults.loss);
        let _ = writeln!(s, "fault_corrupt = {}", self.faults.corrupt);
        for o in &self.faults.outages {
            let _ = writeln!(
                s,
                "outage = \"{}@{}+{}\"",
                o.link,
                o.start.as_ps(),
                o.dur.as_ps()
            );
        }
        for d in &self.faults.degrades {
            let _ = writeln!(
                s,
                "degrade = \"{}@{}+{}*{}\"",
                d.link,
                d.start.as_ps(),
                d.dur.as_ps(),
                d.factor
            );
        }
        for st in &self.faults.stalls {
            let _ = writeln!(
                s,
                "stall = \"{}@{}+{}\"",
                st.ep,
                st.start.as_ps(),
                st.dur.as_ps()
            );
        }
        if let Some(m) = mutate {
            let _ = writeln!(s, "mutate = \"{m}\"");
        }
        s
    }

    /// Parse a repro file written by [`Scenario::to_repro`]. Returns
    /// the scenario and the recorded mutation name, if any.
    pub fn parse_repro(text: &str) -> Result<(Scenario, Option<String>), String> {
        let mut sc = Scenario {
            seed: 0,
            nodes: 2,
            ppn: 1,
            msg_sizes: Vec::new(),
            eager_ib: 1024,
            eager_elan: 4096,
            faults: FaultPlan::default(),
            cache: false,
            trace: false,
            profile: false,
            shards: 1,
            adaptive: false,
            topo_radix: 4,
            topo_levels: 3,
            roce: None,
        };
        let mut mutate = None;
        for raw in text.lines() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("repro line without '=': {line:?}"))?;
            let (key, val) = (key.trim(), val.trim().trim_matches('"'));
            let num = |what: &str, v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|e| format!("bad {what} {v:?}: {e}"))
            };
            let flag = |what: &str, v: &str| -> Result<bool, String> {
                v.parse::<bool>()
                    .map_err(|e| format!("bad {what} {v:?}: {e}"))
            };
            match key {
                "seed" => sc.seed = num(key, val)?,
                "nodes" => sc.nodes = num(key, val)? as usize,
                "ppn" => sc.ppn = num(key, val)? as usize,
                "msg_sizes" => {
                    sc.msg_sizes = val
                        .split(',')
                        .filter(|p| !p.trim().is_empty())
                        .map(|p| num("msg size", p.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "eager_ib" => sc.eager_ib = num(key, val)?,
                "eager_elan" => sc.eager_elan = num(key, val)?,
                "cache" => sc.cache = flag(key, val)?,
                "trace" => sc.trace = flag(key, val)?,
                "profile" => sc.profile = flag(key, val)?,
                "shards" => sc.shards = num(key, val)? as usize,
                "adaptive" => sc.adaptive = flag(key, val)?,
                "topo_radix" => sc.topo_radix = num(key, val)? as usize,
                "topo_levels" => sc.topo_levels = num(key, val)? as usize,
                "roce" => {
                    sc.roce = Some(
                        RoceMode::parse(val)
                            .ok_or_else(|| format!("bad roce mode {val:?} (pfc|dcqcn|hybrid)"))?,
                    );
                }
                "fault_seed" => sc.faults.seed = num(key, val)?,
                "fault_loss" => {
                    sc.faults.loss = val
                        .parse::<f64>()
                        .map_err(|e| format!("bad fault_loss {val:?}: {e}"))?;
                }
                "fault_corrupt" => {
                    sc.faults.corrupt = val
                        .parse::<f64>()
                        .map_err(|e| format!("bad fault_corrupt {val:?}: {e}"))?;
                }
                "outage" => {
                    let (link, start, dur, _) = parse_window(val)?;
                    sc.faults.outages.push(Outage { link, start, dur });
                }
                "degrade" => {
                    let (link, start, dur, factor) = parse_window(val)?;
                    sc.faults.degrades.push(Degrade {
                        link,
                        start,
                        dur,
                        factor: factor.ok_or_else(|| format!("degrade without factor: {val:?}"))?,
                    });
                }
                "stall" => {
                    let (ep, start, dur, _) = parse_window(val)?;
                    sc.faults.stalls.push(NicStall { ep, start, dur });
                }
                "mutate" => mutate = Some(val.to_string()),
                other => return Err(format!("unknown repro key {other:?}")),
            }
        }
        if sc.nodes < 2 || sc.ppn < 1 || sc.shards < 1 {
            return Err("repro scenario is degenerate (nodes < 2, ppn < 1, or shards < 1)".into());
        }
        Ok((sc, mutate))
    }
}

/// Parse `idx@start_ps+dur_ps` with an optional `*factor` tail —
/// picosecond integers, so the roundtrip is exact where the fault
/// layer's human grammar (float ns/us/ms) would not be.
fn parse_window(val: &str) -> Result<(usize, Dur, Dur, Option<f64>), String> {
    let (head, factor) = match val.rsplit_once('*') {
        Some((h, f)) => (
            h,
            Some(
                f.parse::<f64>()
                    .map_err(|e| format!("bad factor in {val:?}: {e}"))?,
            ),
        ),
        None => (val, None),
    };
    let (idx, span) = head
        .split_once('@')
        .ok_or_else(|| format!("window without '@': {val:?}"))?;
    let (start, dur) = span
        .split_once('+')
        .ok_or_else(|| format!("window without '+': {val:?}"))?;
    let ps = |what: &str, v: &str| -> Result<u64, String> {
        v.parse::<u64>()
            .map_err(|e| format!("bad {what} {v:?}: {e}"))
    };
    Ok((
        ps("index", idx)? as usize,
        Dur::from_ps(ps("start", start)?),
        Dur::from_ps(ps("duration", dur)?),
        factor,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in 0..200u64 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!((2..=16).contains(&a.nodes));
            assert!((1..=2).contains(&a.ppn));
            assert!(!a.msg_sizes.is_empty());
            assert!(a.msg_sizes.iter().all(|&b| b <= 65536));
            assert!(matches!(a.shards, 1 | 2 | 4));
        }
        // Every backend variant is drawn, and native IB stays the
        // plurality (~40%) so the paper-ordering invariant keeps its
        // sample.
        let native = (0..200u64)
            .filter(|&s| Scenario::generate(s).roce.is_none())
            .count();
        assert!(
            (50..=110).contains(&native),
            "native-IB draw skewed: {native}/200"
        );
        for mode in RoceMode::ALL {
            assert!(
                (0..200u64).any(|s| Scenario::generate(s).roce == Some(mode)),
                "mode {mode} never drawn"
            );
        }
        // The space is actually explored: distinct seeds disagree.
        let distinct: std::collections::HashSet<String> = (0..50)
            .map(|s| format!("{:?}", Scenario::generate(s)))
            .collect();
        assert!(
            distinct.len() > 40,
            "only {} distinct scenarios",
            distinct.len()
        );
    }

    #[test]
    fn repro_roundtrips_exactly() {
        for seed in [0u64, 7, 42, 1234, 99999] {
            let sc = Scenario::generate(seed);
            let text = sc.to_repro(None);
            let (back, mutate) = Scenario::parse_repro(&text).expect("repro parses");
            assert_eq!(back, sc, "seed {seed} did not roundtrip");
            assert_eq!(mutate, None);
        }
        // Mutation annotations survive the roundtrip too.
        let sc = Scenario::generate(3);
        let (_, m) = Scenario::parse_repro(&sc.to_repro(Some("conservation"))).unwrap();
        assert_eq!(m.as_deref(), Some("conservation"));
    }

    #[test]
    fn shrink_candidates_strictly_decrease_complexity() {
        let mut checked = 0;
        for seed in 0..100u64 {
            let sc = Scenario::generate(seed);
            for cand in sc.shrink_candidates() {
                assert!(
                    cand.complexity() < sc.complexity(),
                    "seed {seed}: candidate {cand:?} not simpler than {sc:?}"
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "shrink space too small ({checked})");
    }

    #[test]
    fn fully_shrunk_scenario_offers_nothing_further() {
        let sc = Scenario {
            seed: 1,
            nodes: 2,
            ppn: 1,
            msg_sizes: vec![0],
            eager_ib: 1024,
            eager_elan: 4096,
            faults: FaultPlan::default(),
            cache: false,
            trace: false,
            profile: false,
            shards: 1,
            adaptive: false,
            topo_radix: 4,
            topo_levels: 3,
            roce: None,
        };
        assert!(sc.shrink_candidates().is_empty());
    }
}
