//! Scenario execution and invariant checking.
//!
//! [`check_scenario`] runs one generated [`Scenario`] through **both**
//! simulated stacks and evaluates every cross-cutting invariant as a
//! first-class `elanib-validate` term over a synthesized in-memory
//! metrics table ([`elanib_validate::run_on_table`]):
//!
//! * **byte conservation** — every application byte a rank sends is
//!   received exactly once (faults cost retransmits, never payload),
//!   and the fabric's per-link byte ledger sums to the wire total;
//! * **no deadlock** — both runs complete inside a simulated-time
//!   budget; a blown budget surfaces the typed
//!   [`SimError::ScenarioTimeout`] with the flight-ring tail attached;
//! * **determinism / observer effect** — re-running the same seed,
//!   optionally with a tracer or kernel profiler attached, reproduces
//!   the end time, wire totals, and per-link byte vector exactly; the
//!   point cache's encode/decode roundtrip returns the identical
//!   value; and the partitioned-fabric conservative engine agrees with
//!   the serial run at every shard count and lookahead spec;
//! * **monotone degradation** — adding packet loss/corruption to an
//!   otherwise identical scenario never *materially* shortens
//!   completion (a calibrated slack absorbs the genuine
//!   unexpected-queue timing effect), and — on window-free plans —
//!   never reduces total wire traffic, with zero slack;
//! * **paper ordering** — on clean, default-threshold, small-message
//!   points, Elan-4 completes no later than InfiniBand (the paper's
//!   §4 small-message claim as a predicate over generated points).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::LazyLock;

use elanib_core::simcache;
use elanib_fabric::{FaultPlan, Partition, Topology};
use elanib_mpi::collectives::{allreduce, Op};
use elanib_mpi::{
    empty, irecv, isend, run_scenario_on, waitall, Communicator, JobSpec, NetConfig, Network,
    RankProgram, ScenarioRun,
};
use elanib_simcore::trace::Tracer;
use elanib_simcore::{
    run_sharded_with, Dur, KernelProfiler, Lookahead, Outbox, ShardModel, ShardMsg, Sim, SimError,
    SimTime,
};
use elanib_validate::csv::Table;
use elanib_validate::expect::ExpectFile;

use crate::scenario::Scenario;

/// Deliberate harness defects for mutation-testing the fuzzer itself:
/// a fuzzer whose invariants cannot catch a planted bug is decoration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Miscount one sent byte on the IB side — the conservation
    /// invariant must flag it and the shrinker must minimize it.
    Conservation,
}

impl Mutation {
    pub fn parse(name: &str) -> Result<Mutation, String> {
        match name {
            "conservation" => Ok(Mutation::Conservation),
            other => Err(format!("unknown mutation {other:?}")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Mutation::Conservation => "conservation",
        }
    }
}

/// Harness options shared by a whole batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzOpts {
    /// Simulated-time budget per run; `None` uses
    /// [`default_budget`].
    pub budget: Option<Dur>,
    /// Active harness mutation, if any.
    pub mutate: Option<Mutation>,
}

/// Per-run simulated-time budget: generous against the microsecond
/// scale of generated scenarios, tight against a livelock.
pub fn default_budget() -> Dur {
    Dur::from_secs(1)
}

/// The outcome of checking one scenario: empty `violations` means
/// every invariant held.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    pub scenario: Scenario,
    pub violations: Vec<String>,
    /// Set when the scenario landed on a *specified* failure mode
    /// instead of a result — the bounded IB retry budget erroring out
    /// under heavy loss (the faults exhibit's `QP-ERR` rows). Such
    /// scenarios are skipped, not failed: the model behaved exactly as
    /// documented.
    pub skipped: Option<String>,
}

impl ScenarioReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The generated workload: every rank posts all its ring-exchange
/// receives, sends one message per configured size to its successor,
/// tallies the bytes that actually arrive, and finishes with an
/// allreduce so the collective path runs under the same faults.
#[derive(Clone)]
struct ExchangeProgram {
    sizes: Rc<Vec<u64>>,
    sent: Rc<Cell<u64>>,
    recvd: Rc<Cell<u64>>,
}

impl RankProgram for ExchangeProgram {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let n = c.size();
            let me = c.rank();
            let from = (me + n - 1) % n;
            let to = (me + 1) % n;
            let mut recvs = Vec::with_capacity(self.sizes.len());
            for (i, _) in self.sizes.iter().enumerate() {
                recvs.push(irecv(&c, Some(from), Some(i as i64)).await);
            }
            let mut sends = Vec::with_capacity(self.sizes.len());
            for (i, &b) in self.sizes.iter().enumerate() {
                self.sent.set(self.sent.get() + b);
                sends.push(isend(&c, to, i as i64, empty(), b).await);
            }
            for m in waitall(&c, recvs).await.into_iter().flatten() {
                self.recvd.set(self.recvd.get() + m.bytes);
            }
            waitall(&c, sends).await;
            allreduce(&c, Op::Sum, &[1.0]).await;
        }
    }
}

/// One measured run: application tallies plus the kernel-level
/// counters the invariants compare.
struct Measured {
    run: ScenarioRun,
    sent: u64,
    recvd: u64,
}

/// Fold a run's observable metrics into a single comparison word,
/// reduced mod 2^32 so it stays exactly representable as the `f64` a
/// validate table cell holds.
fn fold_run(m: &Measured) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mixin = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mixin(m.run.end.as_ps());
    mixin(m.run.stats.wire_bytes);
    mixin(m.run.stats.nic_messages);
    mixin(m.run.stats.unexpected);
    mixin(m.sent);
    mixin(m.recvd);
    for &b in &m.run.link_bytes {
        mixin(b);
    }
    h % (1 << 32)
}

fn net_config(sc: &Scenario, faults: &FaultPlan) -> NetConfig {
    let mut cfg = NetConfig::default();
    cfg.verbs.eager_threshold = sc.eager_ib;
    cfg.elan.eager_threshold = sc.eager_elan;
    if !faults.is_effectless() {
        cfg.faults = Some(std::sync::Arc::new(faults.clone()));
    }
    cfg
}

/// Run the workload on `net`, on a caller-built kernel.
fn run_on(
    sim: &Sim,
    sc: &Scenario,
    net: Network,
    faults: &FaultPlan,
    budget: Dur,
) -> Result<Measured, SimError> {
    let sent = Rc::new(Cell::new(0));
    let recvd = Rc::new(Cell::new(0));
    let program = ExchangeProgram {
        sizes: Rc::new(sc.msg_sizes.clone()),
        sent: sent.clone(),
        recvd: recvd.clone(),
    };
    let spec = JobSpec {
        network: net,
        nodes: sc.nodes,
        ppn: sc.ppn,
        seed: sc.seed,
    };
    let run = run_scenario_on(
        sim,
        spec,
        &net_config(sc, faults),
        Some(SimTime::ZERO + budget),
        program,
    )?;
    Ok(Measured {
        run,
        sent: sent.get(),
        recvd: recvd.get(),
    })
}

/// One run's outcome, with the *specified* failure modes separated
/// from invariant-relevant errors.
enum RunOutcome {
    Ok(Measured),
    /// Typed kernel error: deadlock or blown simulated-time budget.
    Err(SimError),
    /// The IB QP's bounded retry budget errored out — documented
    /// behavior under heavy loss (`QP-ERR` in the faults exhibit), not
    /// an invariant violation. Carries the panic message.
    QpError(String),
}

/// Run with panics classified: a QP retry-exhaustion panic becomes
/// [`RunOutcome::QpError`]; anything else is a genuine model bug and
/// resumes unwinding (the batch driver's panic isolation retains it).
fn run_caught(
    sim: &Sim,
    sc: &Scenario,
    net: Network,
    faults: &FaultPlan,
    budget: Dur,
) -> RunOutcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_on(sim, sc, net, faults, budget)
    })) {
        Ok(Ok(m)) => RunOutcome::Ok(m),
        Ok(Err(e)) => RunOutcome::Err(e),
        Err(p) => {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                String::new()
            };
            if msg.contains("retry_cnt exhausted") {
                RunOutcome::QpError(msg)
            } else {
                std::panic::resume_unwind(p)
            }
        }
    }
}

fn run_plain(sc: &Scenario, net: Network, faults: &FaultPlan, budget: Dur) -> RunOutcome {
    run_caught(&Sim::new(sc.seed), sc, net, faults, budget)
}

// ---------------------------------------------------------------------------
// Sharded-engine determinism check
// ---------------------------------------------------------------------------

/// Neighbor-exchange ring over the scenario's partitioned fat tree,
/// for the serial-vs-sharded determinism invariant (the mpisim worlds
/// are single-kernel, so the conservative engine is exercised on the
/// fabric layer it actually shards).
struct RingModel {
    endpoints: usize,
    part: Partition,
    hops: u32,
    delay: Dur,
}

#[derive(Clone, Copy)]
struct Hop {
    dst: usize,
    ttl: u32,
}

#[derive(Clone)]
struct RingState {
    cfg: Rc<(usize, Partition, Dur)>,
    arrivals: Rc<std::cell::RefCell<BTreeMap<usize, u64>>>,
    sim: Sim,
    outbox: Outbox<Hop>,
}

fn forward(st: &RingState, hop: Hop) {
    let (n, ref part, delay) = *st.cfg;
    *st.arrivals.borrow_mut().entry(hop.dst).or_insert(0) += 1;
    if hop.ttl == 0 {
        return;
    }
    let next = Hop {
        dst: (hop.dst + 1) % n,
        ttl: hop.ttl - 1,
    };
    if part.shard_of_endpoint(next.dst) == part.shard_of_endpoint(hop.dst) {
        let st2 = st.clone();
        st.sim
            .call_at(st.sim.now() + delay, move |_| forward(&st2, next));
    } else {
        st.outbox
            .send(part.shard_of_endpoint(next.dst), delay, next);
    }
}

impl ShardModel for RingModel {
    type Msg = Hop;
    type State = RingState;
    type Out = (BTreeMap<usize, u64>, u64);

    fn build(&mut self, shard: usize, sim: &Sim, outbox: &Outbox<Hop>) -> RingState {
        let st = RingState {
            cfg: Rc::new((self.endpoints, self.part.clone(), self.delay)),
            arrivals: Rc::new(std::cell::RefCell::new(BTreeMap::new())),
            sim: sim.clone(),
            outbox: outbox.clone(),
        };
        for e in (0..self.endpoints).step_by(4) {
            if self.part.shard_of_endpoint(e) == shard {
                forward(
                    &st,
                    Hop {
                        dst: e,
                        ttl: self.hops,
                    },
                );
            }
        }
        st
    }

    fn deliver(&mut self, st: &mut RingState, _sim: &Sim, msg: ShardMsg<Hop>) {
        let st2 = st.clone();
        let hop = msg.payload;
        st.sim.call_at(msg.at, move |_| forward(&st2, hop));
    }

    fn finish(&mut self, st: RingState, sim: &Sim) -> (BTreeMap<usize, u64>, u64) {
        (st.arrivals.take(), sim.now().as_ps())
    }
}

/// Run the ring check at shard count `k`; fold the merged arrival map
/// and final clock mod 2^32.
fn ring_fold(sc: &Scenario, k: usize) -> u64 {
    let endpoints = (sc.nodes * 4).max(k);
    let topo = Topology::fat_tree(sc.topo_radix, sc.topo_levels, endpoints);
    let delay = elanib_fabric::elan4().link.propagation;
    let part = Partition::contiguous(&topo, k);
    let look = if sc.adaptive && k > 1 {
        // The ring's influence graph: each endpoint block only ever
        // reaches ring-adjacent blocks, one cable propagation away.
        let pairs: Vec<Vec<Option<Dur>>> = (0..k)
            .map(|s| {
                (0..k)
                    .map(|d| (((s + 1) % k == d) || ((d + 1) % k == s)).then_some(delay))
                    .collect()
            })
            .collect();
        Lookahead::Pairwise(pairs)
    } else {
        Lookahead::Uniform(part.lookahead(&elanib_fabric::elan4()).unwrap_or(delay))
    };
    let shards: Vec<(u64, RingModel)> = (0..k)
        .map(|_| {
            (
                sc.seed,
                RingModel {
                    endpoints,
                    part: Partition::contiguous(&topo, k),
                    hops: 64,
                    delay,
                },
            )
        })
        .collect();
    let (outs, _stats) = run_sharded_with(look, shards);
    let mut merged: BTreeMap<usize, u64> = BTreeMap::new();
    let mut end = 0u64;
    for (map, t_end) in outs {
        for (dst, v) in map {
            *merged.entry(dst).or_insert(0) += v;
        }
        end = end.max(t_end);
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mixin = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mixin(end);
    for (dst, v) in merged {
        mixin(dst as u64);
        mixin(v);
    }
    h % (1 << 32)
}

// ---------------------------------------------------------------------------
// Cache roundtrip check
// ---------------------------------------------------------------------------

/// Newtype so a run fold can live in the point cache — the roundtrip
/// through encode/decode must return the identical word.
struct CachedFold(u64);

impl simcache::CacheValue for CachedFold {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        simcache::put_u64(&mut buf, self.0);
        buf
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        let v = simcache::take_u64(&mut bytes)?;
        bytes.is_empty().then_some(CachedFold(v))
    }
}

// ---------------------------------------------------------------------------
// Invariant expectations
// ---------------------------------------------------------------------------

/// The per-scenario invariant terms, written in the same DSL the paper
/// exhibits use — the fuzzer is a client of the validator, not a
/// second implementation of it.
const SCENARIO_EXPECT: &str = r#"
exhibit = "Fuzz scenario invariants"
file = "scenario"

[[expect]]
kind = "invariant"
name = "byte-conservation-ib"
series = "sent_ib"
of = "recv_ib"

[[expect]]
kind = "invariant"
name = "byte-conservation-elan"
series = "sent_elan"
of = "recv_elan"

[[expect]]
kind = "invariant"
name = "link-accounting-ib"
series = "wire_ib"
of = "linksum_ib"

[[expect]]
kind = "invariant"
name = "link-accounting-elan"
series = "wire_elan"
of = "linksum_elan"

[[expect]]
kind = "invariant"
name = "determinism-replay-ib"
series = "fold_ib"
of = "fold_ib_replay"

[[expect]]
kind = "invariant"
name = "determinism-replay-elan"
series = "fold_elan"
of = "fold_elan_replay"

[[expect]]
kind = "invariant"
name = "cache-roundtrip"
series = "cache_cold"
of = "cache_warm"

[[expect]]
kind = "invariant"
name = "shard-determinism"
series = "ring_serial"
of = "ring_sharded"
"#;

/// The fault-ladder terms: completion time may not *materially*
/// improve when the only change is a higher fault rate (rows are
/// ordered clean -> faulty by the `level` key). The slack is real
/// model physics, not hand-waving: a retry-delayed eager message can
/// arrive after its receive is posted instead of before, skipping the
/// unexpected-queue copy — the same receiver-side overhead the paper
/// measures — so small runs legitimately finish several percent
/// earlier under light loss (calibrated max over 5k generated
/// scenarios: 6.9%). 15% absorbs that with 2x headroom; a genuine
/// "faults speed things up" inversion scales with the loss rate and
/// lands an order of magnitude higher — and the exact wire-bytes
/// ladder below backstops the byte domain with zero slack.
const LADDER_EXPECT: &str = r#"
exhibit = "Fuzz monotone degradation"
file = "ladder"

[[expect]]
kind = "monotonic"
series = "end_ib"
direction = "increasing"
slack = 0.15

[[expect]]
kind = "monotonic"
series = "end_elan"
direction = "increasing"
slack = 0.15
"#;

/// Exact byte-domain ladder, applied only when the plan has no
/// outage/degrade/stall windows — each makes per-link reservations
/// timing-sensitive. Outages shift reroutes, degrades inflate the
/// reserved wire size, and a receiver stall turns an unlucky arrival
/// into an RNR-NAK retransmit, so on windowed plans a loss-shifted
/// message moves the byte totals in both directions. With
/// loss/corruption alone the accounting is exactly monotone: IB RC
/// re-reserves the whole message per retransmit, Elan link retries
/// cost time but no wire bytes, so `faulty >= clean` holds with zero
/// slack.
const LADDER_WIRE_EXPECT: &str = r#"
exhibit = "Fuzz monotone wire traffic"
file = "ladder-wire"

[[expect]]
kind = "monotonic"
series = "wire_ib"
direction = "increasing"

[[expect]]
kind = "monotonic"
series = "wire_elan"
direction = "increasing"
"#;

/// The paper's small-message ordering claim over qualified generated
/// points: on a clean, default-threshold, all-eager scenario, Elan-4's
/// completion is no later than InfiniBand's.
const ORDERING_EXPECT: &str = r#"
exhibit = "Fuzz paper ordering"
file = "ordering"

[[expect]]
kind = "wins"
series = "end_elan"
over = "end_ib"
better = "lower"
min_factor = 1.0
"#;

static SCENARIO_EF: LazyLock<ExpectFile> = LazyLock::new(|| {
    ExpectFile::parse("fuzz_scenario.toml", SCENARIO_EXPECT).expect("built-in invariants parse")
});
static LADDER_EF: LazyLock<ExpectFile> = LazyLock::new(|| {
    ExpectFile::parse("fuzz_ladder.toml", LADDER_EXPECT).expect("built-in ladder terms parse")
});
static LADDER_WIRE_EF: LazyLock<ExpectFile> = LazyLock::new(|| {
    ExpectFile::parse("fuzz_ladder_wire.toml", LADDER_WIRE_EXPECT)
        .expect("built-in wire-ladder terms parse")
});
static ORDERING_EF: LazyLock<ExpectFile> = LazyLock::new(|| {
    ExpectFile::parse("fuzz_ordering.toml", ORDERING_EXPECT).expect("built-in ordering term parses")
});

/// Does this scenario qualify as a paper-ordering comparison point?
/// Only clean, default-threshold, all-eager-regime runs are claims the
/// paper actually makes; everything else is out of contract.
fn ordering_qualified(sc: &Scenario) -> bool {
    // The §4 claim is about *native* InfiniBand; a RoCE-backed verbs
    // side is out of contract (Ethernet framing alone shifts it).
    sc.roce.is_none()
        && sc.faults.is_effectless()
        && sc.eager_ib == 1024
        && sc.eager_elan == 4096
        && !sc.msg_sizes.is_empty()
        && sc.msg_sizes.iter().all(|&b| (1..=1024).contains(&b))
}

fn eval(ef: &ExpectFile, label: &str, table: &Table) -> Vec<String> {
    elanib_validate::run_on_table(ef, label, table)
        .terms
        .into_iter()
        .flat_map(|t| t.violations)
        .map(|v| v.message)
        .collect()
}

// ---------------------------------------------------------------------------
// The check
// ---------------------------------------------------------------------------

/// Run every invariant against one scenario. Never panics on a
/// *violation* — those come back as data — but does propagate panics
/// from genuinely broken model code (the batch driver isolates those).
pub fn check_scenario(sc: &Scenario, opts: &FuzzOpts) -> ScenarioReport {
    let budget = opts.budget.unwrap_or_else(default_budget);
    let mut violations = Vec::new();

    // The verbs-side network honors the scenario's backend draw:
    // native IB, or RoCEv2 under the drawn CC mode (same world, same
    // QP-ERR contract — the CC layer only paces injections).
    let verbs_net = sc.roce.map(Network::RoceV2).unwrap_or(Network::InfiniBand);

    // Base runs on both stacks. A typed error (deadlock or blown
    // budget) is itself a no-deadlock violation, diagnostics included;
    // a QP retry-exhaustion is a specified outcome and skips the
    // scenario.
    let mut measured: BTreeMap<&str, Measured> = BTreeMap::new();
    for (key, net) in [("ib", verbs_net), ("elan", Network::Elan4)] {
        match run_plain(sc, net, &sc.faults, budget) {
            RunOutcome::Ok(m) => {
                measured.insert(key, m);
            }
            RunOutcome::Err(e) => {
                violations.push(format!("invariant `no-deadlock` broken on {net}: {e}"))
            }
            RunOutcome::QpError(msg) => {
                return ScenarioReport {
                    scenario: sc.clone(),
                    violations,
                    skipped: Some(msg),
                };
            }
        }
    }
    let (Some(ib), Some(elan)) = (measured.get("ib"), measured.get("elan")) else {
        return ScenarioReport {
            scenario: sc.clone(),
            violations,
            skipped: None,
        };
    };

    // Replay runs, with the scenario's observers attached: tracing and
    // profiling must not perturb a single metric. The base run
    // completed, so a replay that errors — or lands on QP-ERR — has
    // already diverged.
    let replay = |net: Network| -> RunOutcome {
        let sim = if sc.trace {
            Sim::with_tracer(sc.seed, Tracer::forced(sc.seed))
        } else if sc.profile {
            Sim::with_profiler(sc.seed, KernelProfiler::forced())
        } else {
            Sim::new(sc.seed)
        };
        run_caught(&sim, sc, net, &sc.faults, budget)
    };
    let (ib_replay, elan_replay) = match (replay(verbs_net), replay(Network::Elan4)) {
        (RunOutcome::Ok(a), RunOutcome::Ok(b)) => (a, b),
        (a, b) => {
            for (net, r) in [(verbs_net, &a), (Network::Elan4, &b)] {
                match r {
                    RunOutcome::Ok(_) => {}
                    RunOutcome::Err(e) => violations.push(format!(
                        "invariant `determinism-replay` broken: replay on {net} errored: {e}"
                    )),
                    RunOutcome::QpError(msg) => violations.push(format!(
                        "invariant `determinism-replay` broken: replay on {net} hit QP-ERR \
                         where the base run completed: {msg}"
                    )),
                }
            }
            return ScenarioReport {
                scenario: sc.clone(),
                violations,
                skipped: None,
            };
        }
    };

    let mut sent_ib = ib.sent;
    if opts.mutate == Some(Mutation::Conservation) {
        // Planted defect: pretend the IB side sent one byte more than
        // it did. The conservation invariant must catch this.
        sent_ib += 1;
    }

    // Point-cache roundtrip: cold stores the fold, warm decodes it.
    let (cache_cold, cache_warm) = if sc.cache {
        let fold = fold_run(ib);
        let key = format!("seed{} {:?}", sc.seed, sc);
        let cold = simcache::get_or_compute("fuzz.scenario", &key, || CachedFold(fold)).0;
        let warm = simcache::get_or_compute("fuzz.scenario", &key, || CachedFold(fold)).0;
        (cold, warm)
    } else {
        (0, 0)
    };

    // Sharded-engine determinism on the scenario's topology.
    let (ring_serial, ring_sharded) = if sc.shards > 1 {
        (ring_fold(sc, 1), ring_fold(sc, sc.shards))
    } else {
        (0, 0)
    };

    let row = format!(
        "seed,sent_ib,recv_ib,sent_elan,recv_elan,wire_ib,linksum_ib,wire_elan,linksum_elan,\
         fold_ib,fold_ib_replay,fold_elan,fold_elan_replay,cache_cold,cache_warm,\
         ring_serial,ring_sharded\n\
         {},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
        sc.seed,
        sent_ib,
        ib.recvd,
        elan.sent,
        elan.recvd,
        ib.run.stats.wire_bytes,
        ib.run.link_bytes.iter().sum::<u64>(),
        elan.run.stats.wire_bytes,
        elan.run.link_bytes.iter().sum::<u64>(),
        fold_run(ib),
        fold_run(&ib_replay),
        fold_run(elan),
        fold_run(&elan_replay),
        cache_cold,
        cache_warm,
        ring_serial,
        ring_sharded,
    );
    let table = Table::parse(&row).expect("harness-built CSV parses");
    let label = format!("scenario seed {}", sc.seed);
    violations.extend(eval(&SCENARIO_EF, &label, &table));

    // Monotone degradation: re-run with rates zeroed (windows kept, so
    // the only delta is the loss/corruption process) and demand the
    // clean run is no slower.
    if sc.faults.loss > 0.0 || sc.faults.corrupt > 0.0 {
        let mut clean = sc.faults.clone();
        clean.loss = 0.0;
        clean.corrupt = 0.0;
        match (
            run_plain(sc, verbs_net, &clean, budget),
            run_plain(sc, Network::Elan4, &clean, budget),
        ) {
            (RunOutcome::Ok(ib_clean), RunOutcome::Ok(elan_clean)) => {
                let ladder = format!(
                    "level,end_ib,end_elan\n0,{},{}\n1,{},{}\n",
                    ib_clean.run.end.as_ps(),
                    elan_clean.run.end.as_ps(),
                    ib.run.end.as_ps(),
                    elan.run.end.as_ps(),
                );
                let t = Table::parse(&ladder).expect("ladder CSV parses");
                violations.extend(
                    eval(&LADDER_EF, &label, &t)
                        .into_iter()
                        .map(|m| format!("invariant `monotone-degradation` broken: {m}")),
                );
                if sc.faults.outages.is_empty()
                    && sc.faults.degrades.is_empty()
                    && sc.faults.stalls.is_empty()
                {
                    let wire = format!(
                        "level,wire_ib,wire_elan\n0,{},{}\n1,{},{}\n",
                        ib_clean.run.stats.wire_bytes,
                        elan_clean.run.stats.wire_bytes,
                        ib.run.stats.wire_bytes,
                        elan.run.stats.wire_bytes,
                    );
                    let t = Table::parse(&wire).expect("wire-ladder CSV parses");
                    violations.extend(
                        eval(&LADDER_WIRE_EF, &label, &t)
                            .into_iter()
                            .map(|m| format!("invariant `monotone-wire-traffic` broken: {m}")),
                    );
                }
            }
            (a, b) => {
                for (net, r) in [(verbs_net, &a), (Network::Elan4, &b)] {
                    match r {
                        // A clean run that errors is a real violation;
                        // a clean run should never hit QP-ERR (no loss
                        // left to exhaust retries), so that diverging
                        // is one too.
                        RunOutcome::Ok(_) => {}
                        RunOutcome::Err(e) => violations.push(format!(
                            "invariant `monotone-degradation` broken: clean {net} run errored: {e}"
                        )),
                        RunOutcome::QpError(msg) => violations.push(format!(
                            "invariant `monotone-degradation` broken: clean {net} run hit \
                             QP-ERR with rates zeroed: {msg}"
                        )),
                    }
                }
            }
        }
    }

    // Paper ordering, on qualified points only.
    if ordering_qualified(sc) {
        let ordering = format!(
            "seed,end_ib,end_elan\n{},{},{}\n",
            sc.seed,
            ib.run.end.as_ps(),
            elan.run.end.as_ps(),
        );
        let t = Table::parse(&ordering).expect("ordering CSV parses");
        violations.extend(
            eval(&ORDERING_EF, &label, &t)
                .into_iter()
                .map(|m| format!("invariant `paper-ordering` broken: {m}")),
        );
    }

    ScenarioReport {
        scenario: sc.clone(),
        violations,
        skipped: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_clean() -> Scenario {
        Scenario {
            seed: 5,
            nodes: 4,
            ppn: 1,
            msg_sizes: vec![64, 1024],
            eager_ib: 1024,
            eager_elan: 4096,
            faults: FaultPlan::default(),
            cache: true,
            trace: true,
            profile: false,
            shards: 2,
            adaptive: true,
            topo_radix: 4,
            topo_levels: 3,
            roce: None,
        }
    }

    #[test]
    fn clean_scenario_satisfies_every_invariant() {
        let rep = check_scenario(&tiny_clean(), &FuzzOpts::default());
        assert!(rep.ok(), "unexpected violations: {:#?}", rep.violations);
    }

    #[test]
    fn roce_backed_scenario_satisfies_every_invariant() {
        // Each CC mode runs the verbs side paced; conservation,
        // replay determinism, and observer-effect checks must all
        // hold on the paced path, faulted and clean.
        use elanib_mpi::RoceMode;
        for (i, mode) in RoceMode::ALL.into_iter().enumerate() {
            let mut sc = tiny_clean();
            sc.seed = 20 + i as u64;
            sc.roce = Some(mode);
            if i == 0 {
                sc.faults.loss = 5e-3;
            }
            let rep = check_scenario(&sc, &FuzzOpts::default());
            assert!(
                rep.ok(),
                "{mode}: unexpected violations: {:#?}",
                rep.violations
            );
        }
    }

    #[test]
    fn faulty_scenario_still_conserves_bytes() {
        let mut sc = tiny_clean();
        sc.seed = 6;
        sc.faults.loss = 1e-2;
        sc.faults.corrupt = 1e-3;
        let rep = check_scenario(&sc, &FuzzOpts::default());
        assert!(rep.ok(), "unexpected violations: {:#?}", rep.violations);
    }

    #[test]
    fn planted_conservation_bug_is_caught() {
        let rep = check_scenario(
            &tiny_clean(),
            &FuzzOpts {
                budget: None,
                mutate: Some(Mutation::Conservation),
            },
        );
        assert!(!rep.ok(), "mutation must violate conservation");
        assert!(
            rep.violations
                .iter()
                .any(|v| v.contains("byte-conservation-ib")),
            "wrong violation set: {:#?}",
            rep.violations
        );
    }

    #[test]
    fn blown_budget_reports_a_no_deadlock_violation() {
        let mut sc = tiny_clean();
        sc.cache = false;
        sc.shards = 1;
        let rep = check_scenario(
            &sc,
            &FuzzOpts {
                budget: Some(Dur::from_ps(1)),
                mutate: None,
            },
        );
        assert!(!rep.ok());
        assert!(
            rep.violations.iter().any(|v| v.contains("no-deadlock")),
            "wrong violation set: {:#?}",
            rep.violations
        );
    }
}
