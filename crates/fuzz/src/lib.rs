//! # elanib-fuzz — seeded scenario generator and property fuzzer
//!
//! The conformance DSL (`elanib-validate`) pins the paper's claims at
//! 17 hand-picked exhibits; this crate flips that into a *generator*:
//! seeded random scenarios across the whole configuration space —
//! cluster shape, message-size mix, protocol thresholds, fault
//! schedules, and every knob that must not change results (tracing,
//! profiling, the point cache, the sharded conservative engine) — each
//! run through **both** simulated stacks with cross-cutting invariants
//! checked as first-class validate terms.
//!
//! The moving parts:
//!
//! * [`scenario`] — [`Scenario`]: one configuration point, generated
//!   as a pure function of a seed, shrinkable, and round-trippable
//!   through the `fuzz_failures/<seed>.toml` repro format.
//! * [`harness`] — [`check_scenario`]: runs a scenario on both
//!   networks and evaluates byte conservation, no-deadlock (typed
//!   [`elanib_simcore::SimError::ScenarioTimeout`] budgets),
//!   determinism/observer-effect replays, cache and sharded-engine
//!   agreement, monotone degradation, and the paper's small-message
//!   ordering — every one expressed in the validate DSL and evaluated
//!   with [`elanib_validate::run_on_table`].
//! * [`shrink`] — [`fuzz_batch`] (panic-isolated sweep over generated
//!   seeds), [`shrink()`](shrink::shrink) (greedy minimization of a
//!   failing scenario), and [`write_repro`].
//!
//! The `fuzz` binary in `elanib-bench` is the CLI: batch mode for CI,
//! `--replay` for a saved repro, `--mutate` for checking that the
//! checker still catches planted bugs.

pub mod harness;
pub mod scenario;
pub mod shrink;

pub use harness::{check_scenario, default_budget, FuzzOpts, Mutation, ScenarioReport};
pub use scenario::{fault_horizon, Scenario};
pub use shrink::{batch_seed, fuzz_batch, write_repro, BatchOutcome};
