//! Failing-scenario minimization and batch execution.
//!
//! [`shrink`] is greedy delta-debugging over
//! [`Scenario::shrink_candidates`]: try each strictly-simpler variant,
//! keep the first that still fails, repeat until nothing simpler
//! fails. Termination is structural — every candidate strictly
//! decreases [`Scenario::complexity`], which is a finite non-negative
//! word. [`write_repro`] then lands the minimized scenario in
//! `fuzz_failures/<seed>.toml`, ready for
//! `cargo run -p elanib-bench --bin fuzz -- --replay <file>`.
//!
//! [`fuzz_batch`] is the batch driver: one [`check_scenario`] per
//! generated seed, fanned across the `elanib-core` sweep pool with
//! panic isolation on — a panicking scenario becomes an attributable
//! failure record, not a dead batch.

use std::path::{Path, PathBuf};

use elanib_core::{sweep_with_opts, PointResult, SweepOpts, SweepStats};

use crate::harness::{check_scenario, FuzzOpts, ScenarioReport};
use crate::scenario::Scenario;

/// Outcome of a whole fuzz batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Scenarios checked (including passing ones).
    pub scenarios: usize,
    /// Reports whose invariants were violated, in seed order.
    pub failures: Vec<ScenarioReport>,
    /// Scenarios that panicked inside the model code itself (message,
    /// from the isolated sweep).
    pub panics: Vec<String>,
    /// Scenarios skipped on a specified failure mode (IB `QP-ERR`
    /// under heavy loss) — the model behaving as documented.
    pub skipped: usize,
    /// Pool statistics, ready for the JSONL perf record.
    pub stats: SweepStats,
}

impl BatchOutcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.panics.is_empty()
    }
}

/// Derive the scenario seed for batch element `i` of `base_seed` —
/// SplitMix64, so neighbouring indices land far apart.
pub fn batch_seed(base_seed: u64, i: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Check `n` generated scenarios derived from `base_seed` across the
/// sweep pool. Panics are isolated per point.
pub fn fuzz_batch(base_seed: u64, n: usize, opts: &FuzzOpts) -> BatchOutcome {
    let seeds: Vec<u64> = (0..n as u64).map(|i| batch_seed(base_seed, i)).collect();
    let (results, stats) = sweep_with_opts(
        &seeds,
        SweepOpts {
            isolate_panics: true,
        },
        |&seed| check_scenario(&Scenario::generate(seed), opts),
    );
    let mut failures = Vec::new();
    let mut panics = Vec::new();
    let mut skipped = 0;
    for r in results {
        match r {
            PointResult::Ok(rep) if rep.ok() => skipped += rep.skipped.is_some() as usize,
            PointResult::Ok(rep) => failures.push(rep),
            PointResult::Failed { payload, .. } => panics.push(payload),
        }
    }
    BatchOutcome {
        scenarios: n,
        failures,
        panics,
        skipped,
        stats,
    }
}

/// Greedily minimize a failing scenario: keep applying the first
/// strictly-simpler candidate that still fails until none does.
/// Returns the minimized scenario and its (still-failing) report.
pub fn shrink(failing: &Scenario, opts: &FuzzOpts) -> (Scenario, ScenarioReport) {
    let mut current = failing.clone();
    let mut report = check_scenario(&current, opts);
    debug_assert!(!report.ok(), "shrink called on a passing scenario");
    'outer: loop {
        for cand in current.shrink_candidates() {
            let rep = check_scenario(&cand, opts);
            if !rep.ok() {
                current = cand;
                report = rep;
                continue 'outer;
            }
        }
        return (current, report);
    }
}

/// Write the repro file for a (minimized) failing scenario under
/// `dir`, named after its seed. Returns the path written.
pub fn write_repro(dir: &Path, sc: &Scenario, opts: &FuzzOpts) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.toml", sc.seed));
    std::fs::write(&path, sc.to_repro(opts.mutate.map(|m| m.name())))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Mutation;
    use elanib_fabric::FaultPlan;

    #[test]
    fn batch_seeds_are_deterministic_and_spread() {
        let a: Vec<u64> = (0..20).map(|i| batch_seed(42, i)).collect();
        let b: Vec<u64> = (0..20).map(|i| batch_seed(42, i)).collect();
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<&u64> = a.iter().collect();
        assert_eq!(distinct.len(), a.len(), "collisions in {a:?}");
        assert_ne!(batch_seed(42, 0), batch_seed(43, 0));
    }

    #[test]
    fn small_clean_batch_runs_green() {
        let out = fuzz_batch(7, 4, &FuzzOpts::default());
        assert_eq!(out.scenarios, 4);
        assert!(
            out.ok(),
            "failures: {:#?}, panics: {:?}",
            out.failures
                .iter()
                .map(|f| (&f.scenario, &f.violations))
                .collect::<Vec<_>>(),
            out.panics
        );
    }

    #[test]
    fn planted_bug_shrinks_to_a_minimal_deterministic_repro() {
        let opts = FuzzOpts {
            budget: None,
            mutate: Some(Mutation::Conservation),
        };
        let sc = Scenario::generate(batch_seed(42, 0));
        let rep = check_scenario(&sc, &opts);
        assert!(!rep.ok(), "mutation must fail: {:?}", sc);
        let (min, min_rep) = shrink(&sc, &opts);
        assert!(!min_rep.ok());
        assert!(min.complexity() <= sc.complexity());
        // The conservation mutation survives every reduction, so the
        // shrinker must bottom out at the floor of the space: 2 nodes,
        // 1 ppn, a single message, nothing else switched on.
        assert_eq!(min.nodes, 2, "not fully shrunk: {min:?}");
        assert_eq!(min.ppn, 1);
        assert_eq!(min.msg_sizes.len(), 1);
        assert!(min.faults.is_effectless() || min.faults == FaultPlan::default());
        assert_eq!(min.shards, 1);
        assert!(!min.cache && !min.trace && !min.profile && !min.adaptive);
        // Replay from the serialized repro reproduces the violation
        // byte-for-byte.
        let dir = std::env::temp_dir().join(format!("elanib_fuzz_test_{}", std::process::id()));
        let path = write_repro(&dir, &min, &opts).expect("repro written");
        let text = std::fs::read_to_string(&path).unwrap();
        let (back, mutate) = Scenario::parse_repro(&text).expect("repro parses");
        assert_eq!(back, min);
        let replay_opts = FuzzOpts {
            budget: None,
            mutate: mutate.as_deref().map(|m| Mutation::parse(m).unwrap()),
        };
        let replay = check_scenario(&back, &replay_opts);
        assert_eq!(
            replay.violations, min_rep.violations,
            "replay must reproduce"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
