//! Atomic JSON-lines appends.
//!
//! Several writers in the workspace append one JSON record per run to
//! a shared file (`ELANIB_BENCH_JSON`, metrics logs) while sweep
//! workers in *other processes* may be doing the same. POSIX
//! guarantees that a `write(2)` on an `O_APPEND` descriptor performs
//! the seek-to-end and the write atomically with respect to other
//! appenders, so as long as every record is submitted as **one**
//! `write_all` of a complete `line + '\n'`, records never interleave.
//! (Pipes only guarantee this up to `PIPE_BUF`; regular files — our
//! case — are not subject to that limit on Linux.)
//!
//! What is *not* safe is `write!(f, ...)` with multiple format
//! arguments or a separate `write(b"\n")`: each flush is its own
//! syscall and another process can land between them. This module is
//! the single shared implementation so no call site re-grows that bug.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

/// Append `line` (without trailing newline) to `path` as a single
/// atomic record. The file is created if missing.
pub fn append_line(path: &Path, line: &str) -> io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    // Single write_all of the complete record: O_APPEND makes this
    // atomic w.r.t. concurrent appenders (see module docs).
    f.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_complete_lines() {
        let dir = std::env::temp_dir().join("elanib-trace-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("t{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        append_line(&p, "{\"a\":1}").unwrap();
        append_line(&p, "{\"b\":2}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&p);
    }
}
