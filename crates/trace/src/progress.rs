//! Live progress heartbeat for long runs.
//!
//! Long sweeps (hours at the target scale in ROADMAP item 4) are
//! otherwise silent until they finish. When `ELANIB_PROGRESS=<path>`
//! is set, drivers emit small JSONL heartbeat records to that file —
//! one atomic append per beat (same single-`write` discipline as
//! [`crate::jsonl`]), rate-limited so a tight loop cannot flood the
//! file — and a watcher (`tail -f`, a dashboard) sees jobs complete in
//! real time.
//!
//! Heartbeats are **out-of-band**: they never touch simulated state,
//! so determinism of the exhibits is unaffected; the records carry
//! wall-clock timestamps and are not expected to be reproducible.
//!
//! | variable | effect |
//! |---|---|
//! | `ELANIB_PROGRESS` | heartbeat JSONL path; unset/empty → disabled |
//! | `ELANIB_PROGRESS_SECS` | min seconds between beats (default 1.0) |

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

fn env_path() -> Option<&'static PathBuf> {
    static P: OnceLock<Option<PathBuf>> = OnceLock::new();
    P.get_or_init(|| {
        std::env::var("ELANIB_PROGRESS")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
    .as_ref()
}

fn min_interval() -> Duration {
    static D: OnceLock<Duration> = OnceLock::new();
    *D.get_or_init(|| {
        let secs = std::env::var("ELANIB_PROGRESS_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        Duration::from_secs_f64(secs.max(0.0))
    })
}

/// Runtime override used by tests (env vars are cached once per
/// process). `Some(path)` routes beats there; `None` restores
/// env-driven behaviour.
static OVERRIDE_SET: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

pub fn set_override(path: Option<PathBuf>) {
    OVERRIDE_SET.store(path.is_some(), Ordering::SeqCst);
    *OVERRIDE.lock().unwrap() = path;
}

fn sink() -> Option<PathBuf> {
    if OVERRIDE_SET.load(Ordering::SeqCst) {
        return OVERRIDE.lock().unwrap().clone();
    }
    env_path().cloned()
}

/// Whether heartbeats are enabled — callers that must assemble fields
/// eagerly can skip the work entirely when this is false. [`beat`]
/// already builds fields lazily, so most call sites need not check.
pub fn enabled() -> bool {
    sink().is_some()
}

fn last_beat() -> &'static Mutex<Option<Instant>> {
    static T: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(None))
}

fn unix_ts() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn write_beat(path: &Path, source: &str, fields: &str) {
    let line = format!(
        "{{\"kind\":\"progress\",\"source\":\"{source}\",{fields},\"unix_ts\":{}}}",
        unix_ts()
    );
    let _ = crate::jsonl::append_line(path, &line);
}

/// Emit a heartbeat if enabled and the rate limit allows. `fields` is
/// built lazily and must be a comma-separated run of JSON key/value
/// pairs without braces, e.g. `"done":3,"total":40` — the record wraps
/// it as `{"kind":"progress","source":<source>,<fields>,"unix_ts":N}`.
pub fn beat(source: &str, fields: impl FnOnce() -> String) {
    let Some(path) = sink() else { return };
    {
        let mut last = last_beat().lock().unwrap();
        let now = Instant::now();
        if let Some(prev) = *last {
            if now.duration_since(prev) < min_interval() {
                return;
            }
        }
        *last = Some(now);
    }
    write_beat(&path, source, &fields());
}

/// Emit a heartbeat unconditionally (start/finish markers that must
/// not be rate-limited away).
pub fn beat_now(source: &str, fields: impl FnOnce() -> String) {
    let Some(path) = sink() else { return };
    *last_beat().lock().unwrap() = Some(Instant::now());
    write_beat(&path, source, &fields());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_append_jsonl_and_rate_limit() {
        let dir = std::env::temp_dir().join(format!("elanib_progress_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("beat.jsonl");
        set_override(Some(path.clone()));
        beat_now("test", || "\"done\":1,\"total\":2".to_string());
        // Immediately after a beat the rate limiter suppresses this one.
        beat("test", || panic!("rate-limited beat must not build fields"));
        beat_now("test", || "\"done\":2,\"total\":2".to_string());
        set_override(None);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        assert!(lines[0].starts_with("{\"kind\":\"progress\",\"source\":\"test\""));
        assert!(lines[0].contains("\"done\":1"));
        assert!(lines[1].contains("\"done\":2"));
        assert!(lines[0].contains("\"unix_ts\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_without_env_or_override() {
        // No override and (in the test environment) no ELANIB_PROGRESS:
        // beat() must not panic and must build nothing.
        if std::env::var("ELANIB_PROGRESS").is_ok() {
            return; // externally enabled; nothing to assert
        }
        assert!(!enabled());
        beat("test", || panic!("disabled beat must not build fields"));
    }
}
