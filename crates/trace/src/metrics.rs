//! Per-run metrics summaries and their JSON/CSV sinks.
//!
//! A [`MetricsSummary`] is the end-of-run snapshot of one simulation's
//! counter registry. The flush aggregates every summary collected
//! since the last drain into two files next to the exhibit CSVs:
//!
//! * `<label>.metrics.json` — full per-run detail plus totals;
//! * `<label>.metrics.csv` — flat `label,seed,kind,name,value` rows,
//!   convenient for joining against the exhibit tables.
//!
//! Both are deterministic: `BTreeMap` keeps metric names sorted and
//! the caller ([`crate::drain`]) orders runs by (label, seed).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::Name;

/// Last-and-max gauge (queue depths, occupancy).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge {
    pub last: i64,
    pub max: i64,
}

impl Gauge {
    pub fn record(&mut self, v: i64) {
        self.last = v;
        if v > self.max {
            self.max = v;
        }
    }
}

/// Count/sum/min/max histogram (message sizes, stall durations).
#[derive(Clone, Copy, Debug, Default)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Hist {
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// End-of-run snapshot of one simulation's metrics registry.
#[derive(Clone, Debug)]
pub struct MetricsSummary {
    pub label: String,
    pub seed: u64,
    pub counters: BTreeMap<Name, u64>,
    pub gauges: BTreeMap<Name, Gauge>,
    pub hists: BTreeMap<Name, Hist>,
    pub dropped_events: u64,
}

impl MetricsSummary {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Aggregate counters across runs (sum per name).
fn totals<'a>(summaries: &[&'a MetricsSummary]) -> BTreeMap<&'a str, u64> {
    let mut t: BTreeMap<&str, u64> = BTreeMap::new();
    for s in summaries {
        for (k, v) in &s.counters {
            *t.entry(k.as_ref()).or_insert(0) += v;
        }
    }
    t
}

/// Write the per-run + aggregate metrics JSON document.
pub fn write_metrics_json(
    path: &Path,
    label: &str,
    summaries: &[&MetricsSummary],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{{")?;
    writeln!(w, "  \"exhibit\": \"{}\",", esc(label))?;
    writeln!(w, "  \"runs\": [")?;
    let n = summaries.len();
    for (i, s) in summaries.iter().enumerate() {
        writeln!(w, "    {{")?;
        writeln!(w, "      \"label\": \"{}\",", esc(&s.label))?;
        writeln!(w, "      \"seed\": {},", s.seed)?;
        writeln!(w, "      \"dropped_events\": {},", s.dropped_events)?;
        write!(w, "      \"counters\": {{")?;
        for (j, (k, v)) in s.counters.iter().enumerate() {
            let c = if j + 1 < s.counters.len() { "," } else { "" };
            write!(w, "\"{}\": {v}{c}", esc(k))?;
        }
        writeln!(w, "}},")?;
        write!(w, "      \"gauges\": {{")?;
        for (j, (k, g)) in s.gauges.iter().enumerate() {
            let c = if j + 1 < s.gauges.len() { "," } else { "" };
            write!(
                w,
                "\"{}\": {{\"last\": {}, \"max\": {}}}{c}",
                esc(k),
                g.last,
                g.max
            )?;
        }
        writeln!(w, "}},")?;
        write!(w, "      \"histograms\": {{")?;
        for (j, (k, h)) in s.hists.iter().enumerate() {
            let c = if j + 1 < s.hists.len() { "," } else { "" };
            write!(
                w,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}{c}",
                esc(k),
                h.count,
                h.sum,
                h.min,
                h.max
            )?;
        }
        writeln!(w, "}}")?;
        writeln!(w, "    }}{}", if i + 1 < n { "," } else { "" })?;
    }
    writeln!(w, "  ],")?;
    let t = totals(summaries);
    write!(w, "  \"totals\": {{")?;
    for (j, (k, v)) in t.iter().enumerate() {
        let c = if j + 1 < t.len() { "," } else { "" };
        write!(w, "\"{}\": {v}{c}", esc(k))?;
    }
    writeln!(w, "}}")?;
    writeln!(w, "}}")?;
    w.flush()
}

/// Write the flat per-run metrics CSV: one row per metric.
pub fn write_metrics_csv(path: &Path, summaries: &[&MetricsSummary]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "label,seed,kind,name,value")?;
    let csv_label = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    for s in summaries {
        let l = csv_label(&s.label);
        for (k, v) in &s.counters {
            writeln!(w, "{l},{},counter,{k},{v}", s.seed)?;
        }
        for (k, g) in &s.gauges {
            writeln!(w, "{l},{},gauge_last,{k},{}", s.seed, g.last)?;
            writeln!(w, "{l},{},gauge_max,{k},{}", s.seed, g.max)?;
        }
        for (k, h) in &s.hists {
            writeln!(w, "{l},{},hist_count,{k},{}", s.seed, h.count)?;
            writeln!(w, "{l},{},hist_sum,{k},{}", s.seed, h.sum)?;
        }
        if s.dropped_events > 0 {
            writeln!(
                w,
                "{l},{},counter,trace.dropped_events,{}",
                s.seed, s.dropped_events
            )?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_last_and_max() {
        let mut g = Gauge::default();
        g.record(3);
        g.record(7);
        g.record(2);
        assert_eq!((g.last, g.max), (2, 7));
    }

    #[test]
    fn hist_tracks_bounds_and_mean() {
        let mut h = Hist::default();
        h.record(10);
        h.record(2);
        h.record(6);
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 18, 2, 10));
        assert!((h.mean() - 6.0).abs() < 1e-12);
    }
}
