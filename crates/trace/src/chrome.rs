//! Chrome `trace_event` JSON exporter.
//!
//! Writes the "JSON Array Format" understood by Perfetto and
//! `chrome://tracing`: one object per event, timestamps in
//! microseconds. Each simulation in a flush becomes one `pid` with a
//! `process_name` metadata record carrying its label and seed, so a
//! sweep's 24 jobs land side by side in a single trace file.
//!
//! The writer is fully deterministic: events arrive pre-sorted by
//! simulated timestamp (the `Tracer` sorts on drop) and simulations
//! are ordered by (label, seed) by [`crate::drain`].

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::{FinishedTrace, Phase};

/// Simulated picoseconds per Chrome microsecond.
const PS_PER_US: u64 = 1_000_000;

/// Render `ps` picoseconds as a decimal microsecond literal with no
/// float formatting involved (keeps output byte-stable across
/// platforms and densely precise: 1 ps = 1e-6 us).
fn us(ps: u64) -> String {
    let whole = ps / PS_PER_US;
    let frac = ps % PS_PER_US;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:06}");
        s.trim_end_matches('0').to_string()
    }
}

/// Minimal JSON string escaping — names are ASCII identifiers from the
/// models, but task names may embed quotes some day.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write all simulations' events as one Chrome trace file.
pub fn write_chrome_trace(path: &Path, traces: &[FinishedTrace]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(b"[")?;
    let mut first = true;
    for (pid, t) in traces.iter().enumerate() {
        if t.events.is_empty() {
            continue;
        }
        let sep = |first: &mut bool| if std::mem::take(first) { "\n" } else { ",\n" };
        let meta_name = format!("{} (seed {})", t.summary.label, t.summary.seed);
        write!(
            w,
            "{}{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            sep(&mut first),
            esc(&meta_name)
        )?;
        for e in &t.events {
            let ts = us(e.ts_ps);
            match e.ph {
                Phase::Span => write!(
                    w,
                    "{}{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"v\":{}}}}}",
                    sep(&mut first),
                    esc(&e.name),
                    e.cat,
                    us(e.dur_ps),
                    e.tid,
                    e.arg
                )?,
                Phase::Instant => write!(
                    w,
                    "{}{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{},\"args\":{{\"v\":{}}}}}",
                    sep(&mut first),
                    esc(&e.name),
                    e.cat,
                    e.tid,
                    e.arg
                )?,
                Phase::Counter => write!(
                    w,
                    "{}{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    sep(&mut first),
                    esc(&e.name),
                    e.cat,
                    e.tid,
                    e.arg
                )?,
            }
        }
    }
    w.write_all(b"\n]\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_renders_exact_decimal() {
        assert_eq!(us(0), "0");
        assert_eq!(us(1_000_000), "1");
        assert_eq!(us(1_500_000), "1.5");
        assert_eq!(us(1), "0.000001");
        assert_eq!(us(123_456_789), "123.456789");
    }

    #[test]
    fn esc_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
