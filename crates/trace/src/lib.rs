//! # elanib-trace — deterministic tracing & metrics for the simulation stack
//!
//! The paper's whole argument is about *internal* mechanisms — pin-down
//! cache misses, unexpected-message queues, host vs. NIC progress —
//! that end-to-end times hide. This crate is the observability layer
//! that makes those mechanisms visible without perturbing them:
//!
//! * a per-simulation [`Tracer`] records **typed events stamped with
//!   simulated time** (task lifecycles, transfers, collective phases)
//!   and a registry of monotonic [counters](Tracer::add),
//!   [gauges](Tracer::gauge) and [histograms](Tracer::observe);
//! * two deterministic sinks: a Chrome `trace_event` JSON exporter
//!   ([`chrome`]) for single-run deep dives (open in Perfetto /
//!   `chrome://tracing`) and a per-run metrics summary ([`metrics`])
//!   that sweep drivers aggregate into JSON + CSV next to the exhibit
//!   CSVs;
//! * everything is **off by default and zero-cost when off**: the
//!   simulation kernel carries an `Option<Rc<Tracer>>` that is `None`
//!   unless `ELANIB_TRACE` / `ELANIB_METRICS` is set, so the hot path
//!   pays one predictable null check per instrumentation point and no
//!   allocation, no dyn dispatch, no formatting.
//!
//! ## Determinism contract
//!
//! Tracing *observes*; it never schedules events, draws randomness, or
//! alters model timing. Timestamps are simulated picoseconds, so a
//! trace of a given (seed, program) is itself reproducible. The
//! repo-wide guarantee — all exhibit CSVs byte-identical with tracing
//! on or off — is locked by `crates/bench/tests/determinism.rs`.
//!
//! ## Environment variables
//!
//! | variable | effect |
//! |---|---|
//! | `ELANIB_TRACE` | `1` → record events, emit `<label>.trace.json` |
//! | `ELANIB_METRICS` | `1` → record counters, emit `<label>.metrics.{json,csv}` |
//! | `ELANIB_TRACE_DIR` | output directory (default `ELANIB_RESULTS_DIR`, else `.`) |
//! | `ELANIB_TRACE_MAX_EVENTS` | per-simulation event cap (default 200000) |
//!
//! This crate is dependency-free and knows nothing about the simulator;
//! `elanib-simcore` owns the `SimTime → u64 ps` conversion.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod chrome;
pub mod jsonl;
pub mod metrics;
pub mod progress;

pub use metrics::{Gauge, Hist, MetricsSummary};

/// Git revision the binary was built from: the `ELANIB_GIT_REV`
/// build-time environment variable (stamped by `scripts/ci.sh`), empty
/// when it wasn't set — record consumers treat "" as unknown.
pub fn git_rev() -> &'static str {
    option_env!("ELANIB_GIT_REV").unwrap_or("")
}

/// What tracing work a new simulation should do.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Record typed events for the Chrome trace sink.
    pub events: bool,
    /// Record counters/gauges/histograms for the metrics sink.
    pub metrics: bool,
    /// Per-simulation event cap; events beyond it are counted as
    /// dropped rather than stored (bounds trace file size in sweeps).
    pub max_events: usize,
    /// Output directory override for [`flush`].
    pub dir: Option<PathBuf>,
}

impl TraceConfig {
    pub fn enabled(&self) -> bool {
        self.events || self.metrics
    }

    /// Both sinks on — the configuration tests force.
    pub fn all() -> TraceConfig {
        TraceConfig {
            events: true,
            metrics: true,
            max_events: DEFAULT_MAX_EVENTS,
            dir: None,
        }
    }
}

const DEFAULT_MAX_EVENTS: usize = 200_000;

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_config() -> &'static TraceConfig {
    static CFG: OnceLock<TraceConfig> = OnceLock::new();
    CFG.get_or_init(|| TraceConfig {
        events: env_flag("ELANIB_TRACE"),
        metrics: env_flag("ELANIB_METRICS"),
        max_events: std::env::var("ELANIB_TRACE_MAX_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_EVENTS),
        dir: std::env::var("ELANIB_TRACE_DIR")
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var("ELANIB_RESULTS_DIR")
                    .ok()
                    .filter(|d| !d.is_empty())
                    .map(PathBuf::from)
            }),
    })
}

/// Runtime override used by tests (env vars are cached once per
/// process, so flipping them mid-run is not reliable). `Some(cfg)`
/// forces every subsequently created simulation to trace with `cfg`;
/// `None` restores env-driven behaviour.
static OVERRIDE_SET: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<TraceConfig>> = Mutex::new(None);

pub fn set_override(cfg: Option<TraceConfig>) {
    OVERRIDE_SET.store(cfg.is_some(), Ordering::SeqCst);
    *OVERRIDE.lock().unwrap() = cfg;
}

/// Effective configuration for the next simulation: the test override
/// if set, else the (cached) environment.
pub fn config() -> TraceConfig {
    if OVERRIDE_SET.load(Ordering::SeqCst) {
        if let Some(cfg) = OVERRIDE.lock().unwrap().clone() {
            return cfg;
        }
    }
    env_config().clone()
}

/// Event phase, mirroring the Chrome `trace_event` phases we emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// A complete event with a duration (`ph:"X"`).
    Span,
    /// A point-in-time marker (`ph:"i"`).
    Instant,
    /// A sampled counter value (`ph:"C"`).
    Counter,
}

/// Interned-or-owned event name. Instrumentation points use `&'static
/// str` (free); task-derived names pay one `String` only when events
/// are actually recorded.
pub type Name = Cow<'static, str>;

/// One recorded trace event. Times are simulated picoseconds.
#[derive(Clone, Debug)]
pub struct Event {
    pub ts_ps: u64,
    pub dur_ps: u64,
    pub ph: Phase,
    /// Track id: task slot, MPI rank, or link index — whatever lane
    /// the category renders on.
    pub tid: u32,
    pub cat: &'static str,
    pub name: Name,
    /// Counter value for [`Phase::Counter`]; free argument (bytes,
    /// depth) otherwise.
    pub arg: i64,
}

/// Per-simulation trace recorder. Cheap handle (`Rc`); interior
/// mutability keeps the call sites `&self` like everything else in the
/// single-threaded kernel.
///
/// On drop, a tracer that recorded anything submits its events and
/// metrics snapshot to the process-wide [`collector`], where a driver
/// picks them up with [`flush`].
pub struct Tracer {
    events_on: bool,
    metrics_on: bool,
    max_events: usize,
    seed: u64,
    label: RefCell<String>,
    events: RefCell<Vec<Event>>,
    dropped: Cell<u64>,
    counters: RefCell<BTreeMap<Name, u64>>,
    gauges: RefCell<BTreeMap<Name, Gauge>>,
    hists: RefCell<BTreeMap<Name, Hist>>,
}

impl Tracer {
    /// Build a tracer for a simulation seeded with `seed`, if the
    /// current [`config`] enables any sink.
    pub fn from_config(seed: u64) -> Option<Rc<Tracer>> {
        let cfg = config();
        if !cfg.enabled() {
            return None;
        }
        Some(Rc::new(Tracer {
            events_on: cfg.events,
            metrics_on: cfg.metrics,
            max_events: cfg.max_events,
            seed,
            label: RefCell::new(format!("sim-seed{seed}")),
            events: RefCell::new(Vec::new()),
            dropped: Cell::new(0),
            counters: RefCell::new(BTreeMap::new()),
            gauges: RefCell::new(BTreeMap::new()),
            hists: RefCell::new(BTreeMap::new()),
        }))
    }

    /// Tracer with both sinks on regardless of environment (tests).
    pub fn forced(seed: u64) -> Rc<Tracer> {
        Rc::new(Tracer {
            events_on: true,
            metrics_on: true,
            max_events: DEFAULT_MAX_EVENTS,
            seed,
            label: RefCell::new(format!("sim-seed{seed}")),
            events: RefCell::new(Vec::new()),
            dropped: Cell::new(0),
            counters: RefCell::new(BTreeMap::new()),
            gauges: RefCell::new(BTreeMap::new()),
            hists: RefCell::new(BTreeMap::new()),
        })
    }

    #[inline]
    pub fn events_on(&self) -> bool {
        self.events_on
    }
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.metrics_on
    }
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Human-readable identity of this simulation in the sinks
    /// (e.g. `"4X InfiniBand 8n x 2ppn"`). Drivers set it right after
    /// creating the sim.
    pub fn set_label(&self, label: impl Into<String>) {
        *self.label.borrow_mut() = label.into();
    }
    pub fn label(&self) -> String {
        self.label.borrow().clone()
    }

    fn push(&self, ev: Event) {
        let mut evs = self.events.borrow_mut();
        if evs.len() >= self.max_events {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        evs.push(ev);
    }

    /// Point event at `ts_ps` on track `tid`.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<Name>,
        ts_ps: u64,
        tid: u32,
        arg: i64,
    ) {
        if !self.events_on {
            return;
        }
        self.push(Event {
            ts_ps,
            dur_ps: 0,
            ph: Phase::Instant,
            tid,
            cat,
            name: name.into(),
            arg,
        });
    }

    /// Complete event spanning `[start_ps, end_ps]` on track `tid`.
    pub fn span(
        &self,
        cat: &'static str,
        name: impl Into<Name>,
        start_ps: u64,
        end_ps: u64,
        tid: u32,
        arg: i64,
    ) {
        if !self.events_on {
            return;
        }
        self.push(Event {
            ts_ps: start_ps,
            dur_ps: end_ps.saturating_sub(start_ps),
            ph: Phase::Span,
            tid,
            cat,
            name: name.into(),
            arg,
        });
    }

    /// Sampled counter-track value (renders as a filled graph in
    /// Perfetto). Also folds into the metrics gauge of the same name.
    pub fn counter_sample(&self, name: &'static str, ts_ps: u64, value: i64) {
        if self.events_on {
            self.push(Event {
                ts_ps,
                dur_ps: 0,
                ph: Phase::Counter,
                tid: 0,
                cat: "counter",
                name: Cow::Borrowed(name),
                arg: value,
            });
        }
        self.gauge(name, value);
    }

    /// Bump a monotonic counter.
    pub fn add(&self, name: impl Into<Name>, delta: u64) {
        if !self.metrics_on {
            return;
        }
        *self.counters.borrow_mut().entry(name.into()).or_insert(0) += delta;
    }

    /// Record a gauge observation (keeps last and max).
    pub fn gauge(&self, name: impl Into<Name>, value: i64) {
        if !self.metrics_on {
            return;
        }
        self.gauges
            .borrow_mut()
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// Record a histogram observation (count/sum/min/max).
    pub fn observe(&self, name: impl Into<Name>, value: u64) {
        if !self.metrics_on {
            return;
        }
        self.hists
            .borrow_mut()
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// Current value of a monotonic counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Snapshot the metrics registry.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            label: self.label(),
            seed: self.seed,
            counters: self.counters.borrow().clone(),
            gauges: self.gauges.borrow().clone(),
            hists: self.hists.borrow().clone(),
            dropped_events: self.dropped.get(),
        }
    }

    /// One-line digest of the largest counters — the deadlock report
    /// appends this so a stuck sweep point ships its telemetry with
    /// the panic message.
    pub fn counter_digest(&self, max_entries: usize) -> String {
        let counters = self.counters.borrow();
        let mut items: Vec<(&Name, &u64)> = counters.iter().collect();
        items.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let mut s = String::new();
        for (i, (k, v)) in items.iter().take(max_entries).enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{k}={v}"));
        }
        s
    }

    /// Events recorded so far (for tests; sinks use the collector).
    pub fn event_count(&self) -> usize {
        self.events.borrow().len()
    }
    pub fn dropped_events(&self) -> u64 {
        self.dropped.get()
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        let has_events = !self.events.borrow().is_empty();
        let has_metrics = !self.counters.borrow().is_empty()
            || !self.gauges.borrow().is_empty()
            || !self.hists.borrow().is_empty();
        if !has_events && !has_metrics {
            return;
        }
        let mut events = std::mem::take(&mut *self.events.borrow_mut());
        // Chrome viewers tolerate any order, but the acceptance
        // contract (and diffability) wants monotone timestamps.
        events.sort_by_key(|e| (e.ts_ps, e.tid));
        collector().lock().unwrap().push(FinishedTrace {
            summary: self.summary(),
            events,
        });
    }
}

/// Everything one finished simulation contributed to the sinks.
pub struct FinishedTrace {
    pub summary: MetricsSummary,
    pub events: Vec<Event>,
}

fn collector() -> &'static Mutex<Vec<FinishedTrace>> {
    static COLLECTOR: OnceLock<Mutex<Vec<FinishedTrace>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drain every finished trace submitted since the last drain, in a
/// deterministic order (sorted by label then seed — sweep workers
/// finish in a scheduler-dependent order, the sinks must not).
pub fn drain() -> Vec<FinishedTrace> {
    let mut traces = std::mem::take(&mut *collector().lock().unwrap());
    traces.sort_by(|a, b| {
        (a.summary.label.as_str(), a.summary.seed).cmp(&(b.summary.label.as_str(), b.summary.seed))
    });
    traces
}

/// Paths written by one [`flush`] call.
#[derive(Debug, Default)]
pub struct FlushedFiles {
    pub trace_json: Option<PathBuf>,
    pub metrics_json: Option<PathBuf>,
    pub metrics_csv: Option<PathBuf>,
}

/// Drain the collector and write the sinks for run `label`:
/// `<label>.trace.json` (when any events were recorded) plus
/// `<label>.metrics.json` / `<label>.metrics.csv` (when any metrics
/// were). Returns `None` when nothing was collected — which is the
/// every-day case of tracing disabled, so drivers call this
/// unconditionally.
pub fn flush(label: &str) -> Option<FlushedFiles> {
    let traces = drain();
    if traces.is_empty() {
        return None;
    }
    let dir = config().dir.unwrap_or_else(|| PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let mut out = FlushedFiles::default();
    if traces.iter().any(|t| !t.events.is_empty()) {
        let p = dir.join(format!("{label}.trace.json"));
        if chrome::write_chrome_trace(&p, &traces).is_ok() {
            out.trace_json = Some(p);
        }
    }
    let summaries: Vec<&MetricsSummary> = traces.iter().map(|t| &t.summary).collect();
    if summaries.iter().any(|s| !s.is_empty()) {
        let pj = dir.join(format!("{label}.metrics.json"));
        if metrics::write_metrics_json(&pj, label, &summaries).is_ok() {
            out.metrics_json = Some(pj);
        }
        let pc = dir.join(format!("{label}.metrics.csv"));
        if metrics::write_metrics_csv(&pc, &summaries).is_ok() {
            out.metrics_csv = Some(pc);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_builds_no_tracer() {
        // Env vars are unset in the test harness; override must win.
        set_override(Some(TraceConfig::default()));
        assert!(Tracer::from_config(1).is_none());
        set_override(None);
    }

    #[test]
    fn forced_tracer_records_events_and_counters() {
        let t = Tracer::forced(7);
        t.instant("test", "marker", 100, 0, 0);
        t.span("test", "work", 100, 400, 1, 64);
        t.add("test.count", 2);
        t.add("test.count", 3);
        t.gauge("test.depth", 5);
        t.gauge("test.depth", 2);
        t.observe("test.size", 10);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.counter("test.count"), 5);
        let s = t.summary();
        assert_eq!(s.gauges["test.depth"].max, 5);
        assert_eq!(s.gauges["test.depth"].last, 2);
        assert_eq!(s.hists["test.size"].count, 1);
    }

    #[test]
    fn event_cap_counts_drops() {
        let t = Tracer {
            events_on: true,
            metrics_on: false,
            max_events: 3,
            seed: 0,
            label: RefCell::new("cap".into()),
            events: RefCell::new(Vec::new()),
            dropped: Cell::new(0),
            counters: RefCell::new(BTreeMap::new()),
            gauges: RefCell::new(BTreeMap::new()),
            hists: RefCell::new(BTreeMap::new()),
        };
        for i in 0..10 {
            t.instant("test", "e", i, 0, 0);
        }
        assert_eq!(t.event_count(), 3);
        assert_eq!(t.dropped_events(), 7);
    }

    #[test]
    fn counter_digest_ranks_by_value() {
        let t = Tracer::forced(0);
        t.add("small", 1);
        t.add("big", 100);
        t.add("mid", 10);
        assert_eq!(t.counter_digest(2), "big=100, mid=10");
    }

    #[test]
    fn drop_submits_to_collector_and_drain_sorts() {
        // Use distinctive labels so concurrent tests don't interfere.
        let t1 = Tracer::forced(2);
        t1.set_label("zzz-drain-test");
        t1.add("x", 1);
        drop(t1);
        let t2 = Tracer::forced(1);
        t2.set_label("zzz-drain-test");
        t2.add("x", 1);
        drop(t2);
        let drained = drain();
        let ours: Vec<u64> = drained
            .iter()
            .filter(|t| t.summary.label == "zzz-drain-test")
            .map(|t| t.summary.seed)
            .collect();
        assert_eq!(ours, vec![1, 2], "drain must sort by (label, seed)");
        // Put back what we stole from other concurrently-running tests.
        let mut keep: Vec<FinishedTrace> = drained
            .into_iter()
            .filter(|t| t.summary.label != "zzz-drain-test")
            .collect();
        collector().lock().unwrap().append(&mut keep);
    }
}
