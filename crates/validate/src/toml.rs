//! Minimal TOML subset parser for the expectation files.
//!
//! The expectation DSL deliberately uses only a small slice of TOML so
//! this crate can stay dependency-free:
//!
//! * `#` comments and blank lines
//! * top-level `key = value` pairs
//! * `[[expect]]` array-of-tables headers (each starts a new block)
//! * values: double-quoted strings (with `\"` and `\\` escapes),
//!   numbers (integer, float, scientific), booleans, and flat arrays
//!   of numbers or strings
//!
//! Anything outside that subset — nested tables, inline tables, dotted
//! keys, multi-line strings — is a parse error with the line number,
//! which is the behaviour we want: an expectation file that needs more
//! syntax than this probably encodes something the DSL should express
//! directly instead.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Arr(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// One `key = value` table: the top-level header or one `[[expect]]`
/// block. Keys are unique; a duplicate is a parse error.
pub type Table = BTreeMap<String, Value>;

/// A parsed expectation document: the top-level keys plus the ordered
/// `[[expect]]` blocks, each tagged with the line its header sits on
/// (for error messages).
#[derive(Debug, Default)]
pub struct Doc {
    pub top: Table,
    pub expects: Vec<(usize, Table)>,
}

/// Parse an expectation document. `name` labels error messages.
pub fn parse(name: &str, text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    // None = still filling the top-level table.
    let mut current: Option<(usize, Table)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("[[") {
            if line != "[[expect]]" {
                return Err(format!(
                    "{name}:{lineno}: only [[expect]] blocks are supported, got `{line}`"
                ));
            }
            if let Some(block) = current.take() {
                doc.expects.push(block);
            }
            current = Some((lineno, Table::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{name}:{lineno}: named tables are not supported (use [[expect]] blocks)"
            ));
        }
        let (key, value) = parse_kv(name, lineno, line)?;
        let table = match &mut current {
            Some((_, t)) => t,
            None => &mut doc.top,
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(format!("{name}:{lineno}: duplicate key `{key}`"));
        }
    }
    if let Some(block) = current.take() {
        doc.expects.push(block);
    }
    Ok(doc)
}

/// Strip a trailing `#` comment, honouring quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_kv(name: &str, lineno: usize, line: &str) -> Result<(String, Value), String> {
    let Some(eq) = line.find('=') else {
        return Err(format!(
            "{name}:{lineno}: expected `key = value`, got `{line}`"
        ));
    };
    let key = line[..eq].trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!("{name}:{lineno}: invalid key `{key}`"));
    }
    let value = parse_value(name, lineno, line[eq + 1..].trim())?;
    Ok((key.to_string(), value))
}

fn parse_value(name: &str, lineno: usize, text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err(format!("{name}:{lineno}: missing value"));
    }
    if text.starts_with('"') {
        return parse_string(name, lineno, text).map(Value::Str);
    }
    if text.starts_with('[') {
        return parse_array(name, lineno, text);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML permits `1_000`; the underscore strip keeps that working.
    let numeric = text.replace('_', "");
    numeric
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("{name}:{lineno}: cannot parse value `{text}`"))
}

fn parse_string(name: &str, lineno: usize, text: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = text[1..].chars();
    loop {
        match chars.next() {
            None => return Err(format!("{name}:{lineno}: unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(format!(
                        "{name}:{lineno}: unsupported escape `\\{}`",
                        other.map(String::from).unwrap_or_default()
                    ))
                }
            },
            Some(c) => out.push(c),
        }
    }
    let rest: String = chars.collect();
    if !rest.trim().is_empty() {
        return Err(format!(
            "{name}:{lineno}: trailing garbage after string: `{}`",
            rest.trim()
        ));
    }
    Ok(out)
}

fn parse_array(name: &str, lineno: usize, text: &str) -> Result<Value, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("{name}:{lineno}: unterminated array"))?;
    let mut items = Vec::new();
    for part in split_array_items(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let v = parse_value(name, lineno, part)?;
        if matches!(v, Value::Arr(_)) {
            return Err(format!("{name}:{lineno}: nested arrays are not supported"));
        }
        items.push(v);
    }
    Ok(Value::Arr(items))
}

/// Split array items on commas outside quoted strings.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in inner.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_top_level_and_blocks() {
        let doc = parse(
            "t.toml",
            r#"
# header comment
exhibit = "Figure 1(a)"   # trailing comment
file = "fig1a.csv"

[[expect]]
kind = "wins"
min_factor = 2.0
range = [0, 1024]

[[expect]]
kind = "monotonic"
strict = false
"#,
        )
        .unwrap();
        assert_eq!(doc.top["exhibit"].as_str(), Some("Figure 1(a)"));
        assert_eq!(doc.expects.len(), 2);
        assert_eq!(doc.expects[0].1["min_factor"].as_num(), Some(2.0));
        assert_eq!(
            doc.expects[0].1["range"],
            Value::Arr(vec![Value::Num(0.0), Value::Num(1024.0)])
        );
        assert_eq!(doc.expects[1].1["strict"], Value::Bool(false));
    }

    #[test]
    fn string_escapes_and_hash_in_string() {
        let doc = parse("t.toml", r##"s = "a # not a comment \"q\" \\" "##).unwrap();
        assert_eq!(doc.top["s"].as_str(), Some(r##"a # not a comment "q" \"##));
    }

    #[test]
    fn rejects_unknown_table_headers() {
        let err = parse("t.toml", "[expect]\nk = 1\n").unwrap_err();
        assert!(err.contains("t.toml:1"), "{err}");
        let err = parse("t.toml", "[[other]]\n").unwrap_err();
        assert!(err.contains("only [[expect]]"), "{err}");
    }

    #[test]
    fn rejects_duplicate_keys_and_bad_values() {
        let err = parse("t.toml", "a = 1\na = 2\n").unwrap_err();
        assert!(err.contains("duplicate key `a`"), "{err}");
        let err = parse("t.toml", "a = nope\n").unwrap_err();
        assert!(err.contains("cannot parse value"), "{err}");
        let err = parse("t.toml", "a = \"unterminated\n").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
    }

    #[test]
    fn scientific_and_underscored_numbers() {
        let doc = parse("t.toml", "a = 1e-3\nb = 1_000\nc = -2.5\n").unwrap();
        assert_eq!(doc.top["a"].as_num(), Some(1e-3));
        assert_eq!(doc.top["b"].as_num(), Some(1000.0));
        assert_eq!(doc.top["c"].as_num(), Some(-2.5));
    }

    #[test]
    fn array_of_strings_with_commas_in_quotes() {
        let doc = parse("t.toml", r#"a = ["x,y", "z"]"#).unwrap();
        assert_eq!(
            doc.top["a"],
            Value::Arr(vec![Value::Str("x,y".into()), Value::Str("z".into())])
        );
    }
}
