//! Parser for the exhibit CSVs under `results/`.
//!
//! The exhibit writer (`elanib_core::TextTable::to_csv`) emits a header
//! row plus data rows, quoting any cell containing a comma or a quote
//! (doubling embedded quotes, RFC 4180 style). Cells are kept as raw
//! strings; [`Table::num`] parses on demand so non-numeric sentinel
//! cells (`QP-ERR`, `-`) stay representable — the fault exhibits use
//! them deliberately.

use std::path::Path;

/// A parsed CSV table: the header and the raw cell grid.
#[derive(Debug, Clone)]
pub struct Table {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Load and parse a CSV file.
    pub fn load(path: &Path) -> Result<Table, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
        Table::parse(&text)
    }

    /// Parse CSV text. Every data row must have exactly as many cells
    /// as the header — a ragged row means the file is corrupt.
    pub fn parse(text: &str) -> Result<Table, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty CSV")?;
        let columns = split_row(header);
        if columns.is_empty() {
            return Err("empty CSV header".into());
        }
        let mut rows = Vec::new();
        for (lineno, line) in lines {
            if line.is_empty() {
                continue;
            }
            let cells = split_row(line);
            if cells.len() != columns.len() {
                return Err(format!(
                    "row {} has {} cells, header has {}",
                    lineno + 1,
                    cells.len(),
                    columns.len()
                ));
            }
            rows.push(cells);
        }
        Ok(Table { columns, rows })
    }

    /// Index of a named column.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Cell text at (row, col).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Cell parsed as a number, if it is one.
    pub fn num(&self, row: usize, col: usize) -> Option<f64> {
        self.rows[row][col].trim().parse::<f64>().ok()
    }

    /// The key column (always the first): its value for `row`, parsed
    /// numerically when possible.
    pub fn key_num(&self, row: usize) -> Option<f64> {
        self.num(row, 0)
    }
}

/// Split one CSV line into cells, honouring RFC 4180 quoting.
fn split_row(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_quoted() {
        let t = Table::parse("a,b,c\n1,2.5,x\n\"q,uo\",\"he said \"\"hi\"\"\",3\n").unwrap();
        assert_eq!(t.columns, vec!["a", "b", "c"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(1, 0), "q,uo");
        assert_eq!(t.cell(1, 1), r#"he said "hi""#);
        assert_eq!(t.num(0, 1), Some(2.5));
        assert_eq!(t.num(0, 2), None);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Table::parse("a,b\n1\n").unwrap_err();
        assert!(err.contains("row 2 has 1 cells"), "{err}");
    }

    #[test]
    fn col_lookup() {
        let t = Table::parse("bytes,IB us,Elan us\n0,6.891,2.817\n").unwrap();
        assert_eq!(t.col("IB us"), Some(1));
        assert_eq!(t.col("nope"), None);
        assert_eq!(t.key_num(0), Some(0.0));
    }
}
