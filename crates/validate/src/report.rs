//! Conformance report: aggregation of every term's result, rendered as
//! a human summary table and as machine-readable JSON
//! (`conformance.json`). Both renderings are deterministic — files are
//! evaluated in sorted order and no timestamps are embedded — so a
//! report can itself be diffed between runs.

use crate::expect::Violation;

/// Result of one expectation term.
#[derive(Debug, Clone)]
pub struct TermResult {
    /// 0-based position of the `[[expect]]` block in its file.
    pub index: usize,
    pub kind: String,
    /// Human description of the claim, from [`crate::expect::Expectation::describe`].
    pub desc: String,
    /// CSV the term was evaluated against.
    pub file: String,
    /// Empty when the claim holds.
    pub violations: Vec<Violation>,
}

impl TermResult {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Result of one expectation file.
#[derive(Debug, Clone)]
pub struct FileResult {
    /// TOML file name, e.g. `fig1a.toml`.
    pub source: String,
    /// Paper exhibit id, e.g. `Figure 1(a)`.
    pub exhibit: String,
    pub terms: Vec<TermResult>,
}

impl FileResult {
    pub fn ok(&self) -> bool {
        self.terms.iter().all(TermResult::ok)
    }
    pub fn failed(&self) -> usize {
        self.terms.iter().filter(|t| !t.ok()).count()
    }
}

/// The full conformance report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files: Vec<FileResult>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.files.iter().all(FileResult::ok)
    }
    pub fn total_terms(&self) -> usize {
        self.files.iter().map(|f| f.terms.len()).sum()
    }
    pub fn failed_terms(&self) -> usize {
        self.files.iter().map(FileResult::failed).sum()
    }

    /// Human-readable report: one line per expectation file, then every
    /// violated term with its full violation messages. Never truncated:
    /// the whole point is to show the complete blast radius at once.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .files
            .iter()
            .map(|f| f.source.len())
            .max()
            .unwrap_or(0)
            .max("expectations".len());
        out.push_str(&format!(
            "{:<width$}  {:<14} {:>5}  {}\n",
            "expectations", "exhibit", "terms", "status"
        ));
        for f in &self.files {
            let status = if f.ok() {
                "ok".to_string()
            } else {
                format!("FAIL ({}/{} terms)", f.failed(), f.terms.len())
            };
            out.push_str(&format!(
                "{:<width$}  {:<14} {:>5}  {}\n",
                f.source,
                f.exhibit,
                f.terms.len(),
                status
            ));
        }
        for f in &self.files {
            for t in &f.terms {
                if t.ok() {
                    continue;
                }
                out.push_str(&format!(
                    "\nVIOLATED {} [[expect]] #{} ({} on {}):\n  claim: {}\n",
                    f.source,
                    t.index + 1,
                    t.kind,
                    t.file,
                    t.desc
                ));
                for v in &t.violations {
                    out.push_str(&format!("  - {}\n", v.message));
                }
            }
        }
        out.push_str(&format!(
            "\nconformance: {}/{} terms hold across {} expectation files\n",
            self.total_terms() - self.failed_terms(),
            self.total_terms(),
            self.files.len()
        ));
        out
    }

    /// Machine-readable rendering (the `conformance.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"pass\": {},\n", self.ok()));
        out.push_str(&format!("  \"files\": {},\n", self.files.len()));
        out.push_str(&format!("  \"terms\": {},\n", self.total_terms()));
        out.push_str(&format!("  \"failed_terms\": {},\n", self.failed_terms()));
        out.push_str("  \"exhibits\": [\n");
        for (i, f) in self.files.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"source\": \"{}\", \"exhibit\": \"{}\", \"pass\": {}, \"terms\": [\n",
                escape(&f.source),
                escape(&f.exhibit),
                f.ok()
            ));
            for (j, t) in f.terms.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"index\": {}, \"kind\": \"{}\", \"file\": \"{}\", \"desc\": \"{}\", \"pass\": {}, \"violations\": [{}]}}{}\n",
                    t.index,
                    escape(&t.kind),
                    escape(&t.file),
                    escape(&t.desc),
                    t.ok(),
                    t.violations
                        .iter()
                        .map(|v| format!("\"{}\"", escape(&v.message)))
                        .collect::<Vec<_>>()
                        .join(", "),
                    if j + 1 < f.terms.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.files.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escape (the only non-trivial characters our
/// messages can contain are quotes and backslashes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files: vec![FileResult {
                source: "fig9.toml".into(),
                exhibit: "Figure 9".into(),
                terms: vec![
                    TermResult {
                        index: 0,
                        kind: "wins".into(),
                        desc: "a beats b".into(),
                        file: "fig9.csv".into(),
                        violations: vec![],
                    },
                    TermResult {
                        index: 1,
                        kind: "bound".into(),
                        desc: "c bounded".into(),
                        file: "fig9.csv".into(),
                        violations: vec![Violation::new("row `1`: out of bounds")],
                    },
                ],
            }],
        }
    }

    #[test]
    fn counts_and_text() {
        let r = sample();
        assert!(!r.ok());
        assert_eq!(r.total_terms(), 2);
        assert_eq!(r.failed_terms(), 1);
        let text = r.render_text();
        assert!(text.contains("FAIL (1/2 terms)"), "{text}");
        assert!(text.contains("VIOLATED fig9.toml [[expect]] #2"), "{text}");
        assert!(text.contains("1/2 terms hold"), "{text}");
    }

    #[test]
    fn json_is_parseable_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"pass\": false"), "{j}");
        assert!(j.contains("\"failed_terms\": 1"), "{j}");
        // Balanced braces/brackets as a cheap structural check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close} in {j}"
            );
        }
    }

    #[test]
    fn escape_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
