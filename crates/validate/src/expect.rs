//! The expectation DSL: declarative terms about the *shape* of an
//! exhibit table, each checkable against a parsed CSV.
//!
//! | kind            | claim it encodes |
//! |-----------------|------------------|
//! | `wins`          | one series beats another by at least a factor over a key range |
//! | `crossover`     | two series swap order near a given key |
//! | `monotonic`     | a series only rises (or only falls) over a key range |
//! | `within_factor` | a series stays within a factor of another series or a constant |
//! | `anomaly`       | a series jumps discontinuously at one key (superlinear spike, CG dive, eager/rendezvous dip) |
//! | `bound`         | selected values sit inside `[min, max]` |
//! | `row_count`     | the selection has between `min` and `max` rows |
//! | `cell`          | a selected text cell equals / contains a string (`QP-ERR`, platform rows) |
//!
//! Every term also takes the common row selectors `range = [lo, hi]`
//! (numeric key, first column), `row = "<key>"` (exact first-column
//! text), and `filter_col` / `filter_val` (exact match on any column,
//! numeric-aware). Selectors compose with AND; an empty selection is
//! itself a violation — an expectation that matches nothing is stale.
//!
//! Tolerances are mandatory where they are meaningful and validated at
//! parse time: a `crossover` with `tol = 0` or an `anomaly` with
//! `min_jump = 1` would assert floating-point luck, not paper shape,
//! and is rejected with an error naming the file and block.

use std::collections::BTreeSet;

use crate::csv::Table;
use crate::toml::{self, Value};

/// One failed check. The message is self-contained: it names the rows
/// and values that broke the claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub message: String,
}

impl Violation {
    pub fn new(message: impl Into<String>) -> Violation {
        Violation {
            message: message.into(),
        }
    }
}

/// Which direction is "better" for a `wins` term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    Lower,
    Higher,
}

/// Direction for `monotonic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Increasing,
    Decreasing,
}

/// Direction for `anomaly`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jump {
    Up,
    Down,
}

/// Reference value for `within_factor`.
#[derive(Debug, Clone, PartialEq)]
pub enum Of {
    Series(String),
    Value(f64),
}

/// Row selectors shared by every kind (all optional, ANDed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Select {
    /// Numeric key (first column) in `[lo, hi]`.
    pub range: Option<(f64, f64)>,
    /// Exact first-column text.
    pub row: Option<String>,
    /// Exact match on a named column (numeric-aware: `"0.01000"`
    /// matches `0.01`).
    pub filter: Option<(String, String)>,
}

impl Select {
    /// Indices of the rows this selection keeps, in table order.
    fn rows(&self, t: &Table) -> Result<Vec<usize>, Violation> {
        let filter_col = match &self.filter {
            Some((col, _)) => Some(t.col(col).ok_or_else(|| {
                Violation::new(format!("unknown filter column `{col}` (have: {})", cols(t)))
            })?),
            None => None,
        };
        let mut out = Vec::new();
        for r in 0..t.rows.len() {
            if let Some((lo, hi)) = self.range {
                match t.key_num(r) {
                    Some(k) if k >= lo && k <= hi => {}
                    _ => continue,
                }
            }
            if let Some(row) = &self.row {
                if t.cell(r, 0) != row {
                    continue;
                }
            }
            if let (Some(ci), Some((_, want))) = (filter_col, &self.filter) {
                if !cell_matches(t.cell(r, ci), want) {
                    continue;
                }
            }
            out.push(r);
        }
        if out.is_empty() {
            return Err(Violation::new(format!(
                "selection matched no rows ({})",
                self.describe_or("all rows")
            )));
        }
        Ok(out)
    }

    fn describe_or(&self, empty: &str) -> String {
        let mut parts = Vec::new();
        if let Some((lo, hi)) = self.range {
            parts.push(format!("key in [{lo}, {hi}]"));
        }
        if let Some(row) = &self.row {
            parts.push(format!("row `{row}`"));
        }
        if let Some((c, v)) = &self.filter {
            parts.push(format!("{c} = {v}"));
        }
        if parts.is_empty() {
            empty.to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// Exact-or-numeric cell match: `"0.01"` matches a `0.01000` cell.
fn cell_matches(cell: &str, want: &str) -> bool {
    if cell == want {
        return true;
    }
    match (cell.trim().parse::<f64>(), want.trim().parse::<f64>()) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    }
}

fn cols(t: &Table) -> String {
    t.columns
        .iter()
        .map(|c| format!("`{c}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One expectation term.
#[derive(Debug, Clone, PartialEq)]
pub enum Expectation {
    Wins {
        series: String,
        over: String,
        better: Better,
        min_factor: f64,
        select: Select,
    },
    Crossover {
        between: (String, String),
        near: f64,
        tol: f64,
        select: Select,
    },
    Monotonic {
        series: String,
        direction: Direction,
        strict: bool,
        /// Fractional slack on each step: an `increasing` series may
        /// dip to `prev * (1 - slack)` without violating. Defaults to
        /// 0 (exact monotonicity). Lets fuzz contracts say "completion
        /// must not *materially* improve under faults" while ignoring
        /// sub-percent event-ordering jitter.
        slack: f64,
        select: Select,
    },
    WithinFactor {
        series: String,
        of: Of,
        max_factor: f64,
        select: Select,
    },
    Anomaly {
        series: String,
        at: f64,
        jump: Jump,
        min_jump: f64,
        select: Select,
    },
    Bound {
        series: String,
        min: Option<f64>,
        max: Option<f64>,
        select: Select,
    },
    RowCount {
        min: Option<usize>,
        max: Option<usize>,
        select: Select,
    },
    Cell {
        series: String,
        equals: Option<String>,
        contains: Option<String>,
        select: Select,
    },
    /// A cross-cutting scenario invariant: `series` must equal another
    /// column (or a constant) **exactly**, row by row — no tolerance,
    /// no factor. This is the fuzzer's primitive: byte conservation is
    /// `sent == delivered`, determinism is `serial digest == sharded
    /// digest`, no-deadlock is `failures == 0`. Distinct from
    /// `within_factor` (which tolerates and requires positive values)
    /// because an invariant that "almost" holds is a bug.
    Invariant {
        /// Label naming the invariant in reports ("byte-conservation").
        name: String,
        series: String,
        of: Of,
        select: Select,
    },
}

/// A term plus its optional per-term CSV override.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    pub file: Option<String>,
    pub expectation: Expectation,
}

/// A parsed expectation file.
#[derive(Debug, Clone)]
pub struct ExpectFile {
    /// File name of the TOML source, for report labels.
    pub source: String,
    /// Paper exhibit id this file covers, e.g. `"Figure 1(a)"`.
    pub exhibit: String,
    /// Default CSV (relative to the results dir) for terms without an
    /// explicit `file`.
    pub default_file: String,
    pub terms: Vec<Term>,
}

impl ExpectFile {
    /// Parse from TOML text. `name` labels errors.
    pub fn parse(name: &str, text: &str) -> Result<ExpectFile, String> {
        let doc = toml::parse(name, text)?;
        let mut top_keys: BTreeSet<&str> = doc.top.keys().map(|k| k.as_str()).collect();
        let exhibit = req_str(name, "top level", &doc.top, "exhibit", &mut top_keys)?;
        let default_file = req_str(name, "top level", &doc.top, "file", &mut top_keys)?;
        // `title` is allowed as free-form documentation.
        top_keys.remove("title");
        if let Some(k) = top_keys.iter().next() {
            return Err(format!("{name}: unknown top-level key `{k}`"));
        }
        if doc.expects.is_empty() {
            return Err(format!("{name}: no [[expect]] blocks"));
        }
        let mut terms = Vec::with_capacity(doc.expects.len());
        for (i, (lineno, block)) in doc.expects.iter().enumerate() {
            let ctx = format!("{name}:{lineno} [[expect]] #{}", i + 1);
            terms.push(parse_term(&ctx, block)?);
        }
        Ok(ExpectFile {
            source: name.to_string(),
            exhibit,
            default_file,
            terms,
        })
    }
}

fn req_str(
    name: &str,
    ctx: &str,
    table: &toml::Table,
    key: &str,
    keys: &mut BTreeSet<&str>,
) -> Result<String, String> {
    keys.remove(key);
    match table.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(v) => Err(format!(
            "{name}: {ctx}: `{key}` must be a string, got {}",
            v.type_name()
        )),
        None => Err(format!("{name}: {ctx}: missing required key `{key}`")),
    }
}

/// Key-tracked accessor over one `[[expect]]` block: every key must be
/// consumed, so typos (`min_facto = 2`) fail parsing instead of
/// silently weakening the check.
struct Block<'a> {
    ctx: &'a str,
    table: &'a toml::Table,
    unused: BTreeSet<&'a str>,
}

impl<'a> Block<'a> {
    fn new(ctx: &'a str, table: &'a toml::Table) -> Block<'a> {
        Block {
            ctx,
            table,
            unused: table.keys().map(|k| k.as_str()).collect(),
        }
    }
    fn get(&mut self, key: &str) -> Option<&'a Value> {
        self.unused.remove(key);
        self.table.get(key)
    }
    fn str(&mut self, key: &str) -> Result<Option<String>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(v) => Err(format!(
                "{}: `{key}` must be a string, got {}",
                self.ctx,
                v.type_name()
            )),
        }
    }
    fn req_str(&mut self, key: &str) -> Result<String, String> {
        self.str(key)?
            .ok_or_else(|| format!("{}: missing required key `{key}`", self.ctx))
    }
    fn num(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Num(n)) => Ok(Some(*n)),
            Some(v) => Err(format!(
                "{}: `{key}` must be a number, got {}",
                self.ctx,
                v.type_name()
            )),
        }
    }
    fn req_num(&mut self, key: &str) -> Result<f64, String> {
        self.num(key)?
            .ok_or_else(|| format!("{}: missing required key `{key}`", self.ctx))
    }
    fn bool(&mut self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(Value::Bool(b)) => Ok(*b),
            Some(v) => Err(format!(
                "{}: `{key}` must be a boolean, got {}",
                self.ctx,
                v.type_name()
            )),
        }
    }
    fn count(&mut self, key: &str) -> Result<Option<usize>, String> {
        match self.num(key)? {
            None => Ok(None),
            Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(Some(n as usize)),
            Some(n) => Err(format!(
                "{}: `{key}` must be a non-negative integer, got {n}",
                self.ctx
            )),
        }
    }
    fn select(&mut self) -> Result<Select, String> {
        let range = match self.get("range") {
            None => None,
            Some(Value::Arr(items)) => {
                let nums: Option<Vec<f64>> = items.iter().map(|v| v.as_num()).collect();
                match nums.as_deref() {
                    Some([lo, hi]) if lo <= hi => Some((*lo, *hi)),
                    Some([lo, hi]) => {
                        return Err(format!(
                            "{}: bad range [{lo}, {hi}]: lower bound exceeds upper",
                            self.ctx
                        ))
                    }
                    _ => {
                        return Err(format!(
                            "{}: `range` must be [lo, hi] with two numbers",
                            self.ctx
                        ))
                    }
                }
            }
            Some(v) => {
                return Err(format!(
                    "{}: `range` must be an array, got {}",
                    self.ctx,
                    v.type_name()
                ))
            }
        };
        let row = self.str("row")?;
        let filter = match (self.str("filter_col")?, self.str("filter_val")?) {
            (Some(c), Some(v)) => Some((c, v)),
            (None, None) => None,
            _ => {
                return Err(format!(
                    "{}: `filter_col` and `filter_val` must be given together",
                    self.ctx
                ))
            }
        };
        Ok(Select { range, row, filter })
    }
    fn finish(self) -> Result<(), String> {
        if let Some(k) = self.unused.iter().next() {
            return Err(format!("{}: unknown key `{k}`", self.ctx));
        }
        Ok(())
    }
}

fn parse_term(ctx: &str, table: &toml::Table) -> Result<Term, String> {
    let mut b = Block::new(ctx, table);
    let kind = b.req_str("kind")?;
    let file = b.str("file")?;
    let select = b.select()?;
    let expectation = match kind.as_str() {
        "wins" => {
            let series = b.req_str("series")?;
            let over = b.req_str("over")?;
            let better = match b.req_str("better")?.as_str() {
                "lower" => Better::Lower,
                "higher" => Better::Higher,
                other => {
                    return Err(format!(
                        "{ctx}: `better` must be \"lower\" or \"higher\", got \"{other}\""
                    ))
                }
            };
            let min_factor = b.req_num("min_factor")?;
            if min_factor < 1.0 {
                return Err(format!(
                    "{ctx}: `min_factor` must be >= 1 (a win by less than 1x is a loss), got {min_factor}"
                ));
            }
            Expectation::Wins {
                series,
                over,
                better,
                min_factor,
                select,
            }
        }
        "crossover" => {
            let between = match b.get("between") {
                Some(Value::Arr(items)) => {
                    let strs: Option<Vec<&str>> = items.iter().map(|v| v.as_str()).collect();
                    match strs.as_deref() {
                        Some([a, c]) => (a.to_string(), c.to_string()),
                        _ => {
                            return Err(format!(
                                "{ctx}: `between` must be an array of two series names"
                            ))
                        }
                    }
                }
                _ => {
                    return Err(format!(
                        "{ctx}: missing required key `between` (array of two series names)"
                    ))
                }
            };
            let near = b.req_num("near")?;
            let tol = b.req_num("tol")?;
            if tol <= 0.0 {
                return Err(format!(
                    "{ctx}: `tol` must be > 0 (zero tolerance asserts floating-point luck, not paper shape), got {tol}"
                ));
            }
            Expectation::Crossover {
                between,
                near,
                tol,
                select,
            }
        }
        "monotonic" => {
            let series = b.req_str("series")?;
            let direction = match b.req_str("direction")?.as_str() {
                "increasing" => Direction::Increasing,
                "decreasing" => Direction::Decreasing,
                other => {
                    return Err(format!(
                    "{ctx}: `direction` must be \"increasing\" or \"decreasing\", got \"{other}\""
                ))
                }
            };
            let strict = b.bool("strict", false)?;
            let slack = b.num("slack")?.unwrap_or(0.0);
            if slack < 0.0 {
                return Err(format!("{ctx}: `slack` must be >= 0, got {slack}"));
            }
            if strict && slack > 0.0 {
                return Err(format!(
                    "{ctx}: `strict` and `slack` are mutually exclusive \
                     (a strict step with slack is not strict)"
                ));
            }
            Expectation::Monotonic {
                series,
                direction,
                strict,
                slack,
                select,
            }
        }
        "within_factor" => {
            let series = b.req_str("series")?;
            let of = match (b.str("of")?, b.num("value")?) {
                (Some(s), None) => Of::Series(s),
                (None, Some(v)) => Of::Value(v),
                _ => {
                    return Err(format!(
                        "{ctx}: exactly one of `of` (series) or `value` (number) is required"
                    ))
                }
            };
            let max_factor = b.req_num("max_factor")?;
            if max_factor < 1.0 {
                return Err(format!(
                    "{ctx}: `max_factor` must be >= 1, got {max_factor}"
                ));
            }
            Expectation::WithinFactor {
                series,
                of,
                max_factor,
                select,
            }
        }
        "anomaly" => {
            let series = b.req_str("series")?;
            let at = b.req_num("at")?;
            let jump = match b.req_str("direction")?.as_str() {
                "up" => Jump::Up,
                "down" => Jump::Down,
                other => {
                    return Err(format!(
                        "{ctx}: `direction` must be \"up\" or \"down\", got \"{other}\""
                    ))
                }
            };
            let min_jump = b.req_num("min_jump")?;
            if min_jump <= 1.0 {
                return Err(format!(
                    "{ctx}: `min_jump` must be > 1 (a jump of 1x is no anomaly), got {min_jump}"
                ));
            }
            Expectation::Anomaly {
                series,
                at,
                jump,
                min_jump,
                select,
            }
        }
        "bound" => {
            let series = b.req_str("series")?;
            let min = b.num("min")?;
            let max = b.num("max")?;
            match (min, max) {
                (None, None) => return Err(format!("{ctx}: `bound` needs `min`, `max`, or both")),
                (Some(lo), Some(hi)) if lo > hi => {
                    return Err(format!("{ctx}: bound min {lo} exceeds max {hi}"))
                }
                _ => {}
            }
            Expectation::Bound {
                series,
                min,
                max,
                select,
            }
        }
        "row_count" => {
            let min = b.count("min")?;
            let max = b.count("max")?;
            if min.is_none() && max.is_none() {
                return Err(format!("{ctx}: `row_count` needs `min`, `max`, or both"));
            }
            if let (Some(lo), Some(hi)) = (min, max) {
                if lo > hi {
                    return Err(format!("{ctx}: row_count min {lo} exceeds max {hi}"));
                }
            }
            Expectation::RowCount { min, max, select }
        }
        "cell" => {
            let series = b.req_str("series")?;
            let equals = b.str("equals")?;
            let contains = b.str("contains")?;
            if equals.is_some() == contains.is_some() {
                return Err(format!(
                    "{ctx}: `cell` needs exactly one of `equals` or `contains`"
                ));
            }
            Expectation::Cell {
                series,
                equals,
                contains,
                select,
            }
        }
        "invariant" => {
            let name = b.req_str("name")?;
            let series = b.req_str("series")?;
            let of = match (b.str("of")?, b.num("value")?) {
                (Some(s), None) => Of::Series(s),
                (None, Some(v)) => Of::Value(v),
                _ => {
                    return Err(format!(
                        "{ctx}: exactly one of `of` (series) or `value` (number) is required"
                    ))
                }
            };
            Expectation::Invariant {
                name,
                series,
                of,
                select,
            }
        }
        other => {
            return Err(format!(
                "{ctx}: unknown kind `{other}` (expected wins, crossover, monotonic, \
                 within_factor, anomaly, bound, row_count, cell, or invariant)"
            ))
        }
    };
    b.finish()?;
    Ok(Term { file, expectation })
}

impl Expectation {
    pub fn kind_name(&self) -> &'static str {
        match self {
            Expectation::Wins { .. } => "wins",
            Expectation::Crossover { .. } => "crossover",
            Expectation::Monotonic { .. } => "monotonic",
            Expectation::WithinFactor { .. } => "within_factor",
            Expectation::Anomaly { .. } => "anomaly",
            Expectation::Bound { .. } => "bound",
            Expectation::RowCount { .. } => "row_count",
            Expectation::Cell { .. } => "cell",
            Expectation::Invariant { .. } => "invariant",
        }
    }

    fn select(&self) -> &Select {
        match self {
            Expectation::Wins { select, .. }
            | Expectation::Crossover { select, .. }
            | Expectation::Monotonic { select, .. }
            | Expectation::WithinFactor { select, .. }
            | Expectation::Anomaly { select, .. }
            | Expectation::Bound { select, .. }
            | Expectation::RowCount { select, .. }
            | Expectation::Cell { select, .. }
            | Expectation::Invariant { select, .. } => select,
        }
    }

    /// One-line human description for reports.
    pub fn describe(&self) -> String {
        let sel = self.select().describe_or("all rows");
        match self {
            Expectation::Wins {
                series,
                over,
                better,
                min_factor,
                ..
            } => format!(
                "`{series}` beats `{over}` ({} is better) by >= {min_factor}x on {sel}",
                match better {
                    Better::Lower => "lower",
                    Better::Higher => "higher",
                }
            ),
            Expectation::Crossover {
                between: (a, c),
                near,
                tol,
                ..
            } => format!("`{a}` and `{c}` cross near key {near} (+/- {tol}) on {sel}"),
            Expectation::Monotonic {
                series,
                direction,
                strict,
                slack,
                ..
            } => format!(
                "`{series}` is {}{}{} on {sel}",
                if *strict { "strictly " } else { "" },
                match direction {
                    Direction::Increasing => "increasing",
                    Direction::Decreasing => "decreasing",
                },
                if *slack > 0.0 {
                    format!(" (slack {slack})")
                } else {
                    String::new()
                }
            ),
            Expectation::WithinFactor {
                series,
                of,
                max_factor,
                ..
            } => match of {
                Of::Series(o) => {
                    format!("`{series}` within {max_factor}x of `{o}` on {sel}")
                }
                Of::Value(v) => format!("`{series}` within {max_factor}x of {v} on {sel}"),
            },
            Expectation::Anomaly {
                series,
                at,
                jump,
                min_jump,
                ..
            } => format!(
                "`{series}` jumps {} by >= {min_jump}x at key {at} on {sel}",
                match jump {
                    Jump::Up => "up",
                    Jump::Down => "down",
                }
            ),
            Expectation::Bound {
                series, min, max, ..
            } => {
                let lo = min.map(|v| format!("{v} <= ")).unwrap_or_default();
                let hi = max.map(|v| format!(" <= {v}")).unwrap_or_default();
                format!("{lo}`{series}`{hi} on {sel}")
            }
            Expectation::RowCount { min, max, .. } => {
                let lo = min.map(|v| format!("{v} <= ")).unwrap_or_default();
                let hi = max.map(|v| format!(" <= {v}")).unwrap_or_default();
                format!("{lo}row count{hi} on {sel}")
            }
            Expectation::Cell {
                series,
                equals,
                contains,
                ..
            } => match (equals, contains) {
                (Some(e), _) => format!("`{series}` == \"{e}\" on {sel}"),
                (_, Some(c)) => format!("`{series}` contains \"{c}\" on {sel}"),
                _ => unreachable!("parser enforces equals xor contains"),
            },
            Expectation::Invariant {
                name, series, of, ..
            } => match of {
                Of::Series(o) => {
                    format!("invariant `{name}`: `{series}` == `{o}` exactly on {sel}")
                }
                Of::Value(v) => {
                    format!("invariant `{name}`: `{series}` == {v} exactly on {sel}")
                }
            },
        }
    }

    /// Evaluate against a table. Empty = the claim holds.
    pub fn check(&self, t: &Table) -> Vec<Violation> {
        let rows = match self.select().rows(t) {
            Ok(r) => r,
            Err(v) => return vec![v],
        };
        match self {
            Expectation::Wins {
                series,
                over,
                better,
                min_factor,
                ..
            } => check_wins(t, &rows, series, over, *better, *min_factor),
            Expectation::Crossover {
                between, near, tol, ..
            } => check_crossover(t, &rows, between, *near, *tol),
            Expectation::Monotonic {
                series,
                direction,
                strict,
                slack,
                ..
            } => check_monotonic(t, &rows, series, *direction, *strict, *slack),
            Expectation::WithinFactor {
                series,
                of,
                max_factor,
                ..
            } => check_within(t, &rows, series, of, *max_factor),
            Expectation::Anomaly {
                series,
                at,
                jump,
                min_jump,
                ..
            } => check_anomaly(t, &rows, series, *at, *jump, *min_jump),
            Expectation::Bound {
                series, min, max, ..
            } => check_bound(t, &rows, series, *min, *max),
            Expectation::RowCount { min, max, .. } => check_row_count(&rows, *min, *max),
            Expectation::Cell {
                series,
                equals,
                contains,
                ..
            } => check_cell(t, &rows, series, equals.as_deref(), contains.as_deref()),
            Expectation::Invariant {
                name, series, of, ..
            } => check_invariant(t, &rows, name, series, of),
        }
    }
}

/// Exact per-row equality: the invariant kind's engine. Non-numeric
/// and NaN cells are violations in their own right — an invariant that
/// cannot be evaluated has already failed.
fn check_invariant(t: &Table, rows: &[usize], name: &str, series: &str, of: &Of) -> Vec<Violation> {
    let mut out = Vec::new();
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let oc = match of {
        Of::Series(o) => match series_col(t, o) {
            Ok(c) => Some(c),
            Err(v) => return vec![v],
        },
        Of::Value(_) => None,
    };
    for &r in rows {
        let a = match numeric(t, r, sc) {
            Ok(v) => v,
            Err(v) => {
                out.push(v);
                continue;
            }
        };
        let b = match (of, oc) {
            (Of::Value(v), _) => *v,
            (Of::Series(_), Some(c)) => match numeric(t, r, c) {
                Ok(v) => v,
                Err(v) => {
                    out.push(v);
                    continue;
                }
            },
            _ => unreachable!(),
        };
        // Exact comparison on purpose; NaN on either side violates
        // (NaN != anything, including itself).
        if a != b {
            out.push(Violation::new(format!(
                "invariant `{name}` broken at row `{}`: `{series}` = {a} but expected {b}",
                t.cell(r, 0)
            )));
        }
    }
    out
}

/// Column lookup as a violation (the satellite "unknown series" case).
fn series_col(t: &Table, series: &str) -> Result<usize, Violation> {
    t.col(series)
        .ok_or_else(|| Violation::new(format!("unknown series `{series}` (have: {})", cols(t))))
}

/// Numeric cell or a violation naming the row and the offending text.
fn numeric(t: &Table, row: usize, col: usize) -> Result<f64, Violation> {
    t.num(row, col).ok_or_else(|| {
        Violation::new(format!(
            "row `{}`: cell `{}` in column `{}` is not numeric",
            t.cell(row, 0),
            t.cell(row, col),
            t.columns[col]
        ))
    })
}

fn check_wins(
    t: &Table,
    rows: &[usize],
    series: &str,
    over: &str,
    better: Better,
    min_factor: f64,
) -> Vec<Violation> {
    let (sc, oc) = match (series_col(t, series), series_col(t, over)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => return [a.err(), b.err()].into_iter().flatten().collect(),
    };
    let mut out = Vec::new();
    for &r in rows {
        let (a, b) = match (numeric(t, r, sc), numeric(t, r, oc)) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                out.extend([a.err(), b.err()].into_iter().flatten());
                continue;
            }
        };
        let factor = match better {
            Better::Lower => b / a,
            Better::Higher => a / b,
        };
        // NaN (e.g. 0/0) must count as a violation, not a silent pass.
        if factor.is_nan() || factor < min_factor {
            out.push(Violation::new(format!(
                "row `{}`: `{series}` = {a} vs `{over}` = {b} -> factor {factor:.3} < required {min_factor}",
                t.cell(r, 0)
            )));
        }
    }
    out
}

fn check_crossover(
    t: &Table,
    rows: &[usize],
    between: &(String, String),
    near: f64,
    tol: f64,
) -> Vec<Violation> {
    let (ac, bc) = match (series_col(t, &between.0), series_col(t, &between.1)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => return [a.err(), b.err()].into_iter().flatten().collect(),
    };
    let mut prev_sign: Option<f64> = None;
    for &r in rows {
        let (a, b) = match (numeric(t, r, ac), numeric(t, r, bc)) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => return [a.err(), b.err()].into_iter().flatten().collect(),
        };
        let d = a - b;
        let sign = if d == 0.0 { 0.0 } else { d.signum() };
        if let Some(p) = prev_sign {
            if sign != 0.0 && p != 0.0 && sign != p {
                // First sign change: the crossover key is this row's.
                let key = match t.key_num(r) {
                    Some(k) => k,
                    None => {
                        return vec![Violation::new(format!(
                            "row `{}`: non-numeric key at the crossover",
                            t.cell(r, 0)
                        ))]
                    }
                };
                if (key - near).abs() > tol {
                    return vec![Violation::new(format!(
                        "first crossover of `{}` and `{}` is at key {key}, expected within {tol} of {near}",
                        between.0, between.1
                    ))];
                }
                return Vec::new();
            }
        }
        if sign != 0.0 {
            prev_sign = Some(sign);
        }
    }
    vec![Violation::new(format!(
        "`{}` and `{}` never cross (expected a crossover near key {near})",
        between.0, between.1
    ))]
}

fn check_monotonic(
    t: &Table,
    rows: &[usize],
    series: &str,
    direction: Direction,
    strict: bool,
    slack: f64,
) -> Vec<Violation> {
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let mut out = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    for &r in rows {
        let v = match numeric(t, r, sc) {
            Ok(v) => v,
            Err(e) => {
                out.push(e);
                continue;
            }
        };
        if let Some((pr, pv)) = prev {
            let give = pv.abs() * slack;
            let ok = match (direction, strict) {
                (Direction::Increasing, false) => v >= pv - give,
                (Direction::Increasing, true) => v > pv,
                (Direction::Decreasing, false) => v <= pv + give,
                (Direction::Decreasing, true) => v < pv,
            };
            if !ok {
                out.push(Violation::new(format!(
                    "`{series}` is not {}: {pv} at row `{}` -> {v} at row `{}`",
                    match direction {
                        Direction::Increasing => "increasing",
                        Direction::Decreasing => "decreasing",
                    },
                    t.cell(pr, 0),
                    t.cell(r, 0)
                )));
            }
        }
        prev = Some((r, v));
    }
    out
}

fn check_within(
    t: &Table,
    rows: &[usize],
    series: &str,
    of: &Of,
    max_factor: f64,
) -> Vec<Violation> {
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let oc = match of {
        Of::Series(o) => match series_col(t, o) {
            Ok(c) => Some(c),
            Err(v) => return vec![v],
        },
        Of::Value(_) => None,
    };
    let mut out = Vec::new();
    for &r in rows {
        let a = match numeric(t, r, sc) {
            Ok(v) => v,
            Err(e) => {
                out.push(e);
                continue;
            }
        };
        let b = match (of, oc) {
            (Of::Value(v), _) => *v,
            (_, Some(c)) => match numeric(t, r, c) {
                Ok(v) => v,
                Err(e) => {
                    out.push(e);
                    continue;
                }
            },
            _ => unreachable!(),
        };
        if a <= 0.0 || b <= 0.0 {
            out.push(Violation::new(format!(
                "row `{}`: within_factor needs positive values, got {a} and {b}",
                t.cell(r, 0)
            )));
            continue;
        }
        let ratio = (a / b).max(b / a);
        if ratio > max_factor {
            out.push(Violation::new(format!(
                "row `{}`: `{series}` = {a} is {ratio:.3}x away from {b}, allowed {max_factor}x",
                t.cell(r, 0)
            )));
        }
    }
    out
}

fn check_anomaly(
    t: &Table,
    rows: &[usize],
    series: &str,
    at: f64,
    jump: Jump,
    min_jump: f64,
) -> Vec<Violation> {
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let pos = rows.iter().position(|&r| t.key_num(r) == Some(at));
    let Some(pos) = pos else {
        return vec![Violation::new(format!(
            "no selected row has key {at} (anomaly site missing)"
        ))];
    };
    if pos == 0 {
        return vec![Violation::new(format!(
            "key {at} is the first selected row; an anomaly needs a preceding row to jump from"
        ))];
    }
    let (r_at, r_prev) = (rows[pos], rows[pos - 1]);
    let (v_at, v_prev) = match (numeric(t, r_at, sc), numeric(t, r_prev, sc)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => return [a.err(), b.err()].into_iter().flatten().collect(),
    };
    if v_prev <= 0.0 {
        return vec![Violation::new(format!(
            "row `{}`: anomaly baseline must be positive, got {v_prev}",
            t.cell(r_prev, 0)
        ))];
    }
    let ratio = v_at / v_prev;
    let ok = match jump {
        Jump::Up => ratio >= min_jump,
        Jump::Down => ratio <= 1.0 / min_jump,
    };
    if ok {
        Vec::new()
    } else {
        vec![Violation::new(format!(
            "`{series}` moves {v_prev} -> {v_at} at key {at} (ratio {ratio:.3}); expected a {} jump of >= {min_jump}x",
            match jump {
                Jump::Up => "upward",
                Jump::Down => "downward",
            }
        ))]
    }
}

fn check_bound(
    t: &Table,
    rows: &[usize],
    series: &str,
    min: Option<f64>,
    max: Option<f64>,
) -> Vec<Violation> {
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let mut out = Vec::new();
    for &r in rows {
        let v = match numeric(t, r, sc) {
            Ok(v) => v,
            Err(e) => {
                out.push(e);
                continue;
            }
        };
        if let Some(lo) = min {
            if v < lo {
                out.push(Violation::new(format!(
                    "row `{}`: `{series}` = {v} below minimum {lo}",
                    t.cell(r, 0)
                )));
            }
        }
        if let Some(hi) = max {
            if v > hi {
                out.push(Violation::new(format!(
                    "row `{}`: `{series}` = {v} above maximum {hi}",
                    t.cell(r, 0)
                )));
            }
        }
    }
    out
}

fn check_row_count(rows: &[usize], min: Option<usize>, max: Option<usize>) -> Vec<Violation> {
    let n = rows.len();
    let mut out = Vec::new();
    if let Some(lo) = min {
        if n < lo {
            out.push(Violation::new(format!(
                "selection has {n} rows, expected at least {lo}"
            )));
        }
    }
    if let Some(hi) = max {
        if n > hi {
            out.push(Violation::new(format!(
                "selection has {n} rows, expected at most {hi}"
            )));
        }
    }
    out
}

fn check_cell(
    t: &Table,
    rows: &[usize],
    series: &str,
    equals: Option<&str>,
    contains: Option<&str>,
) -> Vec<Violation> {
    let sc = match series_col(t, series) {
        Ok(c) => c,
        Err(v) => return vec![v],
    };
    let mut out = Vec::new();
    for &r in rows {
        let cell = t.cell(r, sc);
        let ok = match (equals, contains) {
            (Some(e), _) => cell == e,
            (_, Some(c)) => cell.contains(c),
            _ => unreachable!(),
        };
        if !ok {
            out.push(Violation::new(format!(
                "row `{}`: cell `{cell}` in `{series}` does not {} `{}`",
                t.cell(r, 0),
                if equals.is_some() { "equal" } else { "contain" },
                equals.or(contains).unwrap_or_default()
            )));
        }
    }
    out
}
