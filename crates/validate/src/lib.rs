//! # elanib-validate — paper-conformance validator
//!
//! The repo's determinism checks (`scripts/regen_all.sh`) prove that a
//! change did not alter a single byte of any exhibit CSV. They prove
//! nothing about *fidelity*: a kernel or model change that legitimately
//! regenerates every CSV could silently move a crossover, flatten an
//! anomaly, or flip who wins a regime — and byte-diffing the new files
//! against themselves would pass. This crate closes that gap by
//! encoding the paper's qualitative claims as machine-checked
//! assertions.
//!
//! ## Shape of the system
//!
//! * [`toml`] — a minimal, dependency-free parser for the subset of
//!   TOML the expectation files use (top-level scalars plus
//!   `[[expect]]` blocks).
//! * [`csv`] — a parser for the exhibit CSVs in `results/` (quoted
//!   cells, numeric-or-text values).
//! * [`expect`] — the expectation DSL: [`expect::Expectation`] terms
//!   like `Wins`, `Crossover`, `Monotonic`, `WithinFactor`, `Anomaly`,
//!   `Bound`, `RowCount`, and `Cell`, each evaluated against a parsed
//!   table to produce zero or more [`expect::Violation`]s.
//! * [`report`] — aggregates per-file results into a [`report::Report`]
//!   and renders it as text and as machine-readable JSON
//!   (`conformance.json`).
//!
//! ## Expectation files
//!
//! One TOML file per paper exhibit lives in `expectations/`. Each file
//! names the exhibit it covers, a default CSV, and a list of terms:
//!
//! ```toml
//! exhibit = "Figure 1(a)"
//! file = "fig1a_latency.csv"
//!
//! [[expect]]
//! kind = "wins"
//! series = "Elan us"      # the claimed winner
//! over = "IB us"
//! better = "lower"        # latency: lower is better
//! range = [0, 1024]       # rows whose key (first column) is in range
//! min_factor = 2.0        # Elan-4 wins small messages by >= 2x
//! ```
//!
//! Every term is evaluated — a violated term never stops the run — so
//! one report shows the full blast radius of a behavioral change.
//!
//! The driver ([`run_file`] / [`run_files`]) is what the `conformance`
//! binary in `elanib-bench` wraps with exhibit-coverage checking and
//! BENCH regression gating.

pub mod csv;
pub mod expect;
pub mod report;
pub mod toml;

use std::path::Path;

use expect::{ExpectFile, Violation};
use report::{FileResult, Report, TermResult};

/// Parse one expectation TOML file. Errors carry the file name and the
/// offending line or block so a typo'd expectation fails CI with a
/// message that points at itself.
pub fn parse_expect_file(path: &Path) -> Result<ExpectFile, String> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text = std::fs::read_to_string(path).map_err(|e| format!("{name}: cannot read: {e}"))?;
    ExpectFile::parse(&name, &text)
}

/// Evaluate one parsed expectation file against the CSVs under
/// `results_dir`. Missing or unreadable CSVs are reported as term
/// violations (every term against that CSV fails), not as hard errors:
/// a deleted results file is exactly the kind of drift the validator
/// exists to catch.
pub fn run_file(ef: &ExpectFile, results_dir: &Path) -> FileResult {
    let mut terms = Vec::with_capacity(ef.terms.len());
    for (idx, term) in ef.terms.iter().enumerate() {
        let csv_name = term.file.as_deref().unwrap_or(&ef.default_file);
        let table = match csv::Table::load(&results_dir.join(csv_name)) {
            Ok(t) => t,
            Err(e) => {
                terms.push(TermResult {
                    index: idx,
                    kind: term.expectation.kind_name().to_string(),
                    desc: term.expectation.describe(),
                    file: csv_name.to_string(),
                    violations: vec![Violation::new(format!("{csv_name}: {e}"))],
                });
                continue;
            }
        };
        terms.push(TermResult {
            index: idx,
            kind: term.expectation.kind_name().to_string(),
            desc: term.expectation.describe(),
            file: csv_name.to_string(),
            violations: term.expectation.check(&table),
        });
    }
    FileResult {
        source: ef.source.clone(),
        exhibit: ef.exhibit.clone(),
        terms,
    }
}

/// Scenario-scoped evaluation: check one parsed expectation file
/// against an **in-memory** table instead of a CSV under a results
/// directory. This is the fuzzer's path — it synthesizes a metrics
/// table per scenario batch (one row per generated scenario) and
/// evaluates invariant terms against it directly; nothing touches
/// disk. Per-term `file` overrides are meaningless here: `label`
/// stands in as the table's name in the report.
pub fn run_on_table(ef: &ExpectFile, label: &str, table: &csv::Table) -> FileResult {
    FileResult {
        source: ef.source.clone(),
        exhibit: ef.exhibit.clone(),
        terms: ef
            .terms
            .iter()
            .enumerate()
            .map(|(idx, term)| TermResult {
                index: idx,
                kind: term.expectation.kind_name().to_string(),
                desc: term.expectation.describe(),
                file: label.to_string(),
                violations: term.expectation.check(table),
            })
            .collect(),
    }
}

/// Evaluate a set of expectation files against `results_dir` and
/// aggregate into a [`Report`]. Never fails fast: every term of every
/// file is evaluated.
pub fn run_files(files: &[ExpectFile], results_dir: &Path) -> Report {
    Report {
        files: files.iter().map(|ef| run_file(ef, results_dir)).collect(),
    }
}

/// Load every `*.toml` under `dir`, sorted by file name for a
/// deterministic report order. Parse errors abort (an unparseable
/// expectation is a broken contract, not a failed one).
pub fn load_expect_dir(dir: &Path) -> Result<Vec<ExpectFile>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: cannot read directory: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no expectation files found", dir.display()));
    }
    paths.iter().map(|p| parse_expect_file(p)).collect()
}
