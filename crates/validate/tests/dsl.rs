//! Expectation-DSL coverage: parser rejections with good errors, and
//! every `Expectation` kind evaluated against tiny synthetic CSV
//! fixtures — one passing and one deliberately violated case per kind.

use elanib_validate::csv::Table;
use elanib_validate::expect::ExpectFile;

/// Parse a one-term expectation file around the given `[[expect]]`
/// body.
fn one_term(body: &str) -> Result<ExpectFile, String> {
    let text = format!("exhibit = \"Figure T\"\nfile = \"t.csv\"\n\n[[expect]]\n{body}\n");
    ExpectFile::parse("t.toml", &text)
}

/// Evaluate a single-term expectation file against CSV text; returns
/// violation messages.
fn eval(body: &str, csv: &str) -> Vec<String> {
    let ef = one_term(body).expect("expectation should parse");
    let t = Table::parse(csv).expect("fixture CSV should parse");
    ef.terms[0]
        .expectation
        .check(&t)
        .into_iter()
        .map(|v| v.message)
        .collect()
}

// A small two-series latency-style fixture: `b` always wins (lower),
// `a` has a discontinuity at key 30.
const LAT: &str = "k,a,b\n10,4.0,2.0\n20,4.4,2.2\n30,9.0,2.4\n40,9.2,2.6\n";

// ---------------------------------------------------------------- parser

#[test]
fn parser_rejects_bad_range() {
    let err = one_term(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nrange = [100, 1]",
    )
    .unwrap_err();
    assert!(err.contains("lower bound exceeds upper"), "{err}");
    let err =
        one_term("kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nrange = [1]")
            .unwrap_err();
    assert!(err.contains("two numbers"), "{err}");
}

#[test]
fn parser_rejects_zero_tolerance() {
    let err =
        one_term("kind = \"crossover\"\nbetween = [\"a\", \"b\"]\nnear = 30\ntol = 0").unwrap_err();
    assert!(err.contains("`tol` must be > 0"), "{err}");
    let err =
        one_term("kind = \"anomaly\"\nseries = \"a\"\nat = 30\ndirection = \"up\"\nmin_jump = 1.0")
            .unwrap_err();
    assert!(err.contains("`min_jump` must be > 1"), "{err}");
}

#[test]
fn parser_rejects_unknown_kind_and_keys() {
    let err = one_term("kind = \"wibble\"").unwrap_err();
    assert!(err.contains("unknown kind `wibble`"), "{err}");
    let err = one_term("kind = \"bound\"\nseries = \"a\"\nmin = 1\nmin_facto = 2").unwrap_err();
    assert!(err.contains("unknown key `min_facto`"), "{err}");
}

#[test]
fn parser_rejects_degenerate_bounds() {
    let err = one_term("kind = \"bound\"\nseries = \"a\"").unwrap_err();
    assert!(err.contains("needs `min`, `max`, or both"), "{err}");
    let err = one_term("kind = \"bound\"\nseries = \"a\"\nmin = 5\nmax = 2").unwrap_err();
    assert!(err.contains("min 5 exceeds max 2"), "{err}");
    let err = one_term(
        "kind = \"wins\"\nseries = \"a\"\nover = \"b\"\nbetter = \"lower\"\nmin_factor = 0.5",
    )
    .unwrap_err();
    assert!(err.contains("`min_factor` must be >= 1"), "{err}");
}

#[test]
fn parser_reports_file_and_block_position() {
    let text = "exhibit = \"X\"\nfile = \"x.csv\"\n[[expect]]\nkind = \"bound\"\nseries = \"a\"\n";
    let err = ExpectFile::parse("pos.toml", text).unwrap_err();
    assert!(err.contains("pos.toml:3 [[expect]] #1"), "{err}");
}

#[test]
fn unknown_series_is_a_violation_with_column_listing() {
    let msgs = eval("kind = \"bound\"\nseries = \"nope\"\nmin = 0", LAT);
    assert_eq!(msgs.len(), 1);
    assert!(msgs[0].contains("unknown series `nope`"), "{}", msgs[0]);
    assert!(
        msgs[0].contains("`a`"),
        "should list available columns: {}",
        msgs[0]
    );
}

// ------------------------------------------------------------- evaluators

#[test]
fn wins_passes_and_fails() {
    let pass = eval(
        "kind = \"wins\"\nseries = \"b\"\nover = \"a\"\nbetter = \"lower\"\nmin_factor = 1.5",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"wins\"\nseries = \"b\"\nover = \"a\"\nbetter = \"lower\"\nmin_factor = 2.1",
        LAT,
    );
    // Rows 10 (factor 2.0) and 20 (factor 2.0) miss the 2.1x bar.
    assert_eq!(fail.len(), 2, "{fail:?}");
    assert!(
        fail[0].contains("factor 2.000 < required 2.1"),
        "{}",
        fail[0]
    );
}

#[test]
fn wins_respects_range_and_direction() {
    // `a` "wins" when higher is better.
    let pass = eval(
        "kind = \"wins\"\nseries = \"a\"\nover = \"b\"\nbetter = \"higher\"\nmin_factor = 2.0\nrange = [30, 40]",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn crossover_passes_and_fails() {
    let csv = "k,a,b\n1,1.0,3.0\n2,2.0,2.5\n4,3.0,2.0\n8,4.0,1.5\n";
    let pass = eval(
        "kind = \"crossover\"\nbetween = [\"a\", \"b\"]\nnear = 4\ntol = 1",
        csv,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"crossover\"\nbetween = [\"a\", \"b\"]\nnear = 16\ntol = 2",
        csv,
    );
    assert_eq!(fail.len(), 1);
    assert!(fail[0].contains("at key 4"), "{}", fail[0]);
    // No crossover at all in the LAT fixture.
    let fail = eval(
        "kind = \"crossover\"\nbetween = [\"a\", \"b\"]\nnear = 20\ntol = 5",
        LAT,
    );
    assert!(fail[0].contains("never cross"), "{}", fail[0]);
}

#[test]
fn monotonic_passes_and_fails() {
    let pass = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"decreasing\"",
        LAT,
    );
    assert_eq!(fail.len(), 3, "{fail:?}");
    // Plateaus pass non-strict but fail strict.
    let plateau = "k,a\n1,5.0\n2,5.0\n3,6.0\n";
    assert!(eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"",
        plateau
    )
    .is_empty());
    let strict = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nstrict = true",
        plateau,
    );
    assert_eq!(strict.len(), 1, "{strict:?}");
}

#[test]
fn monotonic_slack_absorbs_small_dips_only() {
    // A 0.5% dip: within 1% slack, outside exact monotonicity.
    let jitter = "k,a\n1,1000.0\n2,995.0\n3,1200.0\n";
    let exact = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"",
        jitter,
    );
    assert_eq!(exact.len(), 1, "{exact:?}");
    let slack = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nslack = 0.01",
        jitter,
    );
    assert!(slack.is_empty(), "{slack:?}");
    // A 10% dip blows through the slack.
    let big = "k,a\n1,1000.0\n2,900.0\n3,1200.0\n";
    let fail = eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nslack = 0.01",
        big,
    );
    assert_eq!(fail.len(), 1, "{fail:?}");
    // Decreasing direction mirrors: a small rise is forgiven.
    let rise = "k,a\n1,1000.0\n2,1005.0\n3,800.0\n";
    assert!(eval(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"decreasing\"\nslack = 0.01",
        rise
    )
    .is_empty());
}

#[test]
fn monotonic_slack_rejects_bad_combinations() {
    assert!(one_term(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nslack = -0.1"
    )
    .is_err());
    assert!(one_term(
        "kind = \"monotonic\"\nseries = \"a\"\ndirection = \"increasing\"\nstrict = true\nslack = 0.01"
    )
    .is_err());
}

#[test]
fn within_factor_passes_and_fails() {
    let pass = eval(
        "kind = \"within_factor\"\nseries = \"a\"\nof = \"b\"\nmax_factor = 4.0",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"within_factor\"\nseries = \"a\"\nof = \"b\"\nmax_factor = 3.0",
        LAT,
    );
    // Rows 30 (9.0 vs 2.4 = 3.75x) and 40 (9.2 vs 2.6 = 3.54x).
    assert_eq!(fail.len(), 2, "{fail:?}");
    // Against a constant.
    let pass = eval(
        "kind = \"within_factor\"\nseries = \"b\"\nvalue = 2.3\nmax_factor = 1.2\n",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"within_factor\"\nseries = \"b\"\nvalue = 2.0\nmax_factor = 1.05\n",
        LAT,
    );
    assert_eq!(fail.len(), 3, "{fail:?}");
}

#[test]
fn anomaly_passes_and_fails() {
    // `a` jumps 4.4 -> 9.0 at key 30 (2.05x).
    let pass = eval(
        "kind = \"anomaly\"\nseries = \"a\"\nat = 30\ndirection = \"up\"\nmin_jump = 2.0",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"anomaly\"\nseries = \"a\"\nat = 40\ndirection = \"up\"\nmin_jump = 2.0",
        LAT,
    );
    assert_eq!(fail.len(), 1);
    assert!(fail[0].contains("expected a upward jump"), "{}", fail[0]);
    let fail = eval(
        "kind = \"anomaly\"\nseries = \"a\"\nat = 35\ndirection = \"up\"\nmin_jump = 2.0",
        LAT,
    );
    assert!(fail[0].contains("anomaly site missing"), "{}", fail[0]);
    // Downward jump.
    let dive = "k,a\n1,100.0\n2,40.0\n4,35.0\n";
    assert!(eval(
        "kind = \"anomaly\"\nseries = \"a\"\nat = 2\ndirection = \"down\"\nmin_jump = 2.0",
        dive
    )
    .is_empty());
}

#[test]
fn bound_passes_and_fails() {
    let pass = eval(
        "kind = \"bound\"\nseries = \"b\"\nmin = 2.0\nmax = 2.6",
        LAT,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"bound\"\nseries = \"b\"\nmin = 2.1\nmax = 2.5",
        LAT,
    );
    assert_eq!(fail.len(), 2, "{fail:?}");
    assert!(fail[0].contains("below minimum 2.1"), "{}", fail[0]);
    assert!(fail[1].contains("above maximum 2.5"), "{}", fail[1]);
}

#[test]
fn row_count_passes_and_fails() {
    assert!(eval("kind = \"row_count\"\nmin = 4\nmax = 4", LAT).is_empty());
    let fail = eval("kind = \"row_count\"\nmin = 5", LAT);
    assert!(
        fail[0].contains("has 4 rows, expected at least 5"),
        "{}",
        fail[0]
    );
    let fail = eval("kind = \"row_count\"\nmax = 1\nrange = [10, 20]", LAT);
    assert!(
        fail[0].contains("has 2 rows, expected at most 1"),
        "{}",
        fail[0]
    );
}

#[test]
fn cell_passes_and_fails() {
    let csv = "net,status\nIB,QP-ERR\nElan,79.9\n";
    assert!(eval(
        "kind = \"cell\"\nseries = \"status\"\nrow = \"IB\"\nequals = \"QP-ERR\"",
        csv
    )
    .is_empty());
    let fail = eval(
        "kind = \"cell\"\nseries = \"status\"\nrow = \"Elan\"\nequals = \"QP-ERR\"",
        csv,
    );
    assert_eq!(fail.len(), 1);
    assert!(fail[0].contains("does not equal `QP-ERR`"), "{}", fail[0]);
    assert!(eval(
        "kind = \"cell\"\nseries = \"status\"\nrow = \"IB\"\ncontains = \"ERR\"",
        csv
    )
    .is_empty());
}

// -------------------------------------------------------------- selectors

#[test]
fn filter_matches_numerically() {
    // "0.01" written in the expectation matches the "0.01000" the
    // formatter emits.
    let csv = "bytes,rate,v\n64,0.01000,5.0\n64,0.03000,9.0\n";
    let pass = eval(
        "kind = \"bound\"\nseries = \"v\"\nfilter_col = \"rate\"\nfilter_val = \"0.01\"\nmax = 6.0",
        csv,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"bound\"\nseries = \"v\"\nfilter_col = \"rate\"\nfilter_val = \"0.03\"\nmax = 6.0",
        csv,
    );
    assert_eq!(fail.len(), 1, "{fail:?}");
}

#[test]
fn empty_selection_is_a_violation() {
    let msgs = eval(
        "kind = \"bound\"\nseries = \"a\"\nmin = 0\nrange = [1000, 2000]",
        LAT,
    );
    assert_eq!(msgs.len(), 1);
    assert!(msgs[0].contains("matched no rows"), "{}", msgs[0]);
}

#[test]
fn non_numeric_cell_in_numeric_term_is_a_violation() {
    let csv = "k,a\n1,2.0\n2,QP-ERR\n";
    let msgs = eval("kind = \"bound\"\nseries = \"a\"\nmin = 0", csv);
    assert_eq!(msgs.len(), 1);
    assert!(msgs[0].contains("`QP-ERR`"), "{}", msgs[0]);
    assert!(msgs[0].contains("not numeric"), "{}", msgs[0]);
}

// -------------------------------------------------------------- invariant

#[test]
fn invariant_passes_on_exact_equality() {
    let msgs = eval(
        "kind = \"invariant\"\nname = \"self\"\nseries = \"a\"\nof = \"a\"",
        LAT,
    );
    assert!(msgs.is_empty(), "{msgs:?}");
}

#[test]
fn invariant_flags_every_unequal_row() {
    let msgs = eval(
        "kind = \"invariant\"\nname = \"conservation\"\nseries = \"a\"\nof = \"b\"",
        LAT,
    );
    assert_eq!(msgs.len(), 4, "{msgs:?}");
    assert!(
        msgs[0].contains("invariant `conservation` broken at row"),
        "{}",
        msgs[0]
    );
}

#[test]
fn invariant_against_constant_value() {
    let csv = "k,sent,recv\n1,8.0,8.0\n2,8.0,7.0\n";
    let pass = eval(
        "kind = \"invariant\"\nname = \"c\"\nseries = \"sent\"\nvalue = 8.0",
        csv,
    );
    assert!(pass.is_empty(), "{pass:?}");
    let fail = eval(
        "kind = \"invariant\"\nname = \"c\"\nseries = \"recv\"\nvalue = 8.0",
        csv,
    );
    assert_eq!(fail.len(), 1, "{fail:?}");
    assert!(fail[0].contains("`2`"), "{}", fail[0]);
}

#[test]
fn invariant_rejects_both_or_neither_comparand() {
    let both =
        one_term("kind = \"invariant\"\nname = \"x\"\nseries = \"a\"\nof = \"b\"\nvalue = 1.0");
    assert!(both.is_err());
    let neither = one_term("kind = \"invariant\"\nname = \"x\"\nseries = \"a\"");
    assert!(neither.is_err());
}

#[test]
fn run_on_table_evaluates_in_memory() {
    let ef =
        one_term("kind = \"invariant\"\nname = \"bytes\"\nseries = \"a\"\nof = \"b\"").unwrap();
    let table = elanib_validate::csv::Table::parse(LAT).unwrap();
    let fr = elanib_validate::run_on_table(&ef, "scenario-batch", &table);
    assert_eq!(fr.terms.len(), 1);
    assert_eq!(fr.terms[0].file, "scenario-batch");
    assert!(!fr.terms[0].violations.is_empty());
}
