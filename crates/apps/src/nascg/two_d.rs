//! NPB-style 2-D decomposition for CG.
//!
//! NPB arranges 2^k processes as `nprows × npcols` (with
//! `npcols ∈ {nprows, 2·nprows}`); the matrix is blocked by (row strip,
//! column strip), the iterate is distributed by column strips, and each
//! matvec is: local partial product → sum-reduction across the row
//! group → transpose exchange to redistribute the result as column
//! strips. Message sizes stay at `n/nprows` and `n/npcols` — the
//! mid-size regime where the Elan-4 bandwidth advantage of Figure 1(b)
//! lives — instead of the `n/2`-sized tail of a 1-D allgather. This is
//! why the paper's Figure 6 gap persists at 32 processes (and why the
//! 1-D variant, kept in [`super`] as an ablation, loses it).
//!
//! All arithmetic is real: the 2-D solver must match the serial solver
//! to 1e-10, which pins every exchange in this file.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{
    bytes_of_f64, f64_of_bytes, f64s_of_bytes, recv, send, Communicator, RankProgram,
};
use elanib_simcore::Dur;

use super::{CgProblem, SparseSpd};

/// Process-grid geometry for `p = 2^k` ranks, the NPB rule:
/// `npcols = 2^⌈k/2⌉`, `nprows = p / npcols`.
pub fn grid(p: usize) -> (usize, usize) {
    assert!(p.is_power_of_two(), "NPB CG needs 2^k processes");
    let k = p.trailing_zeros() as usize;
    let npcols = 1usize << k.div_ceil(2);
    (p / npcols, npcols)
}

/// Transpose partner of rank `(r, c)` in an `nprows × npcols` grid.
/// For square grids this is the matrix transpose `(c, r)`; for the
/// 2:1 case it is NPB's pairing, a self-inverse bijection such that
/// the partner's row strip covers my column strip and vice versa.
pub fn transpose_partner(r: usize, c: usize, nprows: usize, npcols: usize) -> (usize, usize) {
    if nprows == npcols {
        (c, r)
    } else {
        debug_assert_eq!(npcols, 2 * nprows);
        (c / 2, 2 * r + (c & 1))
    }
}

#[derive(Clone)]
pub(super) struct CgProgram2D {
    pub problem: CgProblem,
    pub out: Rc<Cell<(f64, f64)>>,
}

impl RankProgram for CgProgram2D {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let p = self.problem;
            let nproc = c.size();
            let me = c.rank();
            let sim = c.sim();
            let (nprows, npcols) = grid(nproc);
            assert_eq!(p.n % nproc, 0, "n must divide evenly");
            let (row, col) = (me / npcols, me % npcols);
            let nr = p.n / nprows; // row-strip length
            let nc = p.n / npcols; // column-strip length
            let rows = row * nr..(row + 1) * nr;
            let a = SparseSpd::shared(p.n, p.nz_per_row, 0xC6);

            // Extract my (row strip × column strip) block once. The
            // matvec below touches only entries with j in my column
            // strip; filtering them out of the global CSR on every
            // inner iteration re-scans ~npcols× more nonzeros than it
            // uses. The extraction preserves entry order, so the
            // partial sums accumulate in exactly the same sequence and
            // the f64 results are bit-identical to the filtering loop.
            let col_range = col * nc..(col + 1) * nc;
            let mut blk_ptr = Vec::with_capacity(nr + 1);
            let mut blk: Vec<(u32, f64)> = Vec::new();
            blk_ptr.push(0usize);
            for i in rows.clone() {
                for e in a.row_ptr[i]..a.row_ptr[i + 1] {
                    let j = a.cols[e];
                    if col_range.contains(&j) {
                        blk.push(((j - col_range.start) as u32, a.vals[e]));
                    }
                }
                blk_ptr.push(blk.len());
            }

            let scale = p.model_n as f64 / p.n as f64;
            let flop_time =
                |flops: f64| Dur::from_secs_f64(flops * scale / (p.mflops_per_cpu * 1e6));
            // Modelled wire sizes at class A scale.
            let nr_bytes = (p.model_n / nprows * 8) as u64;
            let nc_bytes = (p.model_n / npcols * 8) as u64;

            // My transpose partner for the iterate redistribution.
            let (tr, tc) = transpose_partner(row, col, nprows, npcols);
            let partner = tr * npcols + tc;
            let _ = tr;

            // One CG outer solve ---------------------------------------------
            let mut x_row = vec![1.0f64; nr];
            let mut zeta = 0.0;
            barrier(&c).await;
            let t0 = sim.now();
            for _outer in 0..p.outer {
                let mut z = vec![0.0; nr];
                let mut r_vec = x_row.clone();
                let mut p_row = r_vec.clone();
                let mut rho = {
                    let local: f64 = r_vec.iter().map(|v| v * v).sum::<f64>() / npcols as f64;
                    allreduce(&c, Op::Sum, &[local]).await[0]
                };
                for inner in 0..p.inner {
                    // 1. Transpose p (row strips) into my column strip.
                    let p_col = transpose_exchange(
                        &c,
                        &p_row,
                        row,
                        col,
                        nprows,
                        npcols,
                        partner,
                        nc,
                        nc_bytes,
                        100 + inner as i64,
                    )
                    .await;
                    // 2. Local partial matvec over my pre-extracted
                    //    block (same entries, same order — see above).
                    let mut w = vec![0.0; nr];
                    for (wi, ptr) in w.iter_mut().zip(blk_ptr.windows(2)) {
                        let mut acc = 0.0;
                        for &(j, v) in &blk[ptr[0]..ptr[1]] {
                            acc += v * p_col[j as usize];
                        }
                        *wi = acc;
                    }
                    let flops = 2.0 * (a.nnz() as f64 / nproc as f64) + 10.0 * nr as f64;
                    c.compute(flop_time(flops), p.mem_intensity).await;
                    // 3. Sum-reduce w across the row group -> q (replicated).
                    let q =
                        row_group_allreduce(&c, w, row, col, npcols, nr_bytes, 500 + inner as i64)
                            .await;
                    // 4. Dots and vector updates on row strips
                    //    (each strip appears npcols times; npcols is a
                    //    power of two, so the division is exact).
                    let pq_local: f64 =
                        p_row.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>() / npcols as f64;
                    let pq = allreduce(&c, Op::Sum, &[pq_local]).await[0];
                    let alpha = rho / pq;
                    let mut rho_local = 0.0;
                    for ((zi, ri), (pi, qi)) in
                        z.iter_mut().zip(&mut r_vec).zip(p_row.iter().zip(&q))
                    {
                        *zi += alpha * pi;
                        *ri -= alpha * qi;
                        rho_local += *ri * *ri;
                    }
                    let rho_new = allreduce(&c, Op::Sum, &[rho_local / npcols as f64]).await[0];
                    let beta = rho_new / rho;
                    rho = rho_new;
                    for (pi, ri) in p_row.iter_mut().zip(&r_vec) {
                        *pi = ri + beta * *pi;
                    }
                }
                let xz_local: f64 =
                    x_row.iter().zip(&z).map(|(a, b)| a * b).sum::<f64>() / npcols as f64;
                let zn_local: f64 = z.iter().map(|v| v * v).sum::<f64>() / npcols as f64;
                let sums = allreduce(&c, Op::Sum, &[xz_local, zn_local]).await;
                zeta = p.shift + 1.0 / sums[0];
                let znorm = sums[1].sqrt();
                for i in 0..nr {
                    x_row[i] = z[i] / znorm;
                }
            }
            barrier(&c).await;
            if me == 0 {
                self.out.set((zeta, sim.now().since(t0).as_secs_f64()));
            }
        }
    }
}

/// Exchange with the transpose partner: give it the slice of my row
/// strip covering *its* column strip; receive my column strip from it.
#[allow(clippy::too_many_arguments)]
async fn transpose_exchange<C: Communicator>(
    c: &C,
    v_row: &[f64],
    row: usize,
    _col: usize,
    _nprows: usize,
    npcols: usize,
    partner: usize,
    nc: usize,
    nc_bytes: u64,
    tag: i64,
) -> Vec<f64> {
    let me = c.rank();
    let (tr, tc) = (partner / npcols, partner % npcols);
    let _ = tr;
    // Global rows of my strip: [row*nr, (row+1)*nr) where nr = nc *
    // npcols / nprows. The partner's column strip tc spans
    // [tc*nc, (tc+1)*nc) — contained in my strip by construction.
    let nr = v_row.len();
    let my_lo = row * nr;
    let send_lo = tc * nc - my_lo;
    let strip = &v_row[send_lo..send_lo + nc];
    if partner == me {
        return strip.to_vec();
    }
    let payload = bytes_of_f64(strip);
    // Symmetric exchange; break the tie by rank to avoid both sides
    // blocking in a rendezvous send.
    let m = if me < partner {
        send(c, partner, tag, payload, nc_bytes).await;
        recv(c, Some(partner), Some(tag)).await
    } else {
        let m = recv(c, Some(partner), Some(tag)).await;
        send(c, partner, tag, payload, nc_bytes).await;
        m
    };
    f64_of_bytes(&m.data)
}

/// Recursive-doubling allreduce(sum) across this rank's row group
/// (the `npcols` ranks sharing `row`).
async fn row_group_allreduce<C: Communicator>(
    c: &C,
    mut v: Vec<f64>,
    row: usize,
    col: usize,
    npcols: usize,
    nr_bytes: u64,
    tag: i64,
) -> Vec<f64> {
    let mut dist = 1usize;
    while dist < npcols {
        let pc = col ^ dist;
        let partner = row * npcols + pc;
        let payload = bytes_of_f64(&v);
        let m = if col < pc {
            send(c, partner, tag + dist as i64, payload, nr_bytes).await;
            recv(c, Some(partner), Some(tag + dist as i64)).await
        } else {
            let m = recv(c, Some(partner), Some(tag + dist as i64)).await;
            send(c, partner, tag + dist as i64, payload, nr_bytes).await;
            m
        };
        for (a, b) in v.iter_mut().zip(f64s_of_bytes(&m.data)) {
            *a += b;
        }
        dist *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_follows_npb_rule() {
        assert_eq!(grid(1), (1, 1));
        assert_eq!(grid(2), (1, 2));
        assert_eq!(grid(4), (2, 2));
        assert_eq!(grid(8), (2, 4));
        assert_eq!(grid(16), (4, 4));
        assert_eq!(grid(32), (4, 8));
        assert_eq!(grid(64), (8, 8));
    }

    #[test]
    fn transpose_partner_is_an_involution_and_covers() {
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            let (nprows, npcols) = grid(p);
            for r in 0..nprows {
                for c in 0..npcols {
                    let (tr, tc) = transpose_partner(r, c, nprows, npcols);
                    assert!(tr < nprows && tc < npcols, "partner in grid (p={p})");
                    // Involution.
                    assert_eq!(
                        transpose_partner(tr, tc, nprows, npcols),
                        (r, c),
                        "not an involution at p={p}, ({r},{c})"
                    );
                    // Coverage: partner's row strip must contain my
                    // column strip, i.e. c ∈ [tr*npcols/nprows*..]:
                    // row strip tr covers column strips
                    // [tr*(npcols/nprows), (tr+1)*(npcols/nprows)).
                    let per = npcols / nprows;
                    assert!(
                        (tr * per..(tr + 1) * per).contains(&c),
                        "partner row strip must cover my column strip (p={p})"
                    );
                    // And symmetrically mine covers theirs.
                    assert!((r * per..(r + 1) * per).contains(&tc));
                }
            }
        }
    }
}
