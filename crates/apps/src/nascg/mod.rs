//! NAS Parallel Benchmark CG (§2.2.3, Figure 6): conjugate-gradient
//! eigenvalue estimation on a random sparse SPD matrix, class A
//! geometry (n = 14000, ~11 nonzeros/row seed density, 15 outer
//! iterations of 25 CG steps, shift 20).
//!
//! The distributed solver runs **real arithmetic**: every rank owns a
//! row strip, the iterate is reassembled with a recursive-doubling
//! allgather each matvec, and dot products are true allreduces — so the
//! distributed answer must match the serial solver bit-for-bit in
//! structure (and to 1e-10 in value), on both networks.
//!
//! Substitution note (recorded in DESIGN.md): NPB 2.4's CG uses its
//! own makea() matrix generator and a 2D process grid with
//! reduce+transpose exchanges. We generate a different (but equally
//! sparse and SPD) matrix and use a 1D row decomposition with a
//! recursive-doubling allgather. Class A at ≤64 processes is firmly
//! communication-dominated either way — which is the property the
//! paper selected CG for ("a low computation to communication ratio,
//! which provides the best scaling information").

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{
    bytes_of_f64, f64s_of_bytes, recv, send, Communicator, JobSpec, Network, RankProgram,
};
use elanib_simcore::Dur;

use crate::ScalingPoint;

pub mod two_d;

/// Compressed-sparse-row symmetric positive-definite matrix.
#[derive(Clone)]
pub struct SparseSpd {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub cols: Vec<usize>,
    pub vals: Vec<f64>,
}

impl SparseSpd {
    /// Deterministic random sparse SPD matrix: ~`nz_per_row` random
    /// off-diagonals per row, symmetrized, made diagonally dominant.
    pub fn generate(n: usize, nz_per_row: usize, seed: u64) -> SparseSpd {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Collect symmetric off-diagonal entries.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..nz_per_row / 2 {
                let j = (next() as usize) % n;
                if j == i {
                    continue;
                }
                let v = -((next() % 1000) as f64 / 1000.0) - 0.001;
                entries[i].push((j, v));
                entries[j].push((i, v));
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        #[allow(clippy::needless_range_loop)] // i is also the row id for the diagonal
        for i in 0..n {
            entries[i].sort_unstable_by_key(|&(j, _)| j);
            entries[i].dedup_by_key(|e| e.0);
            // Diagonal dominance => SPD. The per-row diagonal boost
            // varies so the spectrum is non-degenerate (a constant
            // boost would make the all-ones vector an exact
            // eigenvector and the eigenvalue estimate trivial).
            let offsum: f64 = entries[i].iter().map(|&(_, v)| v.abs()).sum();
            let boost = 1.0 + (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
            let diag = offsum + boost;
            let mut wrote_diag = false;
            for &(j, v) in &entries[i] {
                if j > i && !wrote_diag {
                    cols.push(i);
                    vals.push(diag);
                    wrote_diag = true;
                }
                cols.push(j);
                vals.push(v);
            }
            if !wrote_diag {
                cols.push(i);
                vals.push(diag);
            }
            row_ptr.push(cols.len());
        }
        SparseSpd {
            n,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Shared, memoized [`SparseSpd::generate`]. Every rank of every
    /// simulated run generates the *same* deterministic matrix (the
    /// replicated-makea() convention), so regenerating it per rank —
    /// 32 times per 32-process sim, for every sweep point — is pure
    /// redundancy. One thread-local copy per distinct (n, nz, seed)
    /// serves them all; the values are identical by construction, so
    /// results cannot change.
    pub fn shared(n: usize, nz_per_row: usize, seed: u64) -> Rc<SparseSpd> {
        type MatrixCache = std::cell::RefCell<Vec<((usize, usize, u64), Rc<SparseSpd>)>>;
        thread_local! {
            static CACHE: MatrixCache = const { std::cell::RefCell::new(Vec::new()) };
        }
        CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if let Some((_, a)) = c.iter().find(|(k, _)| *k == (n, nz_per_row, seed)) {
                return a.clone();
            }
            let a = Rc::new(SparseSpd::generate(n, nz_per_row, seed));
            c.push(((n, nz_per_row, seed), a.clone()));
            a
        })
    }

    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// y[rows] = A[rows, :] * x for the half-open row range.
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        for (out, i) in y.iter_mut().zip(rows) {
            let mut acc = 0.0;
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[e] * x[self.cols[e]];
            }
            *out = acc;
        }
    }
}

/// Serial reference: the NPB CG outer loop. Returns the eigenvalue
/// estimate ζ and the final residual norm.
pub fn serial_cg(a: &SparseSpd, outer: usize, inner: usize, shift: f64) -> (f64, f64) {
    let n = a.n;
    let mut x = vec![1.0; n];
    let mut zeta = 0.0;
    let mut final_res = 0.0;
    for _ in 0..outer {
        // Solve A z = x with `inner` CG iterations.
        let mut z = vec![0.0; n];
        let mut r = x.clone();
        let mut p = r.clone();
        let mut rho: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..inner {
            let mut q = vec![0.0; n];
            a.spmv_rows(0..n, &p, &mut q);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let alpha = rho / pq;
            for i in 0..n {
                z[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            let rho_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        final_res = rho.sqrt();
        let xz: f64 = x.iter().zip(&z).map(|(a, b)| a * b).sum();
        zeta = shift + 1.0 / xz;
        // x = z / ||z||
        let znorm = z.iter().map(|v| v * v).sum::<f64>().sqrt();
        for i in 0..n {
            x[i] = z[i] / znorm;
        }
    }
    (zeta, final_res)
}

/// Class and timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct CgProblem {
    /// Matrix order actually computed (real arithmetic).
    pub n: usize,
    pub nz_per_row: usize,
    pub outer: usize,
    pub inner: usize,
    pub shift: f64,
    /// Matrix order whose *time* is charged (class A: 14000). The
    /// compute model scales real flops to this size.
    pub model_n: usize,
    /// Sustained MFLOP/s of one Xeon on cache-resident CG (class A is
    /// chosen "so that the data would reside in cache", §2.2.3).
    pub mflops_per_cpu: f64,
    pub mem_intensity: f64,
    /// Use the NPB 2-D process grid (reduce along rows + transpose)
    /// instead of the simpler 1-D allgather decomposition. 2-D is the
    /// faithful default; 1-D is kept as an ablation.
    pub two_d: bool,
}

/// Class A geometry (used by the figure generators). NPB's n is
/// 14000; we use 14336 = 14·1024 so every power-of-two process count
/// up to 1024 gets equal row strips (documented deviation).
pub fn class_a() -> CgProblem {
    CgProblem {
        n: 14336,
        nz_per_row: 11,
        outer: 15,
        inner: 25,
        shift: 20.0,
        model_n: 14336,
        mflops_per_cpu: 400.0,
        mem_intensity: 0.4,
        two_d: true,
    }
}

/// Reduced-size variant for tests: real math on a small matrix, timing
/// still modelled at class A scale.
pub fn class_a_reduced(n: usize) -> CgProblem {
    CgProblem { n, ..class_a() }
}

/// Results of one distributed run.
#[derive(Clone, Copy, Debug)]
pub struct CgRun {
    pub zeta: f64,
    pub time_s: f64,
    /// The paper's Figure 6(a) metric.
    pub mops_per_process: f64,
}

#[derive(Clone)]
struct CgProgram {
    problem: CgProblem,
    out: Rc<Cell<(f64, f64)>>,
}

/// Recursive-doubling allgather of per-rank segments (power-of-two
/// rank counts), used to reassemble the iterate before each matvec.
async fn allgather_segments<C: Communicator>(
    c: &C,
    mine: &[f64],
    seg_len: usize,
    model_seg_bytes: u64,
    x: &mut [f64],
) {
    let nproc = c.size();
    let me = c.rank();
    x[me * seg_len..(me + 1) * seg_len].copy_from_slice(mine);
    let mut have = 1usize; // contiguous segments held, starting at...
    let mut base = me; // first segment index held
    let mut dist = 1usize;
    while dist < nproc {
        let partner = me ^ dist;
        // Exchange the `have` segments starting at `base` (aligned
        // blocks in recursive doubling).
        let send_lo = base * seg_len;
        let send_hi = (base + have) * seg_len;
        let payload = bytes_of_f64(&x[send_lo..send_hi]);
        let bytes = model_seg_bytes * have as u64;
        let tag = 50 + dist as i64;
        let m = if me < partner {
            send(c, partner, tag, payload, bytes).await;
            recv(c, Some(partner), Some(tag)).await
        } else {
            let m = recv(c, Some(partner), Some(tag)).await;
            send(c, partner, tag, payload, bytes).await;
            m
        };
        let their_len = m.data.len() / 8;
        let their_lo = (base ^ dist) * seg_len;
        for (dst, v) in x[their_lo..their_lo + their_len]
            .iter_mut()
            .zip(f64s_of_bytes(&m.data))
        {
            *dst = v;
        }
        base = base.min(base ^ dist);
        have *= 2;
        dist *= 2;
    }
}

impl RankProgram for CgProgram {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let p = self.problem;
            let nproc = c.size();
            let me = c.rank();
            let sim = c.sim();
            assert!(nproc.is_power_of_two(), "NPB CG needs 2^k processes");
            assert_eq!(p.n % nproc, 0, "n must divide evenly");
            let seg = p.n / nproc;
            let rows = me * seg..(me + 1) * seg;
            // Every rank sees the same matrix deterministically
            // (stands in for NPB's replicated makea()).
            let a = SparseSpd::shared(p.n, p.nz_per_row, 0xC6);

            // Compute-time model: real flops scaled to class A size.
            let scale = (p.model_n as f64 / p.n as f64).powi(1);
            let flop_time =
                |flops: f64| Dur::from_secs_f64(flops * scale / (p.mflops_per_cpu * 1e6));
            let seg_bytes = (p.model_n / nproc * 8) as u64;

            let mut x = vec![1.0f64; p.n];
            let mut zeta = 0.0;
            barrier(&c).await;
            let t0 = sim.now();
            for _outer in 0..p.outer {
                let mut z = vec![0.0; seg];
                let mut r: Vec<f64> = x[rows.clone()].to_vec();
                let mut pvec_local: Vec<f64> = r.clone();
                let mut rho = {
                    let local: f64 = r.iter().map(|v| v * v).sum();
                    allreduce(&c, Op::Sum, &[local]).await[0]
                };
                let mut pfull = vec![0.0; p.n];
                for _inner in 0..p.inner {
                    allgather_segments(&c, &pvec_local, seg, seg_bytes, &mut pfull).await;
                    let mut q = vec![0.0; seg];
                    a.spmv_rows(rows.clone(), &pfull, &mut q);
                    // Charge the matvec + vector-op flops.
                    let flops = 2.0 * (a.nnz() as f64 / nproc as f64) + 10.0 * seg as f64;
                    c.compute(flop_time(flops), p.mem_intensity).await;
                    let pq_local: f64 = pvec_local.iter().zip(&q).map(|(a, b)| a * b).sum();
                    let pq = allreduce(&c, Op::Sum, &[pq_local]).await[0];
                    let alpha = rho / pq;
                    let mut rho_local = 0.0;
                    for i in 0..seg {
                        z[i] += alpha * pvec_local[i];
                        r[i] -= alpha * q[i];
                        rho_local += r[i] * r[i];
                    }
                    let rho_new = allreduce(&c, Op::Sum, &[rho_local]).await[0];
                    let beta = rho_new / rho;
                    rho = rho_new;
                    for i in 0..seg {
                        pvec_local[i] = r[i] + beta * pvec_local[i];
                    }
                }
                // zeta = shift + 1 / (x · z); then x = z/||z||.
                let xz_local: f64 = x[rows.clone()].iter().zip(&z).map(|(a, b)| a * b).sum();
                let zn_local: f64 = z.iter().map(|v| v * v).sum();
                let sums = allreduce(&c, Op::Sum, &[xz_local, zn_local]).await;
                zeta = p.shift + 1.0 / sums[0];
                let znorm = sums[1].sqrt();
                let mut zfull = vec![0.0; p.n];
                allgather_segments(&c, &z, seg, seg_bytes, &mut zfull).await;
                for i in 0..p.n {
                    x[i] = zfull[i] / znorm;
                }
            }
            barrier(&c).await;
            if me == 0 {
                self.out.set((zeta, sim.now().since(t0).as_secs_f64()));
            }
        }
    }
}

/// Run distributed CG; returns (ζ, wall time, MOps/s/process).
pub fn cg_run(network: Network, problem: CgProblem, nodes: usize, ppn: usize) -> CgRun {
    elanib_core::simcache::get_or_compute("nascg.run", &(network, problem, nodes, ppn), || {
        let out = Rc::new(Cell::new((0.0, 0.0)));
        let spec = JobSpec {
            network,
            nodes,
            ppn,
            seed: 41,
        };
        if problem.two_d {
            elanib_mpi::run_job(
                spec,
                two_d::CgProgram2D {
                    problem,
                    out: out.clone(),
                },
            );
        } else {
            elanib_mpi::run_job(
                spec,
                CgProgram {
                    problem,
                    out: out.clone(),
                },
            );
        }
        let (zeta, time_s) = out.get();
        // Modelled flop count at class A scale.
        let a_nnz_per_row = problem.nz_per_row as f64 + 1.0;
        let total_flops = problem.outer as f64
            * problem.inner as f64
            * (2.0 * a_nnz_per_row * problem.model_n as f64 + 10.0 * problem.model_n as f64);
        let nproc = (nodes * ppn) as f64;
        CgRun {
            zeta,
            time_s,
            mops_per_process: total_flops / time_s / nproc / 1e6,
        }
    })
}

impl elanib_core::simcache::CacheValue for CgRun {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::put_f64;
        let mut b = Vec::with_capacity(24);
        put_f64(&mut b, self.zeta);
        put_f64(&mut b, self.time_s);
        put_f64(&mut b, self.mops_per_process);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::take_f64;
        let run = CgRun {
            zeta: take_f64(&mut bytes)?,
            time_s: take_f64(&mut bytes)?,
            mops_per_process: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(run)
    }
}

/// The Figure 6 study: MOps/s/process and efficiency vs process count.
pub fn cg_study(
    network: Network,
    problem: CgProblem,
    proc_counts: &[usize],
    ppn: usize,
) -> Vec<(ScalingPoint, f64)> {
    cg_study_with_stats(network, problem, proc_counts, ppn).0
}

/// [`cg_study`], additionally reporting the sweep's throughput stats
/// (events dispatched, pool width, wall time) for perf records.
pub fn cg_study_with_stats(
    network: Network,
    problem: CgProblem,
    proc_counts: &[usize],
    ppn: usize,
) -> (Vec<(ScalingPoint, f64)>, elanib_core::SweepStats) {
    // Each process count is an independent simulation: sweep them in
    // parallel, then fold the T(1)-normalized efficiencies serially.
    // Cost hint = process count: CG's event count scales with ranks, so
    // guided placement claims the widest runs first instead of leaving
    // the biggest point to serialize at the tail of the pool.
    let hints: Vec<u64> = proc_counts.iter().map(|&p| p as u64).collect();
    let (runs, stats) = elanib_core::sweep_guided_with_stats(proc_counts, &hints, |&procs| {
        let nodes = procs / ppn.min(procs);
        let ppn_eff = procs / nodes;
        cg_run(network, problem, nodes, ppn_eff)
    });
    let mut out = Vec::new();
    let mut t1: Option<f64> = None;
    for (&procs, run) in proc_counts.iter().zip(&runs) {
        let nodes = procs / ppn.min(procs);
        let base = *t1.get_or_insert(run.time_s * procs as f64);
        out.push((
            ScalingPoint {
                nodes,
                procs,
                time_s: run.time_s,
                efficiency: base / (procs as f64 * run.time_s),
            },
            run.mops_per_process,
        ));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_and_diagonally_dominant() {
        let a = SparseSpd::generate(200, 11, 7);
        // Symmetry: collect (i,j,v) and check the transpose exists.
        let mut map = std::collections::HashMap::new();
        for i in 0..a.n {
            for e in a.row_ptr[i]..a.row_ptr[i + 1] {
                map.insert((i, a.cols[e]), a.vals[e]);
            }
        }
        for (&(i, j), &v) in &map {
            assert_eq!(map.get(&(j, i)), Some(&v), "asymmetric at ({i},{j})");
        }
        // Dominance: diag > sum |offdiag|.
        for i in 0..a.n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for e in a.row_ptr[i]..a.row_ptr[i + 1] {
                if a.cols[e] == i {
                    diag = a.vals[e];
                } else {
                    off += a.vals[e].abs();
                }
            }
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn serial_cg_converges() {
        let a = SparseSpd::generate(400, 11, 7);
        let (zeta, res) = serial_cg(&a, 5, 25, 20.0);
        assert!(res < 1e-6, "residual {res}");
        assert!(zeta > 20.0 && zeta < 25.0, "zeta {zeta}");
    }

    #[test]
    fn distributed_matches_serial() {
        let p = CgProblem {
            n: 256,
            outer: 3,
            inner: 10,
            ..class_a_reduced(256)
        };
        let a = SparseSpd::generate(p.n, p.nz_per_row, 0xC6);
        let (zeta_serial, _) = serial_cg(&a, p.outer, p.inner, p.shift);
        for net in Network::BOTH {
            let run = cg_run(net, p, 4, 1);
            assert!(
                (run.zeta - zeta_serial).abs() < 1e-10,
                "{net}: distributed ζ {} vs serial {zeta_serial}",
                run.zeta
            );
        }
    }

    #[test]
    fn distributed_identical_across_process_counts() {
        let p = CgProblem {
            n: 128,
            outer: 2,
            inner: 8,
            ..class_a_reduced(128)
        };
        let z1 = cg_run(Network::Elan4, p, 1, 1).zeta;
        let z4 = cg_run(Network::Elan4, p, 4, 1).zeta;
        let z8 = cg_run(Network::Elan4, p, 4, 2).zeta;
        assert!((z1 - z4).abs() < 1e-10);
        assert!((z1 - z8).abs() < 1e-10);
    }

    #[test]
    fn one_d_and_two_d_agree_with_serial_and_each_other() {
        let base = CgProblem {
            n: 256,
            outer: 3,
            inner: 10,
            ..class_a_reduced(256)
        };
        let a = SparseSpd::generate(base.n, base.nz_per_row, 0xC6);
        let (zeta_serial, _) = serial_cg(&a, base.outer, base.inner, base.shift);
        for p_count in [2usize, 4, 8] {
            let one_d = cg_run(
                Network::Elan4,
                CgProblem {
                    two_d: false,
                    ..base
                },
                p_count,
                1,
            );
            let two_d = cg_run(Network::Elan4, base, p_count, 1);
            assert!((one_d.zeta - zeta_serial).abs() < 1e-10, "1D at {p_count}");
            assert!((two_d.zeta - zeta_serial).abs() < 1e-10, "2D at {p_count}");
            // The decompositions differ in communication, not math.
            assert!((one_d.zeta - two_d.zeta).abs() < 1e-12);
        }
    }

    #[test]
    fn two_d_preserves_the_gap_one_d_loses() {
        // The reason 2-D is the faithful default: at larger process
        // counts the 1-D allgather is bulk-bandwidth-bound (both
        // networks saturate PCI-X equally) while 2-D keeps messages in
        // the mid-size regime where Elan-4's bandwidth advantage lives.
        let p2 = CgProblem {
            n: 2048,
            outer: 2,
            inner: 10,
            ..class_a_reduced(2048)
        };
        let p1 = CgProblem { two_d: false, ..p2 };
        // The 1-D allgather's bulk tail saturates PCI-X on both
        // networks at 32 processes; the 2-D pattern does not.
        let adv = |p: CgProblem| {
            let ib = cg_run(Network::InfiniBand, p, 32, 1);
            let el = cg_run(Network::Elan4, p, 32, 1);
            ib.time_s / el.time_s
        };
        let adv_2d = adv(p2);
        let adv_1d = adv(p1);
        assert!(
            adv_2d > adv_1d + 0.1,
            "2-D must preserve more of the Elan advantage at 32 procs: 2D {adv_2d} vs 1D {adv_1d}"
        );
        assert!(adv_2d > 1.25, "visible gap at 32 procs: {adv_2d}");
    }

    #[test]
    fn efficiency_drops_fast_and_elan_leads() {
        // Figure 6(b): both networks lose efficiency rapidly;
        // "Quadrics maintains a distinct advantage."
        let p = CgProblem {
            n: 512,
            outer: 2,
            inner: 10,
            ..class_a_reduced(512)
        };
        let el = cg_study(Network::Elan4, p, &[1, 8], 1);
        let ib = cg_study(Network::InfiniBand, p, &[1, 8], 1);
        assert!(
            el[1].0.efficiency < 0.9,
            "fixed-size CG must lose efficiency"
        );
        assert!(
            el[1].0.efficiency > ib[1].0.efficiency,
            "elan {} vs ib {}",
            el[1].0.efficiency,
            ib[1].0.efficiency
        );
    }
}
