//! # elanib-apps — the paper's application benchmarks
//!
//! Three applications, chosen by the paper to "cover a broad scope of
//! application characteristics" (§2.2):
//!
//! * [`md`] — LAMMPS proxy: spatial-decomposition molecular dynamics,
//!   scaled-size studies with the LJS and membrane problem sets
//!   (Figures 2, 3, 8)
//! * [`sweep3d`] — Sn neutron transport, KBA wavefront sweeps,
//!   fixed-size 150³ study (Figures 4, 5)
//! * [`nascg`] — NAS CG class A: fixed-size, cache-resident,
//!   communication-dominated conjugate gradient (Figure 6)
//!
//! Each module pairs a *real* computational kernel (tested for physics
//! / numerics correctness) with a parallel program that reproduces the
//! communication pattern at paper scale. CG runs real distributed
//! arithmetic end-to-end; MD and Sweep3D charge modelled compute time
//! (see DESIGN.md, "Scale decoupling").

pub mod md;
pub mod nascg;
pub mod sweep3d;

/// One point of a scaling study (Figures 2–6).
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub nodes: usize,
    pub procs: usize,
    pub time_s: f64,
    /// Scaled studies: `T(base)/T(n)`; fixed-size studies:
    /// `T(base)·base/(n·T(n))`. 1.0 = perfect scaling.
    pub efficiency: f64,
}

impl ScalingPoint {
    pub fn efficiency_pct(&self) -> f64 {
        self.efficiency * 100.0
    }
}
