//! Parallel Sweep3D proxy (Figures 4 and 5): KBA wavefront sweeps on a
//! 2D process grid with k-block and angle-block pipelining.
//!
//! Fixed-size study: the IJK grid stays constant while the process
//! count grows, so per-process compute shrinks while the pipeline
//! deepens — communication exposure grows and the cache-residency
//! factor shrinks (the §4.2.2 superlinear artifact).

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{bytes_of_f64, recv, send, Communicator, JobSpec, Network, RankProgram};
use elanib_nodesim::cache_speed_factor;
use elanib_simcore::Dur;

use crate::ScalingPoint;

/// A fixed-size Sweep3D problem.
#[derive(Clone, Copy, Debug)]
pub struct SweepProblem {
    /// Grid points per side (the paper's main study: 150).
    pub n: usize,
    /// k-block size (cells pipelined per stage).
    pub mk: usize,
    /// Angles per octant.
    pub angles_per_octant: usize,
    /// Angle-block size.
    pub mmi: usize,
    /// Time per cell-angle update on one 3.06 GHz Xeon, cache-resident.
    pub time_per_cell_angle: Dur,
    /// Worst-case slowdown when the working set falls out of cache.
    pub cache_penalty: f64,
    /// Memory intensity (2 PPN dilation coupling).
    pub mem_intensity: f64,
    /// Sweep iterations measured.
    pub iterations: u32,
}

/// The paper's 150³ input (§2.2.2).
pub fn sweep150() -> SweepProblem {
    SweepProblem {
        n: 150,
        mk: 5,
        angles_per_octant: 6,
        mmi: 3,
        time_per_cell_angle: Dur::from_ns(50),
        cache_penalty: 1.35,
        mem_intensity: 0.5,
        iterations: 1,
    }
}

/// Variant used for the Figure 5 input-size family.
pub fn sweep_cube(n: usize) -> SweepProblem {
    SweepProblem { n, ..sweep150() }
}

/// Near-square 2D factorization p = px × py with px ≥ py.
pub fn decompose2(p: usize) -> (usize, usize) {
    let mut best = (p, 1);
    for py in 1..=p {
        if p.is_multiple_of(py) {
            let px = p / py;
            if px >= py {
                best = (px, py);
            } else {
                break;
            }
        }
    }
    best
}

#[derive(Clone)]
struct SweepProxy {
    problem: SweepProblem,
    out_time_s: Rc<Cell<f64>>,
    out_flux: Rc<Cell<f64>>,
}

impl RankProgram for SweepProxy {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let p = self.problem;
            let nprocs = c.size();
            let me = c.rank();
            let sim = c.sim();
            let (px, py) = decompose2(nprocs);
            let (mx, my) = (me % px, me / px);
            // Local sub-grid extents; the remainder is spread over the
            // low-index ranks, as Sweep3D's BALANCE routine does.
            let it = p.n / px + usize::from(mx < p.n % px);
            let jt = p.n / py + usize::from(my < p.n % py);
            let kt = p.n;

            let k_blocks = kt.div_ceil(p.mk);
            let a_blocks = p.angles_per_octant.div_ceil(p.mmi);
            // Per-block compute, scaled by cache residency of the
            // local working set. The hot set per sweep is the
            // persistent per-(i,j)-column state (flux accumulators,
            // cross sections, boundary planes) — ~90 bytes per column.
            // With 150³ this overflows the 512 KB L2 at 1 process and
            // fits from 4 processes up, producing exactly the paper's
            // superlinear 1→4 jump (§4.2.2).
            let ws = (it * jt * 90) as u64;
            let cache = cache_speed_factor(512 * 1024, ws, p.cache_penalty);
            let cells_per_block = it * jt * p.mk.min(kt) * p.mmi;
            let block_compute = Dur::from_ps(
                (p.time_per_cell_angle.as_ps() as f64 * cells_per_block as f64 * cache) as u64,
            );
            // Face messages: angular flux on the block's downstream
            // faces, 8 bytes per cell-angle.
            let bytes_i = (jt * p.mk * p.mmi * 8) as u64;
            let bytes_j = (it * p.mk * p.mmi * 8) as u64;
            let payload = bytes_of_f64(&[me as f64; 4]);

            barrier(&c).await;
            let t0 = sim.now();
            let mut flux_acc = 0.0f64;
            for _iter in 0..p.iterations {
                // 8 octants = 4 (i,j) sweep directions × 2 z-hemispheres.
                for octant in 0..8usize {
                    let sx = octant % 2 == 0; // sweep +i ?
                    let sy = (octant / 2) % 2 == 0; // sweep +j ?
                    let up_i = if sx {
                        mx.checked_sub(1).map(|x| my * px + x)
                    } else {
                        (mx + 1 < px).then(|| my * px + mx + 1)
                    };
                    let up_j = if sy {
                        my.checked_sub(1).map(|y| (y) * px + mx)
                    } else {
                        (my + 1 < py).then(|| (my + 1) * px + mx)
                    };
                    let down_i = if sx {
                        (mx + 1 < px).then(|| my * px + mx + 1)
                    } else {
                        mx.checked_sub(1).map(|x| my * px + x)
                    };
                    let down_j = if sy {
                        (my + 1 < py).then(|| (my + 1) * px + mx)
                    } else {
                        my.checked_sub(1).map(|y| y * px + mx)
                    };
                    let tag = octant as i64;
                    for _stage in 0..k_blocks * a_blocks {
                        if let Some(src) = up_i {
                            let m = recv(&c, Some(src), Some(tag)).await;
                            flux_acc += elanib_mpi::f64_of_bytes(&m.data)[0];
                        }
                        if let Some(src) = up_j {
                            let m = recv(&c, Some(src), Some(tag)).await;
                            flux_acc += elanib_mpi::f64_of_bytes(&m.data)[0];
                        }
                        c.compute(block_compute, p.mem_intensity).await;
                        if let Some(dst) = down_i {
                            send(&c, dst, tag, payload.clone(), bytes_i).await;
                        }
                        if let Some(dst) = down_j {
                            send(&c, dst, tag, payload.clone(), bytes_j).await;
                        }
                    }
                }
                // Convergence test: global flux norm (the iterative
                // scattering-source step of §2.2.2).
                let norm = allreduce(&c, Op::Sum, &[1.0 + flux_acc * 0.0]).await;
                if me == 0 {
                    self.out_flux.set(norm[0]);
                }
            }
            barrier(&c).await;
            if me == 0 {
                self.out_time_s
                    .set(sim.now().since(t0).as_secs_f64() / p.iterations as f64);
            }
        }
    }
}

/// Run one Sweep3D job; returns seconds per sweep iteration.
pub fn sweep_time(network: Network, problem: SweepProblem, nodes: usize, ppn: usize) -> f64 {
    elanib_core::simcache::get_or_compute("sweep3d.time", &(network, problem, nodes, ppn), || {
        let out = Rc::new(Cell::new(0.0));
        let flux = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes,
                ppn,
                seed: 31,
            },
            SweepProxy {
                problem,
                out_time_s: out.clone(),
                out_flux: flux.clone(),
            },
        );
        assert_eq!(flux.get(), (nodes * ppn) as f64, "convergence allreduce");
        out.get()
    })
}

/// Grind time in nanoseconds per cell-angle (Figure 4(a)'s y-axis).
pub fn grind_time_ns(problem: SweepProblem, time_s: f64, procs: usize) -> f64 {
    let work = problem.n.pow(3) as f64 * (8 * problem.angles_per_octant) as f64;
    time_s * 1e9 / (work / procs as f64)
}

/// Fixed-size scaling study (Figure 4): efficiency is
/// `T(1) / (p · T(p))` — superlinear values > 1 are expected at small
/// p because of cache residency.
pub fn sweep_study(
    network: Network,
    problem: SweepProblem,
    proc_counts: &[usize],
    ppn: usize,
) -> Vec<ScalingPoint> {
    for &procs in proc_counts {
        assert_eq!(procs % ppn, 0, "procs must be a multiple of ppn");
    }
    // Independent fixed-size jobs fan out through the sweep engine;
    // the T(1)-normalized efficiency fold stays serial.
    let times = elanib_core::sweep(proc_counts, |&procs| {
        sweep_time(network, problem, procs / ppn, ppn)
    });
    let mut out = Vec::new();
    let mut t1 = None;
    for (&procs, &t) in proc_counts.iter().zip(&times) {
        let base = *t1.get_or_insert(t * proc_counts[0] as f64);
        out.push(ScalingPoint {
            nodes: procs / ppn,
            procs,
            time_s: t,
            efficiency: base / (procs as f64 * t),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose2_is_near_square() {
        assert_eq!(decompose2(1), (1, 1));
        assert_eq!(decompose2(4), (2, 2));
        assert_eq!(decompose2(9), (3, 3));
        assert_eq!(decompose2(16), (4, 4));
        assert_eq!(decompose2(25), (5, 5));
        assert_eq!(decompose2(6), (3, 2));
    }

    #[test]
    fn single_proc_time_matches_work_model() {
        let p = SweepProblem {
            n: 30,
            ..sweep150()
        };
        let t = sweep_time(Network::Elan4, p, 1, 1);
        // 30³ cells × 48 angles × 50 ns × cache factor.
        let ws = 30u64 * 30 * 90;
        let cache = cache_speed_factor(512 * 1024, ws, 1.35);
        let expect = 30f64.powi(3) * 48.0 * 50e-9 * cache;
        assert!((t - expect).abs() / expect < 0.02, "t={t}, expect {expect}");
    }

    #[test]
    fn superlinear_speedup_from_one_to_four() {
        // §4.2.2: "Sweep3d exhibits a superlinear speedup when moving
        // from 1 to 4 processors ... attributable to the unscaled
        // problem fitting in cache." Needs the full 150³ input: the
        // one-process working set must overflow L2.
        let pts = sweep_study(Network::Elan4, sweep150(), &[1, 4], 1);
        assert!(
            pts[1].efficiency > 1.05,
            "expected superlinear efficiency, got {}",
            pts[1].efficiency
        );
    }

    #[test]
    fn wavefront_is_deadlock_free_on_odd_grids() {
        // 3x2 grid exercises asymmetric up/down neighbor logic.
        let p = SweepProblem {
            n: 24,
            iterations: 1,
            ..sweep150()
        };
        let t = sweep_time(Network::InfiniBand, p, 6, 1);
        assert!(t > 0.0);
    }
}
