//! Sweep3D: real diamond-difference sweep kernel + KBA parallel proxy.

pub mod kernel;
pub mod proxy;

pub use kernel::SweepGrid;
pub use proxy::{
    decompose2, grind_time_ns, sweep150, sweep_cube, sweep_study, sweep_time, SweepProblem,
};
