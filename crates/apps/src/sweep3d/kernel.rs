//! A real (serial) discrete-ordinates transport sweep kernel.
//!
//! Solves the streaming operator of a one-group, time-independent Sn
//! problem on an IJK grid with diamond-difference closure — the
//! per-cell recurrence that Sweep3D pipelines (§2.2.2). The parallel
//! proxy charges modelled time for the 150³ problem; this kernel makes
//! the recurrence itself testable.

/// One octant's worth of sweep over a cuboid grid.
pub struct SweepGrid {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Total cross-section σ_t per cell.
    pub sigma_t: f64,
    /// Uniform source q per cell.
    pub source: f64,
    /// Cell widths.
    pub dx: f64,
    pub dy: f64,
    pub dz: f64,
}

impl SweepGrid {
    pub fn cube(n: usize) -> SweepGrid {
        SweepGrid {
            nx: n,
            ny: n,
            nz: n,
            sigma_t: 1.0,
            source: 1.0,
            dx: 1.0,
            dy: 1.0,
            dz: 1.0,
        }
    }

    /// Sweep one angle (direction cosines µ, η, ξ > 0, sweeping from
    /// the low corner) with vacuum boundary conditions. Returns the
    /// scalar flux accumulated per cell (flattened x-major) and the
    /// outgoing boundary flux on the high-x face (used as the message
    /// payload in the parallel proxy).
    pub fn sweep_angle(&self, mu: f64, eta: f64, xi: f64) -> (Vec<f64>, Vec<f64>) {
        self.sweep_angle_with_bc(mu, eta, xi, &vec![0.0; self.ny * self.nz])
    }

    /// As [`SweepGrid::sweep_angle`], but with a prescribed incoming
    /// angular flux on the low-x face (`psi_x_in`, indexed `j + ny*k`).
    /// This is the domain-decomposition contract: sweeping two slabs
    /// in sequence, feeding the first slab's outgoing flux into the
    /// second, must equal sweeping the joined grid — the invariant the
    /// distributed wavefront relies on (verified in
    /// `tests/sweep_realdata.rs`).
    pub fn sweep_angle_with_bc(
        &self,
        mu: f64,
        eta: f64,
        xi: f64,
        psi_x_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(mu > 0.0 && eta > 0.0 && xi > 0.0);
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        assert_eq!(psi_x_in.len(), ny * nz, "boundary flux shape");
        let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
        let mut cell_flux = vec![0.0; nx * ny * nz];
        // Incoming angular fluxes on the three upstream faces.
        let mut psi_x = psi_x_in.to_vec(); // face j,k
        let mut psi_y = vec![vec![0.0; nx]; nz]; // per k: row of x
        let mut psi_z = vec![0.0; nx * ny];
        let (cx, cy, cz) = (2.0 * mu / self.dx, 2.0 * eta / self.dy, 2.0 * xi / self.dz);
        for k in 0..nz {
            let mut psi_y_row = psi_y[k].clone();
            for j in 0..ny {
                let mut psi_in_x = psi_x[j + ny * k];
                for i in 0..nx {
                    let psi_in_y = psi_y_row[i];
                    let psi_in_z = psi_z[i + nx * j];
                    // Diamond-difference balance equation.
                    let psi_c = (self.source + cx * psi_in_x + cy * psi_in_y + cz * psi_in_z)
                        / (self.sigma_t + cx + cy + cz);
                    // Outgoing = 2*center - incoming (diamond closure),
                    // clipped at zero (negative-flux fixup).
                    let out_x = (2.0 * psi_c - psi_in_x).max(0.0);
                    let out_y = (2.0 * psi_c - psi_in_y).max(0.0);
                    let out_z = (2.0 * psi_c - psi_in_z).max(0.0);
                    cell_flux[idx(i, j, k)] += psi_c;
                    psi_in_x = out_x;
                    psi_y_row[i] = out_y;
                    psi_z[i + nx * j] = out_z;
                }
                psi_x[j + ny * k] = psi_in_x;
            }
            psi_y[k] = psi_y_row;
        }
        (cell_flux, psi_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluxes_are_positive_and_finite() {
        let g = SweepGrid::cube(8);
        let (flux, boundary) = g.sweep_angle(0.5, 0.4, 0.3);
        assert!(flux.iter().all(|&f| f > 0.0 && f.is_finite()));
        assert!(boundary.iter().all(|&f| f >= 0.0 && f.is_finite()));
    }

    #[test]
    fn flux_saturates_toward_source_over_sigma() {
        // Deep inside an absorbing medium with uniform source, the
        // angular flux approaches q/σ_t.
        let mut g = SweepGrid::cube(24);
        g.sigma_t = 2.0;
        g.source = 3.0;
        let (flux, _) = g.sweep_angle(0.6, 0.6, 0.6);
        let idx = |i: usize| i + 24 * (i + 24 * i);
        let deep = flux[idx(20)];
        assert!(
            (deep - 1.5).abs() < 0.05,
            "deep flux {deep}, expected ≈ q/σ = 1.5"
        );
    }

    #[test]
    fn flux_grows_with_depth_from_vacuum_boundary() {
        let g = SweepGrid::cube(16);
        let (flux, _) = g.sweep_angle(0.5, 0.5, 0.5);
        let idx = |i: usize| i + 16 * (i + 16 * i);
        // Flux builds up with optical depth (diamond difference may
        // oscillate cell-to-cell near the boundary, so compare across
        // a few mean free paths rather than adjacent cells).
        assert!(flux[idx(0)] > 0.0);
        assert!(flux[idx(6)] > flux[idx(0)]);
        assert!(flux[idx(12)] >= flux[idx(6)] * 0.99);
    }

    #[test]
    fn sweep_is_deterministic() {
        let g = SweepGrid::cube(6);
        let (a, _) = g.sweep_angle(0.3, 0.5, 0.7);
        let (b, _) = g.sweep_angle(0.3, 0.5, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_flux_conserves_shape() {
        // Outgoing boundary flux must match a fresh sweep on a grid
        // twice as long fed with vacuum — i.e. domain decomposition in
        // x is exact when boundary fluxes are passed. (This is the
        // invariant the parallel wavefront relies on.)
        let long = SweepGrid {
            nx: 8,
            ..SweepGrid::cube(4)
        };
        let (_, out_long) = long.sweep_angle(0.5, 0.5, 0.5);

        let left = SweepGrid {
            nx: 4,
            ..SweepGrid::cube(4)
        };
        let (_, out_left) = left.sweep_angle(0.5, 0.5, 0.5);
        // Feed out_left into a second 4-wide sweep manually: replicate
        // by sweeping the left half then using its boundary as psi_x.
        // (We verify via a weaker but meaningful property: the long
        // grid's exit flux exceeds the half grid's, because flux builds
        // with depth.)
        let sum_long: f64 = out_long.iter().sum();
        let sum_left: f64 = out_left.iter().sum();
        assert!(sum_long > sum_left);
    }
}
