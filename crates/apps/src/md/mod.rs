//! LAMMPS proxy: real LJ physics kernel + parallel halo-exchange proxy.

pub mod kernel;
pub mod proxy;

pub use kernel::LjSystem;
pub use proxy::{decompose3, ljs, md_step_time, md_step_time_cfg, md_study, membrane, MdProblem};
