//! The parallel LAMMPS proxy (§2.2.1): spatial decomposition with
//! 6-way halo exchange, periodic global reductions, and a configurable
//! computation/communication overlap structure.
//!
//! This is a *proxy*: the communication pattern, message sizes, and
//! overlap structure are those of spatial-decomposition MD at the
//! paper's scale, while per-step force computation is charged through
//! the node model (`Communicator::compute`). The actual LJ physics is
//! validated separately in [`crate::md::kernel`].

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{
    bytes_of_f64, irecv, isend, waitall, Communicator, JobSpec, NetConfig, Network, RankProgram,
};
use elanib_simcore::Dur;

use crate::ScalingPoint;

/// A scaled-size MD problem (per-process work constant).
#[derive(Clone, Copy, Debug)]
pub struct MdProblem {
    pub name: &'static str,
    /// Atoms owned by each rank (scaled study: constant per process).
    pub atoms_per_rank: u64,
    /// Force+integration time per atom per step on one 3.06 GHz Xeon.
    pub time_per_atom_step: Dur,
    /// Memory intensity of the force kernel (drives 2 PPN dilation).
    pub mem_intensity: f64,
    /// Ghost-atom exchange volume per face per step.
    pub ghost_bytes_per_face: u64,
    /// Fraction of the force computation that the code structures
    /// *between* posting the halo exchange and waiting on it. The
    /// membrane problem "exploits asynchronous communications and
    /// successfully leverages overlap" (§4.2.1); LJS much less so.
    pub overlap_fraction: f64,
    /// Global energy/virial reduction every this many steps.
    pub allreduce_every: u32,
    /// Per-step, per-rank compute imbalance amplitude (density
    /// fluctuations in the decomposition). The slowest of n ranks sets
    /// the pace of every step, so this term alone makes efficiency
    /// decline with process count — on any network.
    pub jitter: f64,
    /// Measured timesteps (after warm-up).
    pub steps: u32,
}

/// The Lennard-Jones system problem set of Figure 2.
pub fn ljs() -> MdProblem {
    MdProblem {
        name: "LJS",
        atoms_per_rank: 32_000,
        time_per_atom_step: Dur::from_ns(150),
        mem_intensity: 0.30,
        ghost_bytes_per_face: 24 * 1024,
        overlap_fraction: 0.30,
        allreduce_every: 5,
        jitter: 0.08,
        steps: 30,
    }
}

/// The biomembrane problem set of Figures 3 and 8: high per-atom cost
/// (long-range + bonded terms) and aggressive overlap.
pub fn membrane() -> MdProblem {
    MdProblem {
        name: "membrane",
        atoms_per_rank: 16_000,
        time_per_atom_step: Dur::from_ns(125),
        mem_intensity: 0.18,
        ghost_bytes_per_face: 24 * 1024,
        overlap_fraction: 0.70,
        allreduce_every: 1,
        jitter: 0.05,
        steps: 30,
    }
}

/// Balanced 3-factor decomposition of `n` (px ≥ py ≥ pz, px·py·pz = n).
pub fn decompose3(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_score = usize::MAX;
    for px in 1..=n {
        if !n.is_multiple_of(px) {
            continue;
        }
        let rem = n / px;
        for py in 1..=rem {
            if !rem.is_multiple_of(py) {
                continue;
            }
            let pz = rem / py;
            // Minimize surface ~ spread between factors.
            let score = px.max(py).max(pz) - px.min(py).min(pz);
            if score < best_score {
                best_score = score;
                let mut dims = [px, py, pz];
                dims.sort_unstable_by(|a, b| b.cmp(a));
                best = (dims[0], dims[1], dims[2]);
            }
        }
    }
    best
}

/// Neighbor ranks of `me` in a periodic (px, py, pz) grid: one entry
/// per face whose neighbor is a *different* rank.
fn face_neighbors(me: usize, dims: (usize, usize, usize)) -> Vec<usize> {
    let (px, py, pz) = dims;
    let (x, y, z) = (me % px, (me / px) % py, me / (px * py));
    let idx = |x: usize, y: usize, z: usize| x + px * (y + py * z);
    let mut out = Vec::new();
    for (dim, size) in [(0usize, px), (1, py), (2, pz)] {
        if size == 1 {
            continue; // periodic self-neighbor: no message
        }
        // With only two ranks along a dimension, both periodic
        // directions reach the same neighbor: one message, not two.
        let dirs: &[usize] = if size == 2 { &[1] } else { &[1, size - 1] };
        for &dir in dirs {
            let n = match dim {
                0 => idx((x + dir) % px, y, z),
                1 => idx(x, (y + dir) % py, z),
                _ => idx(x, y, (z + dir) % pz),
            };
            if n != me {
                out.push(n);
            }
        }
    }
    out
}

#[derive(Clone)]
struct MdProxy {
    problem: MdProblem,
    /// Seconds per measured step, written by rank 0.
    out_step_s: Rc<Cell<f64>>,
    /// Validation: allreduce result seen (must equal n_ranks).
    out_checksum: Rc<Cell<f64>>,
}

impl RankProgram for MdProxy {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let p = self.problem;
            let n = c.size();
            let me = c.rank();
            let sim = c.sim();
            let dims = decompose3(n);
            let neighbors = face_neighbors(me, dims);
            let compute_total = Dur::from_ps(p.time_per_atom_step.as_ps() * p.atoms_per_rank);
            let ghost = bytes_of_f64(&vec![me as f64; 32]);

            // Deterministic per-(rank, step) load imbalance in
            // [1-jitter, 1+jitter].
            let imbalance = move |step: u64| {
                let mut h = (me as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(step.wrapping_mul(0xD1B54A32D192ED03));
                h ^= h >> 31;
                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                h ^= h >> 29;
                1.0 + p.jitter * ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
            };

            let step_fn = |c: C, ghost: elanib_mpi::Bytes, neighbors: Vec<usize>, step_no: u64| async move {
                let total = compute_total.scale(imbalance(step_no));
                let t_overlap = total.scale(p.overlap_fraction);
                let t_rest = total - t_overlap;
                // Post receives, then sends, then overlap compute.
                let mut reqs = Vec::with_capacity(neighbors.len() * 2);
                for &nb in &neighbors {
                    reqs.push(irecv(&c, Some(nb), Some(7)).await);
                }
                for &nb in &neighbors {
                    reqs.push(isend(&c, nb, 7, ghost.clone(), p.ghost_bytes_per_face).await);
                }
                c.compute(t_overlap, p.mem_intensity).await;
                waitall(&c, reqs).await;
                c.compute(t_rest, p.mem_intensity).await;
            };

            // Warm-up (builds neighbor paths, fills registration
            // caches) then the measured section.
            for w in 0..3u64 {
                step_fn(c.clone(), ghost.clone(), neighbors.clone(), 1000 + w).await;
            }
            barrier(&c).await;
            let t0 = sim.now();
            for s in 0..p.steps {
                step_fn(c.clone(), ghost.clone(), neighbors.clone(), s as u64).await;
                if s % p.allreduce_every == 0 {
                    let sums = allreduce(&c, Op::Sum, &[1.0, me as f64, 0.5]).await;
                    if me == 0 {
                        self.out_checksum.set(sums[0]);
                    }
                }
            }
            barrier(&c).await;
            if me == 0 {
                let total = sim.now().since(t0).as_secs_f64();
                self.out_step_s.set(total / p.steps as f64);
            }
        }
    }
}

/// Run one MD job; returns seconds per timestep.
pub fn md_step_time(network: Network, problem: MdProblem, nodes: usize, ppn: usize) -> f64 {
    md_step_time_cfg(network, problem, nodes, ppn, &NetConfig::default())
}

/// [`md_step_time`] with explicit stack parameters — the entry point
/// of the ablation studies.
pub fn md_step_time_cfg(
    network: Network,
    problem: MdProblem,
    nodes: usize,
    ppn: usize,
    cfg: &NetConfig,
) -> f64 {
    // The point is pure in (network, problem, nodes, ppn, cfg) — the
    // seed is fixed — so it is content-addressable.
    // `cfg` is part of the key; its Debug form includes any fault plan,
    // so fault-injected points never alias clean ones.
    elanib_core::simcache::get_or_compute(
        "md.step",
        &(network, problem, nodes, ppn, cfg.clone()),
        || {
            let out = Rc::new(Cell::new(0.0));
            let check = Rc::new(Cell::new(0.0));
            elanib_mpi::run_job_configured(
                JobSpec {
                    network,
                    nodes,
                    ppn,
                    seed: 21,
                },
                cfg,
                MdProxy {
                    problem,
                    out_step_s: out.clone(),
                    out_checksum: check.clone(),
                },
            );
            assert_eq!(
                check.get(),
                (nodes * ppn) as f64,
                "allreduce checksum must equal the rank count"
            );
            out.get()
        },
    )
}

/// The scaled-size scaling study of Figures 2/3: per-step time and
/// scaling efficiency versus node count (normalized to the smallest
/// node count in the sweep, per curve).
///
/// The per-count jobs are independent simulations, so they run through
/// the parallel sweep engine; only the efficiency fold (which needs
/// the first count's time as the base) is serial.
pub fn md_study(
    network: Network,
    problem: MdProblem,
    node_counts: &[usize],
    ppn: usize,
) -> Vec<ScalingPoint> {
    let times = elanib_core::sweep(node_counts, |&nodes| {
        md_step_time(network, problem, nodes, ppn)
    });
    let mut out = Vec::new();
    let mut base = None;
    for (&nodes, &t) in node_counts.iter().zip(&times) {
        let b = *base.get_or_insert(t);
        out.push(ScalingPoint {
            nodes,
            procs: nodes * ppn,
            time_s: t,
            efficiency: b / t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose3_balanced() {
        assert_eq!(decompose3(1), (1, 1, 1));
        assert_eq!(decompose3(2), (2, 1, 1));
        assert_eq!(decompose3(8), (2, 2, 2));
        assert_eq!(decompose3(12), (3, 2, 2));
        assert_eq!(decompose3(32), (4, 4, 2));
        assert_eq!(decompose3(64), (4, 4, 4));
    }

    #[test]
    fn face_neighbors_symmetry() {
        // Neighborhood relation must be symmetric (everyone who I send
        // to also sends to me) — otherwise the halo deadlocks.
        for n in [2usize, 4, 8, 12, 32] {
            let dims = decompose3(n);
            for me in 0..n {
                for nb in face_neighbors(me, dims) {
                    assert!(
                        face_neighbors(nb, dims).contains(&me),
                        "asymmetric at n={n}: {me} -> {nb}"
                    );
                }
            }
        }
    }

    #[test]
    fn face_neighbor_counts() {
        // 2x2x2: every rank has 3 distinct neighbors (each dimension
        // size 2 gives one distinct neighbor, both directions collide).
        let dims = decompose3(8);
        for me in 0..8 {
            assert_eq!(face_neighbors(me, dims).len(), 3);
        }
        // 4x4x2: x,y give 2 each, z gives 1 -> 5.
        let dims = decompose3(32);
        assert_eq!(face_neighbors(0, dims).len(), 5);
    }

    #[test]
    fn single_rank_runs_compute_only() {
        let t = md_step_time(Network::Elan4, ljs(), 1, 1);
        let expect = 150e-9 * 32_000.0;
        assert!(
            (t - expect).abs() / expect < 0.05,
            "1-rank step time {t}, expected ~{expect}"
        );
    }

    #[test]
    fn elan_scales_at_least_as_well_as_ib() {
        let p = MdProblem { steps: 10, ..ljs() };
        let e = md_study(Network::Elan4, p, &[1, 4], 1);
        let i = md_study(Network::InfiniBand, p, &[1, 4], 1);
        assert!(e[1].efficiency >= i[1].efficiency - 0.01);
        assert!(e[1].efficiency > 0.5 && i[1].efficiency > 0.5);
    }
}
