// Numerics convention: `for k in 0..3` indexes the xyz axes of
// several parallel arrays at once; clippy's iterator suggestion
// obscures that.
#![allow(clippy::needless_range_loop)]

//! A real (serial) Lennard-Jones molecular-dynamics kernel.
//!
//! This is the physics underneath the LAMMPS proxy: velocity-Verlet
//! integration of an LJ fluid with a cutoff and cell lists, in reduced
//! units — the same algorithm class as the paper's LJS data set
//! (§2.2.1, "atomic simulations of Lennard-Jones systems"). The
//! parallel proxy in [`crate::md::proxy`] charges *modelled* time for
//! the paper-scale problem; this kernel exists so the physics itself is
//! testable (energy conservation, momentum conservation, correct pair
//! forces).

/// LJ system state in reduced units (σ = ε = m = 1).
pub struct LjSystem {
    pub pos: Vec<[f64; 3]>,
    pub vel: Vec<[f64; 3]>,
    pub force: Vec<[f64; 3]>,
    /// Cubic box edge (periodic).
    pub box_len: f64,
    pub cutoff: f64,
}

impl LjSystem {
    /// Atoms on a simple cubic lattice at the given number density,
    /// with small deterministic velocity perturbations (zero net
    /// momentum).
    pub fn lattice(n_per_side: usize, density: f64) -> LjSystem {
        let n = n_per_side.pow(3);
        let box_len = (n as f64 / density).cbrt();
        let a = box_len / n_per_side as f64;
        let mut pos = Vec::with_capacity(n);
        let mut vel = Vec::with_capacity(n);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rand01 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n_per_side {
            for j in 0..n_per_side {
                for k in 0..n_per_side {
                    pos.push([
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ]);
                    vel.push([rand01() - 0.5, rand01() - 0.5, rand01() - 0.5]);
                }
            }
        }
        // Remove net momentum so the center of mass stays put.
        let mut p = [0.0; 3];
        for v in &vel {
            for d in 0..3 {
                p[d] += v[d];
            }
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= p[d] / n as f64;
            }
        }
        let mut sys = LjSystem {
            pos,
            vel,
            force: vec![[0.0; 3]; n],
            box_len,
            cutoff: 2.5,
        };
        sys.compute_forces();
        sys
    }

    pub fn n_atoms(&self) -> usize {
        self.pos.len()
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    fn min_image(&self, i: usize, j: usize) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let mut x = self.pos[j][k] - self.pos[i][k];
            x -= self.box_len * (x / self.box_len).round();
            d[k] = x;
        }
        d
    }

    /// Recompute forces (O(n²) with cutoff; fine at kernel-test sizes).
    /// Returns the potential energy.
    pub fn compute_forces(&mut self) -> f64 {
        let n = self.n_atoms();
        for f in &mut self.force {
            *f = [0.0; 3];
        }
        let rc2 = self.cutoff * self.cutoff;
        // Shift so the potential is continuous at the cutoff.
        let rc6 = rc2.powi(3);
        let e_cut = 4.0 * (1.0 / (rc6 * rc6) - 1.0 / rc6);
        let mut pe = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 >= rc2 || r2 == 0.0 {
                    continue;
                }
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2.powi(3);
                let inv_r12 = inv_r6 * inv_r6;
                pe += 4.0 * (inv_r12 - inv_r6) - e_cut;
                let fmag = (48.0 * inv_r12 - 24.0 * inv_r6) * inv_r2;
                for k in 0..3 {
                    self.force[i][k] -= fmag * d[k];
                    self.force[j][k] += fmag * d[k];
                }
            }
        }
        pe
    }

    /// One velocity-Verlet step; returns (kinetic, potential) energy
    /// after the step.
    pub fn step(&mut self, dt: f64) -> (f64, f64) {
        let n = self.n_atoms();
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
                self.pos[i][k] += dt * self.vel[i][k];
                self.pos[i][k] = self.pos[i][k].rem_euclid(self.box_len);
            }
        }
        let pe = self.compute_forces();
        let mut ke = 0.0;
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
                ke += 0.5 * self.vel[i][k] * self.vel[i][k];
            }
        }
        (ke, pe)
    }

    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forces_are_antisymmetric_pairwise() {
        // Newton's third law: total force is zero.
        let mut sys = LjSystem::lattice(3, 0.8);
        sys.compute_forces();
        let mut total = [0.0; 3];
        for f in &sys.force {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for t in total {
            assert!(t.abs() < 1e-9, "net force {t}");
        }
    }

    #[test]
    fn two_atom_force_matches_analytic() {
        // Two atoms at distance r: |F| = 48 r^-13 - 24 r^-7.
        let mut sys = LjSystem::lattice(2, 0.005); // large box (edge ~11.7)
        sys.pos = vec![[5.0, 5.0, 5.0], [6.2, 5.0, 5.0]];
        sys.vel = vec![[0.0; 3]; 2];
        sys.force = vec![[0.0; 3]; 2];
        sys.pos.truncate(2);
        sys.compute_forces();
        let r: f64 = 1.2;
        let expect = 48.0 * r.powi(-13) - 24.0 * r.powi(-7);
        // Force on atom 0 points away from atom 1 when repulsive.
        let got = -sys.force[0][0];
        assert!(
            (got - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn energy_is_conserved_in_nve() {
        let mut sys = LjSystem::lattice(4, 0.7);
        let pe0 = sys.compute_forces();
        let ke0: f64 = sys
            .vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        let e0 = ke0 + pe0;
        let mut e_last = e0;
        for _ in 0..200 {
            let (ke, pe) = sys.step(0.002);
            e_last = ke + pe;
        }
        let drift = ((e_last - e0) / e0).abs();
        assert!(drift < 2e-3, "energy drift {drift}");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut sys = LjSystem::lattice(4, 0.7);
        for _ in 0..100 {
            sys.step(0.002);
        }
        for p in sys.total_momentum() {
            assert!(p.abs() < 1e-9, "momentum {p}");
        }
    }

    #[test]
    fn atoms_stay_in_box() {
        let mut sys = LjSystem::lattice(3, 0.8);
        for _ in 0..100 {
            sys.step(0.005);
        }
        for p in &sys.pos {
            for k in 0..3 {
                assert!(p[k] >= 0.0 && p[k] < sys.box_len);
            }
        }
    }
}
