//! Real-data distributed sweep: ranks own x-slabs of the grid, pass
//! actual angular boundary fluxes downstream over the simulated MPI,
//! and the assembled solution must equal the serial kernel bit-for-bit
//! (the arithmetic is identical; only the traversal is distributed).
//!
//! This is the correctness backbone under the Figure 4/5 proxy: it
//! proves the wavefront protocol (receive upstream flux → sweep local
//! slab → send downstream flux) transports the physics exactly.

use std::cell::RefCell;
use std::rc::Rc;

use elanib_apps::sweep3d::SweepGrid;
use elanib_mpi::{
    bytes_of_f64, f64_of_bytes, recv, send, Communicator, JobSpec, Network, RankProgram,
};

const NY: usize = 12;
const NZ: usize = 10;
const ANGLES: [(f64, f64, f64); 3] = [(0.5, 0.5, 0.5), (0.9, 0.3, 0.2), (0.35, 0.88, 0.31)];

fn slab(nx: usize) -> SweepGrid {
    SweepGrid {
        nx,
        ny: NY,
        nz: NZ,
        sigma_t: 1.3,
        source: 0.7,
        dx: 0.8,
        dy: 1.1,
        dz: 0.9,
    }
}

#[derive(Clone)]
struct DistributedSweep {
    /// Cells along x per rank.
    nx_local: usize,
    /// (rank, angle index) -> local cell flux, written per rank.
    out: Rc<RefCell<Vec<Vec<f64>>>>,
    /// Outgoing boundary flux of the last rank, per angle.
    out_boundary: Rc<RefCell<Vec<Vec<f64>>>>,
}

impl RankProgram for DistributedSweep {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let me = c.rank();
            let n = c.size();
            let grid = slab(self.nx_local);
            for (a, &(mu, eta, xi)) in ANGLES.iter().enumerate() {
                // Receive incoming boundary flux from upstream (vacuum
                // at the global low-x face).
                let psi_in = if me == 0 {
                    vec![0.0; NY * NZ]
                } else {
                    let m = recv(&c, Some(me - 1), Some(a as i64)).await;
                    f64_of_bytes(&m.data)
                };
                let (flux, psi_out) = grid.sweep_angle_with_bc(mu, eta, xi, &psi_in);
                if me + 1 < n {
                    send(
                        &c,
                        me + 1,
                        a as i64,
                        bytes_of_f64(&psi_out),
                        (psi_out.len() * 8) as u64,
                    )
                    .await;
                } else {
                    self.out_boundary.borrow_mut()[a] = psi_out;
                }
                self.out.borrow_mut()[me * ANGLES.len() + a] = flux;
            }
        }
    }
}

fn run_distributed(
    network: Network,
    ranks: usize,
    nx_total: usize,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    assert_eq!(nx_total % ranks, 0);
    let out = Rc::new(RefCell::new(vec![Vec::new(); ranks * ANGLES.len()]));
    let out_boundary = Rc::new(RefCell::new(vec![Vec::new(); ANGLES.len()]));
    elanib_mpi::run_job(
        JobSpec {
            network,
            nodes: ranks,
            ppn: 1,
            seed: 77,
        },
        DistributedSweep {
            nx_local: nx_total / ranks,
            out: out.clone(),
            out_boundary: out_boundary.clone(),
        },
    );
    (
        Rc::try_unwrap(out).unwrap().into_inner(),
        Rc::try_unwrap(out_boundary).unwrap().into_inner(),
    )
}

#[test]
fn distributed_sweep_equals_serial() {
    let nx_total = 16;
    let serial = slab(nx_total);
    for net in Network::BOTH {
        for ranks in [2usize, 4, 8] {
            let (fluxes, boundaries) = run_distributed(net, ranks, nx_total);
            let nx_local = nx_total / ranks;
            for (a, &(mu, eta, xi)) in ANGLES.iter().enumerate() {
                let (serial_flux, serial_out) = serial.sweep_angle(mu, eta, xi);
                // Reassemble the distributed flux in global x order.
                for r in 0..ranks {
                    let local = &fluxes[r * ANGLES.len() + a];
                    assert_eq!(local.len(), nx_local * NY * NZ);
                    for k in 0..NZ {
                        for j in 0..NY {
                            for i in 0..nx_local {
                                let g = (r * nx_local + i) + nx_total * (j + NY * k);
                                let l = i + nx_local * (j + NY * k);
                                let (sv, dv) = (serial_flux[g], local[l]);
                                assert!(
                                    (sv - dv).abs() <= 1e-12 * sv.abs().max(1.0),
                                    "{net}, {ranks} ranks, angle {a}: cell ({i},{j},{k}) of rank {r}: {dv} vs serial {sv}"
                                );
                            }
                        }
                    }
                }
                // The global outgoing boundary matches too.
                let dist_out = &boundaries[a];
                for (s, d) in serial_out.iter().zip(dist_out) {
                    assert!((s - d).abs() <= 1e-12 * s.abs().max(1.0));
                }
            }
        }
    }
}

#[test]
fn slab_chaining_invariant_holds_serially() {
    // The kernel-level contract without any MPI: sweeping two slabs in
    // sequence equals sweeping the joined grid.
    let joined = slab(10);
    let left = slab(6);
    let right = slab(4);
    for &(mu, eta, xi) in &ANGLES {
        let (jf, jout) = joined.sweep_angle(mu, eta, xi);
        let (lf, lout) = left.sweep_angle(mu, eta, xi);
        let (rf, rout) = right.sweep_angle_with_bc(mu, eta, xi, &lout);
        for k in 0..NZ {
            for j in 0..NY {
                for i in 0..10usize {
                    let jv = jf[i + 10 * (j + NY * k)];
                    let dv = if i < 6 {
                        lf[i + 6 * (j + NY * k)]
                    } else {
                        rf[(i - 6) + 4 * (j + NY * k)]
                    };
                    assert!((jv - dv).abs() <= 1e-12 * jv.abs().max(1.0));
                }
            }
        }
        for (a, b) in jout.iter().zip(&rout) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }
}
