//! Locks in the paper's application-level findings (Figures 2, 3, 6):
//! these tests run the actual scaling studies at reduced step counts
//! and assert the qualitative results the paper reports. If a model
//! constant drifts enough to change the story, one of these fails.

use elanib_apps::md::{ljs, md_step_time, md_study, membrane, MdProblem};
use elanib_apps::nascg::{cg_study, class_a_reduced, CgProblem};
use elanib_apps::sweep3d::{sweep150, sweep_study};
use elanib_mpi::Network;

fn short(p: MdProblem) -> MdProblem {
    MdProblem { steps: 10, ..p }
}

/// Figure 3 at 32 nodes — the paper's headline application numbers:
/// "Scaling efficiencies of 93% for 1 PPN runs and 91% for 2 PPN runs
/// [Elan-4] ... InfiniBand ... achieving only 84% ... 1 PPN and 77%
/// ... 2 PPN".
#[test]
fn membrane_32_node_efficiencies() {
    let nodes = [1usize, 8, 32];
    let p = short(membrane());
    let e1 = md_study(Network::Elan4, p, &nodes, 1)
        .last()
        .unwrap()
        .efficiency;
    let e2 = md_study(Network::Elan4, p, &nodes, 2)
        .last()
        .unwrap()
        .efficiency;
    let i1 = md_study(Network::InfiniBand, p, &nodes, 1)
        .last()
        .unwrap()
        .efficiency;
    let i2 = md_study(Network::InfiniBand, p, &nodes, 2)
        .last()
        .unwrap()
        .efficiency;
    assert!((0.90..0.98).contains(&e1), "Elan 1PPN {e1} (paper: 0.93)");
    assert!((0.88..0.98).contains(&e2), "Elan 2PPN {e2} (paper: 0.91)");
    assert!((0.76..0.88).contains(&i1), "IB 1PPN {i1} (paper: 0.84)");
    assert!((0.70..0.82).contains(&i2), "IB 2PPN {i2} (paper: 0.77)");
    // Elan's 1 vs 2 PPN curves are "extremely close"; IB's are not.
    assert!((e1 - e2).abs() < 0.03, "Elan PPN gap {}", e1 - e2);
    assert!(i1 - i2 > 0.025, "IB PPN gap {}", i1 - i2);
    // The network gap itself.
    assert!(e1 - i1 > 0.06, "1PPN network gap {}", e1 - i1);
    assert!(e2 - i2 > 0.10, "2PPN network gap {}", e2 - i2);
}

/// Figure 2: LJS. 1 PPN: Elan "marginally" better. 2 PPN: "much wider
/// margin between the Elan-4 2 PPN curve and the InfiniBand 2 PPN
/// curve", and 1 PPN outperforms 2 PPN in absolute time.
#[test]
fn ljs_ppn_margins() {
    let p = short(ljs());
    let t_i1 = md_step_time(Network::InfiniBand, p, 32, 1);
    let t_i2 = md_step_time(Network::InfiniBand, p, 32, 2);
    let t_e1 = md_step_time(Network::Elan4, p, 32, 1);
    let t_e2 = md_step_time(Network::Elan4, p, 32, 2);
    // 1 PPN beats 2 PPN on both networks (absolute time).
    assert!(
        t_i2 > t_i1 * 1.05,
        "IB 2PPN must cost >5%: {t_i1} vs {t_i2}"
    );
    assert!(t_e2 > t_e1 * 1.02, "Elan 2PPN must cost something");
    // Elan marginally ahead at 1 PPN (a few percent, not a blowout).
    let gap1 = t_i1 / t_e1;
    assert!((1.01..1.20).contains(&gap1), "1PPN time ratio {gap1}");
    // The 2 PPN margin is wider than the 1 PPN margin.
    let gap2 = t_i2 / t_e2;
    assert!(
        gap2 > gap1,
        "2PPN ratio {gap2} must exceed 1PPN ratio {gap1}"
    );
    // IB loses more going to 2 PPN than Elan does.
    assert!(
        t_i2 / t_i1 > t_e2 / t_e1,
        "IB 2PPN penalty {} must exceed Elan's {}",
        t_i2 / t_i1,
        t_e2 / t_e1
    );
}

/// Figure 4: superlinear 1→4 speedup from cache residency, and the
/// Elan-4 advantage at mid-range process counts (9, 16).
#[test]
fn sweep3d_superlinear_and_elan_lead() {
    let p = sweep150();
    let counts = [1usize, 4, 9, 16];
    let el = sweep_study(Network::Elan4, p, &counts, 1);
    let ib = sweep_study(Network::InfiniBand, p, &counts, 1);
    assert!(
        el[1].efficiency > 1.01,
        "superlinear at 4: {}",
        el[1].efficiency
    );
    assert!(
        ib[1].efficiency > 1.01,
        "superlinear at 4 (IB): {}",
        ib[1].efficiency
    );
    // "the significant advantage Elan-4 holds at 9 and 16 nodes"
    for i in [2, 3] {
        assert!(
            el[i].efficiency > ib[i].efficiency,
            "Elan must lead at {} procs: {} vs {}",
            counts[i],
            el[i].efficiency,
            ib[i].efficiency
        );
    }
    // Fixed-size: once the sub-grids are cache-resident the cache
    // bonus stops growing and communication erodes efficiency.
    assert!(
        el[3].efficiency < el[1].efficiency,
        "efficiency must decline once cached: {} -> {}",
        el[1].efficiency,
        el[3].efficiency
    );
}

/// Figure 6: CG class A loses efficiency rapidly on both networks;
/// "Quadrics maintains a distinct advantage [which] seems to grow
/// slightly as the node count grows".
#[test]
fn cg_rapid_decline_with_growing_elan_advantage() {
    let p = CgProblem {
        n: 1024,
        outer: 2,
        inner: 12,
        ..class_a_reduced(1024)
    };
    let counts = [1usize, 4, 16];
    let el = cg_study(Network::Elan4, p, &counts, 1);
    let ib = cg_study(Network::InfiniBand, p, &counts, 1);
    // Rapid drop on both.
    assert!(el[2].0.efficiency < 0.65, "elan {}", el[2].0.efficiency);
    assert!(ib[2].0.efficiency < 0.60, "ib {}", ib[2].0.efficiency);
    // Elan ahead, and the advantage grows with scale.
    let adv4 = el[1].0.efficiency / ib[1].0.efficiency;
    let adv16 = el[2].0.efficiency / ib[2].0.efficiency;
    assert!(adv4 > 1.0, "advantage at 4: {adv4}");
    assert!(adv16 > adv4, "advantage must grow: {adv4} -> {adv16}");
    // MOps/s/process declines with process count (Figure 6(a)).
    assert!(el[2].1 < el[0].1);
}
