#![allow(clippy::needless_range_loop)] // xyz-axis loops

//! Real-data distributed molecular dynamics: ranks own x-slabs of a
//! periodic LJ box, exchange real ghost-atom coordinates over the
//! simulated MPI every step, and the trajectory must track the serial
//! kernel (same physics, different — but equivalent — summation
//! order, so agreement is to tight tolerance rather than bitwise).
//!
//! This validates the halo-exchange protocol under the Figure 2/3
//! proxy with actual physics flowing through it.

use std::cell::RefCell;
use std::rc::Rc;

use elanib_apps::md::LjSystem;
use elanib_mpi::{
    bytes_of_f64, f64_of_bytes, recv, send, Communicator, JobSpec, Network, RankProgram,
};

const N_SIDE: usize = 6; // 216 atoms
const DENSITY: f64 = 0.3; // box edge ~8.96 => 3 slabs still exceed the 2.5 cutoff
const DT: f64 = 0.002;
const STEPS: usize = 5;

/// One owned atom: global id + phase-space state.
#[derive(Clone, Copy, Debug)]
struct Atom {
    id: usize,
    pos: [f64; 3],
    vel: [f64; 3],
}

/// LJ pair force magnitude / r factors, identical to the serial kernel.
fn lj(r2: f64, rc2: f64) -> Option<(f64, f64)> {
    if r2 >= rc2 || r2 == 0.0 {
        return None;
    }
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2.powi(3);
    let inv_r12 = inv_r6 * inv_r6;
    let fmag = (48.0 * inv_r12 - 24.0 * inv_r6) * inv_r2;
    let rc6 = rc2.powi(3);
    let e_cut = 4.0 * (1.0 / (rc6 * rc6) - 1.0 / rc6);
    let pe = 4.0 * (inv_r12 - inv_r6) - e_cut;
    Some((fmag, pe))
}

#[derive(Clone)]
struct DistributedMd {
    ranks: usize,
    /// Final (id, pos, vel) collected from every rank.
    out: Rc<RefCell<Vec<Atom>>>,
    /// Per-step total potential energy (rank 0's view after allreduce).
    out_pe: Rc<RefCell<Vec<f64>>>,
}

impl RankProgram for DistributedMd {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            use elanib_mpi::collectives::{allreduce, Op};
            let me = c.rank();
            let nr = self.ranks;
            // Deterministic initial state, identical to the serial run.
            let reference = LjSystem::lattice(N_SIDE, DENSITY);
            let box_len = reference.box_len;
            let cutoff = reference.cutoff;
            let rc2 = cutoff * cutoff;
            let slab_w = box_len / nr as f64;
            assert!(
                slab_w > cutoff,
                "slab must exceed the cutoff for single-shell ghosts"
            );
            // My owned atoms.
            let mut mine: Vec<Atom> = (0..reference.n_atoms())
                .filter(|&i| (reference.pos[i][0] / slab_w) as usize % nr == me)
                .map(|i| Atom {
                    id: i,
                    pos: reference.pos[i],
                    vel: reference.vel[i],
                })
                .collect();
            let left = (me + nr - 1) % nr;
            let right = (me + 1) % nr;

            let mut forces: Vec<[f64; 3]>;
            for step in 0..=STEPS {
                // 1. Ghost exchange: send atoms within `cutoff` of each
                //    face, x-shifted across the periodic boundary so
                //    receivers use raw differences.
                let lo = me as f64 * slab_w;
                let hi = lo + slab_w;
                let pack = |pred: &dyn Fn(&Atom) -> bool, shift: f64| -> Vec<f64> {
                    let mut v = Vec::new();
                    for a in mine.iter().filter(|a| pred(a)) {
                        v.extend_from_slice(&[a.id as f64, a.pos[0] + shift, a.pos[1], a.pos[2]]);
                    }
                    v
                };
                let to_left = pack(
                    &|a| a.pos[0] < lo + cutoff,
                    if me == 0 { box_len } else { 0.0 },
                );
                let to_right = pack(
                    &|a| a.pos[0] >= hi - cutoff,
                    if me == nr - 1 { -box_len } else { 0.0 },
                );
                let mut ghosts: Vec<(usize, [f64; 3])> = Vec::new();
                if nr > 1 {
                    let tagl = 10 + step as i64 * 4;
                    let tagr = 11 + step as i64 * 4;
                    // Exchange with both neighbors (distinct unless nr == 2).
                    let lmsg = if me.is_multiple_of(2) {
                        send(
                            &c,
                            left,
                            tagl,
                            bytes_of_f64(&to_left),
                            (to_left.len() * 8) as u64,
                        )
                        .await;
                        recv(&c, Some(right), Some(tagl)).await
                    } else {
                        let m = recv(&c, Some(right), Some(tagl)).await;
                        send(
                            &c,
                            left,
                            tagl,
                            bytes_of_f64(&to_left),
                            (to_left.len() * 8) as u64,
                        )
                        .await;
                        m
                    };
                    let rmsg = if me.is_multiple_of(2) {
                        send(
                            &c,
                            right,
                            tagr,
                            bytes_of_f64(&to_right),
                            (to_right.len() * 8) as u64,
                        )
                        .await;
                        recv(&c, Some(left), Some(tagr)).await
                    } else {
                        let m = recv(&c, Some(left), Some(tagr)).await;
                        send(
                            &c,
                            right,
                            tagr,
                            bytes_of_f64(&to_right),
                            (to_right.len() * 8) as u64,
                        )
                        .await;
                        m
                    };
                    for chunk in f64_of_bytes(&lmsg.data).chunks_exact(4) {
                        ghosts.push((chunk[0] as usize, [chunk[1], chunk[2], chunk[3]]));
                    }
                    for chunk in f64_of_bytes(&rmsg.data).chunks_exact(4) {
                        ghosts.push((chunk[0] as usize, [chunk[1], chunk[2], chunk[3]]));
                    }
                }

                // 2. Forces on owned atoms from owned + ghost neighbors
                //    (y/z min-image; x handled by slab geometry).
                let mut pe_local = 0.0;
                forces = vec![[0.0; 3]; mine.len()];
                for (ai, a) in mine.iter().enumerate() {
                    for b in mine
                        .iter()
                        .map(|b| (b.id, b.pos))
                        .chain(ghosts.iter().copied())
                    {
                        if b.0 == a.id {
                            continue;
                        }
                        let mut d = [0.0; 3];
                        d[0] = b.1[0] - a.pos[0];
                        for k in 1..3 {
                            let mut x = b.1[k] - a.pos[k];
                            x -= box_len * (x / box_len).round();
                            d[k] = x;
                        }
                        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        if let Some((fmag, pe)) = lj(r2, rc2) {
                            for k in 0..3 {
                                forces[ai][k] -= fmag * d[k];
                            }
                            pe_local += 0.5 * pe; // each pair counted twice
                        }
                    }
                }
                let pe = allreduce(&c, Op::Sum, &[pe_local]).await[0];
                if me == 0 {
                    self.out_pe.borrow_mut().push(pe);
                }
                if step == STEPS {
                    break;
                }

                // 3. Velocity-Verlet with a force recomputation next
                //    loop — equivalent to the serial kernel's scheme
                //    when forces are recomputed every half-step pair.
                //    We use simple leapfrog-style integration here and
                //    in the serial replica below, so both match.
                for (a, f) in mine.iter_mut().zip(&forces) {
                    for k in 0..3 {
                        a.vel[k] += DT * f[k];
                        a.pos[k] += DT * a.vel[k];
                        a.pos[k] = a.pos[k].rem_euclid(box_len);
                    }
                }
                // No migration support: fail loudly if an atom leaves
                // its slab within the short test horizon.
                for a in &mine {
                    assert!(
                        a.pos[0] >= lo - 1e-9 && a.pos[0] < hi + 1e-9,
                        "atom {} migrated out of slab {me}",
                        a.id
                    );
                }
            }
            self.out.borrow_mut().extend(mine.iter().copied());
        }
    }
}

/// Serial replica of the distributed integrator (same leapfrog scheme,
/// per-atom force accumulation) for exact-scheme comparison.
fn serial_reference() -> (Vec<Atom>, Vec<f64>) {
    let reference = LjSystem::lattice(N_SIDE, DENSITY);
    let box_len = reference.box_len;
    let rc2 = reference.cutoff * reference.cutoff;
    let mut atoms: Vec<Atom> = (0..reference.n_atoms())
        .map(|i| Atom {
            id: i,
            pos: reference.pos[i],
            vel: reference.vel[i],
        })
        .collect();
    let mut pes = Vec::new();
    for step in 0..=STEPS {
        let mut pe_total = 0.0;
        let mut forces = vec![[0.0; 3]; atoms.len()];
        for (ai, a) in atoms.iter().enumerate() {
            for b in &atoms {
                if b.id == a.id {
                    continue;
                }
                let mut d = [0.0; 3];
                for k in 0..3 {
                    let mut x = b.pos[k] - a.pos[k];
                    x -= box_len * (x / box_len).round();
                    d[k] = x;
                }
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if let Some((fmag, pe)) = lj(r2, rc2) {
                    for k in 0..3 {
                        forces[ai][k] -= fmag * d[k];
                    }
                    pe_total += 0.5 * pe;
                }
            }
        }
        pes.push(pe_total);
        if step == STEPS {
            break;
        }
        for (a, f) in atoms.iter_mut().zip(&forces) {
            for k in 0..3 {
                a.vel[k] += DT * f[k];
                a.pos[k] += DT * a.vel[k];
                a.pos[k] = a.pos[k].rem_euclid(box_len);
            }
        }
    }
    (atoms, pes)
}

fn run_distributed(net: Network, ranks: usize) -> (Vec<Atom>, Vec<f64>) {
    let out = Rc::new(RefCell::new(Vec::new()));
    let out_pe = Rc::new(RefCell::new(Vec::new()));
    elanib_mpi::run_job(
        JobSpec {
            network: net,
            nodes: ranks,
            ppn: 1,
            seed: 91,
        },
        DistributedMd {
            ranks,
            out: out.clone(),
            out_pe: out_pe.clone(),
        },
    );
    let mut atoms = Rc::try_unwrap(out).unwrap().into_inner();
    atoms.sort_by_key(|a| a.id);
    (atoms, Rc::try_unwrap(out_pe).unwrap().into_inner())
}

#[test]
fn distributed_md_tracks_serial_reference() {
    let (serial_atoms, serial_pe) = serial_reference();
    for net in Network::BOTH {
        for ranks in [2usize, 3] {
            let (atoms, pe) = run_distributed(net, ranks);
            assert_eq!(atoms.len(), serial_atoms.len(), "atom count conserved");
            for (a, s) in atoms.iter().zip(&serial_atoms) {
                assert_eq!(a.id, s.id);
                for k in 0..3 {
                    assert!(
                        (a.pos[k] - s.pos[k]).abs() < 1e-9,
                        "{net}, {ranks} ranks: atom {} axis {k}: {} vs {}",
                        a.id,
                        a.pos[k],
                        s.pos[k]
                    );
                    assert!((a.vel[k] - s.vel[k]).abs() < 1e-9);
                }
            }
            // Per-step potential energies agree too.
            assert_eq!(pe.len(), serial_pe.len());
            for (d, s) in pe.iter().zip(&serial_pe) {
                assert!(
                    (d - s).abs() < 1e-9 * s.abs().max(1.0),
                    "{net}, {ranks} ranks: PE {d} vs serial {s}"
                );
            }
        }
    }
}

#[test]
fn distributed_md_conserves_momentum() {
    let (atoms, _) = run_distributed(Network::Elan4, 2);
    let mut p = [0.0f64; 3];
    for a in &atoms {
        for k in 0..3 {
            p[k] += a.vel[k];
        }
    }
    for v in p {
        assert!(v.abs() < 1e-9, "net momentum {v}");
    }
}
