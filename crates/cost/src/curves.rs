//! Network cost-per-port curves (Figure 7) and total-system costs.
//!
//! Figure 7's four lines:
//! 1. Quadrics Elan-4 networks of various sizes (top line);
//! 2. InfiniBand networks built from 96-port switches only;
//! 3. (and 4.) InfiniBand networks from a mix of 24-port and 288-port
//!    switches "that are now available".
//!
//! The switch-count planners follow the usual two-level fat-tree
//! construction rules: a single chassis up to its port count; beyond
//! that, leaf chassis give half their ports to nodes and half to
//! spine chassis.

use crate::prices::{IbPrices, QuadricsPrices, NODE_COST};

/// One network flavor's plan for a given node count.
#[derive(Clone, Copy, Debug)]
pub struct NetworkCost {
    pub nodes: usize,
    /// Total network cost (adapters + cables + switches + extras).
    pub total: f64,
    /// Figure 7's y-axis.
    pub per_port: f64,
}

fn plan(nodes: usize, total: f64) -> NetworkCost {
    NetworkCost {
        nodes,
        total,
        per_port: total / nodes as f64,
    }
}

/// Number of `radix`-port switch chassis needed to connect `nodes`
/// endpoints with full bisection: one chassis if it fits, otherwise a
/// two-level fat tree (leaves at half-occupancy plus spines).
pub fn fat_tree_chassis(radix: usize, nodes: usize) -> usize {
    assert!(radix >= 2 && nodes >= 1);
    if nodes <= radix {
        return 1;
    }
    let down_per_leaf = radix / 2;
    let leaves = nodes.div_ceil(down_per_leaf);
    // Spines must terminate every leaf uplink.
    let uplinks = leaves * (radix - down_per_leaf);
    let spines = uplinks.div_ceil(radix);
    leaves + spines
}

/// Quadrics Elan-4 network cost: QM500 + cable per node, QS5A node
/// chassis (64 ports, half-occupancy above one chassis), federated
/// top-level switches above 64 nodes, one clock source per system.
pub fn elan_network(q: &QuadricsPrices, nodes: usize) -> NetworkCost {
    let per_node = q.qm500 + q.cable;
    let chassis;
    let tops;
    if nodes <= 64 {
        chassis = 1;
        tops = 0;
    } else {
        // Node-level chassis give 32 ports down, 32 up; each top-level
        // switch terminates up to 256 uplinks (federated spine).
        chassis = nodes.div_ceil(32);
        tops = (chassis * 32).div_ceil(256);
    }
    // Inter-chassis cables: one per uplink in the federated config.
    let uplink_cables = if nodes <= 64 { 0 } else { chassis * 32 };
    let total = per_node * nodes as f64
        + chassis as f64 * q.node_chassis
        + tops as f64 * q.top_switch
        + q.clock_source
        + uplink_cables as f64 * q.cable;
    plan(nodes, total)
}

/// InfiniBand from 96-port ISR 9600 chassis only ("the largest
/// available when this study began").
pub fn ib96_network(p: &IbPrices, nodes: usize) -> NetworkCost {
    let chassis = fat_tree_chassis(96, nodes);
    let inter = if nodes <= 96 { 0 } else { nodes }; // uplink cables
    let total =
        (p.hca + p.cable) * nodes as f64 + chassis as f64 * p.switch_96 + inter as f64 * p.cable;
    plan(nodes, total)
}

/// InfiniBand from the best mix of 24-port and 288-port switches "that
/// are now available": a single 24-port switch for tiny systems, a
/// single 288-port chassis up to 288 nodes, then a 288-port fat tree.
pub fn ib_mixed_network(p: &IbPrices, nodes: usize) -> NetworkCost {
    let (switch_cost, inter_cables) = if nodes <= 24 {
        (p.switch_24, 0)
    } else if nodes <= 288 {
        (p.switch_288, 0)
    } else {
        let chassis = fat_tree_chassis(288, nodes);
        (chassis as f64 * p.switch_288, nodes)
    };
    let total = (p.hca + p.cable) * nodes as f64 + switch_cost + inter_cables as f64 * p.cable;
    plan(nodes, total)
}

/// Total system cost per node (network + $2,500 node), §5's comparison
/// basis.
pub fn system_cost_per_node(net: NetworkCost) -> f64 {
    net.per_port + NODE_COST
}

/// The Figure 7 table: (nodes, elan, ib96, ib-mixed) cost-per-port.
pub fn figure7_series(sizes: &[usize]) -> Vec<(usize, f64, f64, f64)> {
    let ib = IbPrices::default();
    let q = QuadricsPrices::default();
    sizes
        .iter()
        .map(|&n| {
            (
                n,
                elan_network(&q, n).per_port,
                ib96_network(&ib, n).per_port,
                ib_mixed_network(&ib, n).per_port,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chassis_planner_basics() {
        assert_eq!(fat_tree_chassis(96, 32), 1);
        assert_eq!(fat_tree_chassis(96, 96), 1);
        // 97 nodes: 3 leaves (48 down each) + 2 spines (144 uplinks).
        assert_eq!(fat_tree_chassis(96, 97), 5);
        assert_eq!(fat_tree_chassis(288, 1024), 8 + 4);
    }

    #[test]
    fn elan_is_the_top_line_of_figure7() {
        for n in [16usize, 32, 64, 128, 512, 1024] {
            let series = figure7_series(&[n])[0];
            assert!(
                series.1 > series.3,
                "Elan per-port {} must exceed mixed IB {} at n={n}",
                series.1,
                series.3
            );
        }
    }

    #[test]
    fn elan_roughly_competitive_with_ib96() {
        // §5: "Elan-4 is relatively cost competitive with InfiniBand
        // networks built from 96-port switches" — within ~35% per port
        // at medium-large scale.
        for n in [256usize, 1024] {
            let s = figure7_series(&[n])[0];
            let ratio = s.1 / s.2;
            assert!(
                (0.75..1.35).contains(&ratio),
                "elan/ib96 per-port ratio {ratio} at n={n}"
            );
        }
    }

    #[test]
    fn paper_section5_percentages_hold_at_scale() {
        // §5: "the difference between Elan-4 and 4X InfiniBand total
        // system cost is only 4% and 51% (96-port switches and 288-port
        // switches, respectively)" — at large scale, nodes included.
        let n = 1024;
        let q = QuadricsPrices::default();
        let ib = IbPrices::default();
        let elan_sys = system_cost_per_node(elan_network(&q, n));
        let ib96_sys = system_cost_per_node(ib96_network(&ib, n));
        let mixed_sys = system_cost_per_node(ib_mixed_network(&ib, n));
        let d96 = (elan_sys - ib96_sys) / ib96_sys;
        let d288 = (elan_sys - mixed_sys) / mixed_sys;
        assert!(
            (0.00..0.10).contains(&d96),
            "total-system diff vs IB-96 should be ~4%: {d96}"
        );
        assert!(
            (0.40..0.62).contains(&d288),
            "total-system diff vs IB-288 should be ~51%: {d288}"
        );
    }

    #[test]
    fn mixed_ib_drops_dramatically_past_24_ports() {
        let ib = IbPrices::default();
        let at24 = ib_mixed_network(&ib, 24).per_port;
        let at100 = ib_mixed_network(&ib, 100).per_port;
        let at288 = ib_mixed_network(&ib, 288).per_port;
        // Chassis amortization: per-port cost falls with occupancy.
        assert!(at288 < at100);
        assert!(at288 < at24 * 1.2);
    }

    #[test]
    fn per_port_costs_are_positive_and_bounded() {
        for n in 1..300 {
            let s = figure7_series(&[n])[0];
            for v in [s.1, s.2, s.3] {
                assert!(v > 500.0 && v < 250_000.0, "n={n}: {v}");
            }
        }
    }
}
