//! List prices (April 2004) — Tables 2 and 3 of the paper.
//!
//! The scanned source is only partially legible: the visible entries
//! are the InfiniBand HCA ($995) and host cables ($175), and the
//! Quadrics node-level chassis ($93,000), top-level switch ($110,500),
//! QM580 clock source ($1,800) and link cables ($185 for 3 m). The
//! remaining entries (the QM500 adapter and the InfiniBand switch
//! chassis) are **reconstructed** so that every quantitative claim the
//! paper's §5 makes holds, and the tests below pin those claims:
//!
//! * Elan-4 is "relatively cost competitive" with 96-port-switch
//!   InfiniBand networks;
//! * with 24/288-port switches "the cost of InfiniBand drops
//!   dramatically";
//! * including a $2,500 node, the total-system difference is
//!   "only 4%" vs 96-port IB and ~51% vs 24/288-port IB at large scale.

/// InfiniBand component list prices (Table 2), in dollars.
#[derive(Clone, Copy, Debug)]
pub struct IbPrices {
    /// Voltaire HCS 400 4X host channel adapter (legible in Table 2).
    pub hca: f64,
    /// 4X copper host cable (legible in Table 2).
    pub cable: f64,
    /// 24-port switch chassis (reconstructed; ~$400/port was typical
    /// for 2004 24-port 4X edge switches).
    pub switch_24: f64,
    /// ISR 9600 96-port switch router (reconstructed; the large
    /// multi-stage chassis carried a steep premium — this is what makes
    /// Elan-4 "relatively cost competitive" against it).
    pub switch_96: f64,
    /// 288-port switch chassis, "now available" at study time
    /// (reconstructed; ~$300/port — the dramatic drop of §5).
    pub switch_288: f64,
}

impl Default for IbPrices {
    fn default() -> Self {
        IbPrices {
            hca: 995.0,
            cable: 175.0,
            switch_24: 9_600.0,
            switch_96: 107_500.0,
            switch_288: 100_000.0,
        }
    }
}

/// Quadrics Elan-4 component list prices (Table 3), in dollars.
#[derive(Clone, Copy, Debug)]
pub struct QuadricsPrices {
    /// QM500 network adapter (reconstructed).
    pub qm500: f64,
    /// QS5A 64-port node-level chassis (legible in Table 3).
    pub node_chassis: f64,
    /// Top-level (federated) switch chassis (legible in Table 3).
    pub top_switch: f64,
    /// QM580 clock source, one per system (legible in Table 3).
    pub clock_source: f64,
    /// QM581 EOP link cable (legible in Table 3, 3 m).
    pub cable: f64,
}

impl Default for QuadricsPrices {
    fn default() -> Self {
        QuadricsPrices {
            qm500: 1_395.0,
            node_chassis: 93_000.0,
            top_switch: 110_500.0,
            clock_source: 1_800.0,
            cable: 185.0,
        }
    }
}

/// Lower-bound cost of one rack-mounted dual-processor node (§5).
pub const NODE_COST: f64 = 2_500.0;

/// Render Table 2 as printable rows.
pub fn table2_rows(p: &IbPrices) -> Vec<(String, f64, bool)> {
    vec![
        ("HCS 400 4X host channel adapter".into(), p.hca, false),
        ("4X copper cable (host)".into(), p.cable, false),
        ("24-port switch".into(), p.switch_24, true),
        ("ISR 9600 96-port switch router".into(), p.switch_96, true),
        ("288-port switch".into(), p.switch_288, true),
    ]
}

/// Render Table 3 as printable rows. The bool marks reconstructed
/// prices.
pub fn table3_rows(p: &QuadricsPrices) -> Vec<(String, f64, bool)> {
    vec![
        ("QM500 network adapter".into(), p.qm500, true),
        (
            "QS5A node-level chassis (64 ports)".into(),
            p.node_chassis,
            false,
        ),
        ("Top-level switch".into(), p.top_switch, false),
        ("QM580 clock source".into(), p.clock_source, false),
        ("QM581 EOP link cable, 3M".into(), p.cable, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legible_table_entries_match_the_paper() {
        let ib = IbPrices::default();
        assert_eq!(ib.hca, 995.0);
        assert_eq!(ib.cable, 175.0);
        let q = QuadricsPrices::default();
        assert_eq!(q.node_chassis, 93_000.0);
        assert_eq!(q.top_switch, 110_500.0);
        assert_eq!(q.clock_source, 1_800.0);
        assert_eq!(q.cable, 185.0);
    }

    #[test]
    fn per_port_chassis_ordering() {
        // §5: the 96-port chassis is the premium product; 24- and
        // 288-port switches are the cheap ones.
        let ib = IbPrices::default();
        let p24 = ib.switch_24 / 24.0;
        let p96 = ib.switch_96 / 96.0;
        let p288 = ib.switch_288 / 288.0;
        assert!(p96 > 2.0 * p24, "96-port chassis carries a premium");
        assert!(p96 > 3.0 * p288);
        assert!(p288 < 400.0);
    }
}
