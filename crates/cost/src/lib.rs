//! # elanib-cost — the paper's §5 cost analysis
//!
//! List-price tables (Tables 2–3, partially reconstructed — see
//! [`prices`]), switch-count planners and cost-per-port curves
//! (Figure 7), and total-system cost-performance helpers.

pub mod curves;
pub mod prices;

pub use curves::{
    elan_network, fat_tree_chassis, figure7_series, ib96_network, ib_mixed_network,
    system_cost_per_node, NetworkCost,
};
pub use prices::{table2_rows, table3_rows, IbPrices, QuadricsPrices, NODE_COST};

/// Cost-performance: dollars per unit of delivered application
/// performance, where `efficiency` comes from a scaling study and the
/// per-node performance is identical hardware on both networks (the
/// paper's controlled comparison).
pub fn cost_per_performance(system_cost_per_node: f64, efficiency: f64) -> f64 {
    assert!(efficiency > 0.0);
    system_cost_per_node / efficiency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_performance_tradeoff_logic() {
        // §5/§6: "these two technologies could be cost-competitive at
        // scale" — if Elan keeps ~40% better efficiency at scale, its
        // ~51% price premium roughly cancels.
        let q = QuadricsPrices::default();
        let ib = IbPrices::default();
        let elan_sys = system_cost_per_node(elan_network(&q, 1024));
        let ib_sys = system_cost_per_node(ib_mixed_network(&ib, 1024));
        // Figure 8's extrapolated efficiencies at 1024 nodes.
        let elan_cp = cost_per_performance(elan_sys, 0.88);
        let ib_cp = cost_per_performance(ib_sys, 0.63);
        let ratio = elan_cp / ib_cp;
        assert!(
            (0.8..1.35).contains(&ratio),
            "cost-performance should be in the same ballpark: {ratio}"
        );
    }
}
