//! # elanib-nodesim — the compute-node model
//!
//! Models the test platform from Table 1 of the paper: Dell PowerEdge
//! 1750, dual 3.06 GHz Xeon, 533 MHz front-side bus, ServerWorks GC-LE
//! chipset, one 133 MHz PCI-X slot for the high-speed interconnect.
//!
//! Three shared resources produce every 1 PPN vs 2 PPN effect in the
//! reproduction:
//!
//! * the **memory bus** ([`Node::host_copy`]) — a processor-sharing
//!   resource crossed by every host-side message copy (MPI eager
//!   buffers, shared-memory intra-node transfers);
//! * the **PCI-X bus** ([`Node::dma`]) — a processor-sharing resource
//!   crossed by every NIC DMA in either direction, with a fixed
//!   per-transaction setup cost;
//! * the **CPUs** — each MPI process is pinned to one CPU; host MPI
//!   work (matching, protocol handling) occupies its CPU, and compute
//!   phases are dilated when the sibling CPU is simultaneously active
//!   ([`Node::compute`]), modelling FSB and cache-pollution contention.

use std::cell::Cell;
use std::rc::Rc;

use elanib_simcore::{Dur, PsResource, Sim};

/// Physical constants of the Table-1 node.
#[derive(Clone, Copy, Debug)]
pub struct NodeParams {
    /// CPUs per node (dual-processor Xeon).
    pub cpus: usize,
    /// Sustained single-stream memcpy bandwidth through the FSB,
    /// bytes/s. A 533 MHz, 8-byte FSB peaks at 4.3 GB/s; sustained
    /// copy (read+write) on this platform generation is ~1.5 GB/s.
    pub mem_copy_bw: f64,
    /// PCI-X 133/64 payload bandwidth, bytes/s. 1.066 GB/s raw; ~0.95
    /// after burst/arbitration overhead. Shared by both directions and
    /// both CPUs' traffic.
    pub pcix_bw: f64,
    /// Fixed cost to set up one DMA transaction on the bus.
    pub dma_setup: Dur,
    /// L2 cache per CPU (512 KB Xeon).
    pub l2_bytes: u64,
    /// Compute-dilation coefficient per additional simultaneously
    /// active sibling CPU, scaled by the workload's memory intensity.
    pub contention_beta: f64,
}

impl Default for NodeParams {
    fn default() -> Self {
        NodeParams {
            cpus: 2,
            mem_copy_bw: 1.5e9,
            pcix_bw: 0.95e9,
            dma_setup: Dur::from_ns(450),
            l2_bytes: 512 * 1024,
            contention_beta: 0.35,
        }
    }
}

/// One compute node.
pub struct Node {
    pub id: usize,
    pub params: NodeParams,
    mem_bus: PsResource,
    pcix: PsResource,
    /// CPUs currently inside a compute or copy phase (for the
    /// contention dilation model).
    active_cpus: Cell<usize>,
    cpu_busy: Vec<Cell<Dur>>,
}

impl Node {
    pub fn new(id: usize, params: NodeParams) -> Rc<Node> {
        Rc::new(Node {
            id,
            params,
            mem_bus: PsResource::new(params.mem_copy_bw),
            pcix: PsResource::new(params.pcix_bw),
            active_cpus: Cell::new(0),
            cpu_busy: (0..params.cpus).map(|_| Cell::new(Dur::ZERO)).collect(),
        })
    }

    /// Copy `bytes` through host memory (one read + one write stream,
    /// already folded into `mem_copy_bw`). Shares the bus fairly with
    /// any concurrent copy from the sibling CPU.
    pub async fn host_copy(&self, sim: &Sim, bytes: u64) {
        self.active_cpus.set(self.active_cpus.get() + 1);
        self.mem_bus.transfer(sim, bytes).await;
        self.active_cpus.set(self.active_cpus.get() - 1);
    }

    /// Move `bytes` across the PCI-X bus (NIC DMA, either direction),
    /// including the per-transaction setup cost.
    pub async fn dma(&self, sim: &Sim, bytes: u64) {
        sim.sleep(self.params.dma_setup).await;
        self.pcix.transfer(sim, bytes).await;
    }

    /// DMA without the setup cost, for engines that batch many
    /// back-to-back bus bursts under one transaction.
    pub async fn dma_no_setup(&self, sim: &Sim, bytes: u64) {
        self.pcix.transfer(sim, bytes).await;
    }

    /// Start a PCI-X DMA immediately and return its completion flag —
    /// lets a NIC engine overlap source DMA, wire transfer, and
    /// destination DMA from a single task.
    pub fn pcix_start(&self, sim: &Sim, bytes: u64) -> elanib_simcore::Flag {
        self.pcix.start(sim, bytes)
    }

    /// As [`Node::pcix_start`], completing into an existing flag.
    pub fn pcix_start_into(&self, sim: &Sim, bytes: u64, flag: elanib_simcore::Flag) {
        self.pcix.start_into(sim, bytes, flag);
    }

    /// Consume memory-bus bandwidth without occupying a CPU — used for
    /// NIC-driven copies (e.g. Elan unexpected-message drains) that
    /// steal FSB cycles but no host instructions.
    pub async fn mem_transfer(&self, sim: &Sim, bytes: u64) {
        self.mem_bus.transfer(sim, bytes).await;
    }

    /// Occupy CPU `cpu` with pure protocol work for `dur` (no memory
    /// pressure modelled beyond the time itself).
    pub async fn cpu_work(&self, sim: &Sim, cpu: usize, dur: Dur) {
        self.cpu_busy[cpu].set(self.cpu_busy[cpu].get() + dur);
        sim.sleep(dur).await;
    }

    /// Run an application compute phase of nominal length `dur` on CPU
    /// `cpu`. `mem_intensity` ∈ [0,1] says how memory-bound the kernel
    /// is; the phase stretches by
    /// `1 + beta * mem_intensity * (other active CPUs at entry)`.
    pub async fn compute(&self, sim: &Sim, cpu: usize, dur: Dur, mem_intensity: f64) {
        let others = self.active_cpus.get();
        let factor = 1.0 + self.params.contention_beta * mem_intensity * others as f64;
        let stretched = dur.scale(factor);
        self.active_cpus.set(others + 1);
        self.cpu_busy[cpu].set(self.cpu_busy[cpu].get() + stretched);
        sim.sleep(stretched).await;
        self.active_cpus.set(self.active_cpus.get() - 1);
    }

    /// Cumulative busy time of one CPU (stats).
    pub fn cpu_busy_time(&self, cpu: usize) -> Dur {
        self.cpu_busy[cpu].get()
    }

    /// Slowdown multiplier for a compute kernel whose per-process
    /// working set is `working_set` bytes: 1.0 when it fits in L2,
    /// rising smoothly to `max_penalty` when far larger. This is what
    /// makes the paper's fixed-size Sweep3D study superlinear from 1 to
    /// 4 processors (§4.2.2) and keeps CG class A cache-resident
    /// (§4.2.3).
    pub fn cache_speed_factor(&self, working_set: u64, max_penalty: f64) -> f64 {
        cache_speed_factor(self.params.l2_bytes, working_set, max_penalty)
    }
}

/// Standalone version of [`Node::cache_speed_factor`] for planners that
/// have no node instance at hand.
pub fn cache_speed_factor(l2_bytes: u64, working_set: u64, max_penalty: f64) -> f64 {
    assert!(max_penalty >= 1.0);
    if working_set <= l2_bytes {
        return 1.0;
    }
    // The miss-driven slowdown grows with how far the working set
    // overflows the cache, saturating at 8x overflow (log2 scale / 3).
    let overflow = working_set as f64 / l2_bytes as f64;
    let t = (overflow.log2() / 3.0).clamp(0.0, 1.0);
    1.0 + (max_penalty - 1.0) * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn dma_includes_setup_cost() {
        let sim = Sim::new(1);
        let node = Node::new(0, NodeParams::default());
        let s = sim.clone();
        sim.spawn("t", async move {
            node.dma(&s, 950_000).await; // 1 ms of bus time at 0.95 GB/s
            let expect = 1000.0 + 0.45;
            assert!((s.now().as_us_f64() - expect).abs() < 0.01);
        });
        sim.run().unwrap();
    }

    #[test]
    fn concurrent_dma_shares_pcix() {
        let sim = Sim::new(1);
        let node = Node::new(0, NodeParams::default());
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let (n, s, e) = (node.clone(), sim.clone(), ends.clone());
            sim.spawn(format!("t{i}"), async move {
                n.dma_no_setup(&s, 950_000).await;
                e.borrow_mut().push(s.now().as_us_f64());
            });
        }
        sim.run().unwrap();
        for t in ends.borrow().iter() {
            assert!(
                (t - 2000.0).abs() < 0.01,
                "both should finish at 2 ms, got {t}"
            );
        }
    }

    #[test]
    fn compute_dilates_when_sibling_active() {
        let sim = Sim::new(1);
        let node = Node::new(0, NodeParams::default());
        let t_end = Rc::new(Cell::new(0.0));
        let (n1, s1) = (node.clone(), sim.clone());
        sim.spawn("cpu0", async move {
            n1.compute(&s1, 0, Dur::from_ms(10), 1.0).await;
        });
        let (n2, s2, te) = (node.clone(), sim.clone(), t_end.clone());
        sim.spawn("cpu1", async move {
            s2.sleep(Dur::from_us(1)).await; // enter second
            n2.compute(&s2, 1, Dur::from_ms(10), 1.0).await;
            te.set(s2.now().as_us_f64());
        });
        sim.run().unwrap();
        // Second CPU saw one active sibling: 10 ms * 1.35 + 1 us start.
        assert!((t_end.get() - 13501.0).abs() < 1.0, "got {}", t_end.get());
    }

    #[test]
    fn compute_alone_runs_at_nominal_speed() {
        let sim = Sim::new(1);
        let node = Node::new(0, NodeParams::default());
        let s = sim.clone();
        sim.spawn("t", async move {
            node.compute(&s, 0, Dur::from_ms(10), 1.0).await;
            assert_eq!(s.now().as_us_f64(), 10_000.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn cache_factor_monotone_in_working_set() {
        let l2 = 512 * 1024;
        assert_eq!(cache_speed_factor(l2, 100, 2.0), 1.0);
        assert_eq!(cache_speed_factor(l2, l2, 2.0), 1.0);
        let f2 = cache_speed_factor(l2, 2 * l2, 2.0);
        let f8 = cache_speed_factor(l2, 8 * l2, 2.0);
        let f64x = cache_speed_factor(l2, 64 * l2, 2.0);
        assert!(1.0 < f2 && f2 < f8 && f8 <= f64x);
        assert!(f64x <= 2.0);
        assert_eq!(cache_speed_factor(l2, 1024 * l2, 2.0), 2.0);
    }

    #[test]
    fn host_copies_share_memory_bus() {
        let sim = Sim::new(1);
        let node = Node::new(0, NodeParams::default());
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let (n, s, e) = (node.clone(), sim.clone(), ends.clone());
            sim.spawn(format!("c{i}"), async move {
                n.host_copy(&s, 1_500_000).await; // 1 ms alone
                e.borrow_mut().push(s.now().as_us_f64());
            });
        }
        sim.run().unwrap();
        for t in ends.borrow().iter() {
            assert!((t - 2000.0).abs() < 0.01, "shared bus halves rate, got {t}");
        }
    }
}
