//! Property test of the timing wheel against the scheduler it
//! replaced: a `BinaryHeap<Reverse<(at, seq, id)>>` is the executable
//! specification of the kernel's former event queue, and the wheel
//! must be observationally identical — every pop yields the same
//! `(at, payload)` under any interleaving of pushes and pops,
//! including same-instant ties, which must fire in schedule (seq)
//! order.
//!
//! Deltas are drawn from four scales on purpose: 0–3 ps (ties and the
//! 1 ps level-0 buckets), sub-slot, mid-level, and beyond the 2^48 ps
//! wheel horizon (the sorted far list and its re-homing path). The ops
//! stream interleaves pops so the wheel's anchor advances and cascades
//! mid-stream rather than only during a final drain.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use elanib_simcore::wheel::HORIZON_PS;
use elanib_simcore::TimerWheel;
use proptest::prelude::*;

/// Reference model: same `(at, seq)` total order the heap gave the
/// kernel. `seq` mirrors the wheel's internal per-push counter.
#[derive(Default)]
struct ModelHeap {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
}

impl ModelHeap {
    fn push(&mut self, at: u64, id: u32) {
        self.heap.push(Reverse((at, self.next_seq, id)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse((at, _, id))| (at, id))
    }
}

/// Map one generated op to a delta above the current clock. The
/// `scale` discriminant picks the regime; `raw` supplies the entropy.
fn delta_of(scale: u8, raw: u64) -> u64 {
    match scale {
        0 => raw % 4,                // ties + level-0 buckets
        1 => raw % (1 << 12),        // within the finest slots
        2 => raw % (1 << 30),        // mid-level cascading
        _ => raw % (4 * HORIZON_PS), // far list + re-homing
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any interleaving of pushes (at four delta scales) and pops
    /// yields the exact pop sequence of the reference heap, and a
    /// final drain empties both in lockstep.
    #[test]
    fn pop_order_matches_reference_heap(
        ops in prop::collection::vec((0u8..6, 0u64..u64::MAX), 1..500),
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut model = ModelHeap::default();
        let mut now = 0u64;
        let mut next_id = 0u32;

        for &(op, raw) in &ops {
            if op < 4 {
                // Four push scales; ops 4–5 are pops (1:2 pop ratio
                // keeps the queue growing so the drain below is real).
                let at = now.saturating_add(delta_of(op, raw));
                wheel.push(at, next_id);
                model.push(at, next_id);
                next_id += 1;
            } else {
                let got = wheel.pop();
                let want = model.pop();
                prop_assert_eq!(got, want, "mid-stream pop diverged");
                if let Some((at, _)) = got {
                    now = at; // pushes stay >= the wheel's anchor
                }
            }
        }

        loop {
            let got = wheel.pop();
            let want = model.pop();
            prop_assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Tie stress: every event lands on one of very few instants, so
    /// correctness is carried entirely by the seq order within a
    /// bucket (the paths a plain heap gets for free and a wheel must
    /// reconstruct by sorting the drained bucket).
    #[test]
    fn same_instant_events_fire_in_schedule_order(
        instants in prop::collection::vec(0u64..3, 2..120),
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut model = ModelHeap::default();
        for (id, &at) in instants.iter().enumerate() {
            wheel.push(at, id as u32);
            model.push(at, id as u32);
        }
        while let Some(want) = model.pop() {
            prop_assert_eq!(wheel.pop(), Some(want));
        }
        prop_assert_eq!(wheel.pop(), None);
    }
}
