//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;

use elanib_simcore::{Dur, FifoChannel, PsResource, Sim};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The kernel clock never goes backwards, and a task sleeping a
    /// sequence of durations finishes at exactly their sum.
    #[test]
    fn sleeps_sum_exactly(durs in prop::collection::vec(0u64..10_000_000, 1..40)) {
        let sim = Sim::new(1);
        let s = sim.clone();
        let durs2 = durs.clone();
        sim.spawn("t", async move {
            for &d in &durs2 {
                s.sleep(Dur::from_ps(d)).await;
            }
        });
        let end = sim.run().unwrap();
        prop_assert_eq!(end.as_ps(), durs.iter().sum::<u64>());
    }

    /// Determinism: any set of interleaved sleeping tasks produces the
    /// same final time and event count on re-run.
    #[test]
    fn random_task_soup_is_deterministic(
        seeds in prop::collection::vec(1u64..1000, 2..10),
    ) {
        let run = || {
            let sim = Sim::new(42);
            for (i, &sd) in seeds.iter().enumerate() {
                let s = sim.clone();
                sim.spawn(format!("t{i}"), async move {
                    for k in 0..5u64 {
                        s.sleep(Dur::from_ns(sd * (k + 1))).await;
                    }
                });
            }
            let t = sim.run().unwrap();
            (t, sim.events_processed())
        };
        prop_assert_eq!(run(), run());
    }

    /// FIFO channel: completions happen in request order and total
    /// busy time equals the sum of service times.
    #[test]
    fn fifo_channel_is_fifo_and_conserves_time(
        sizes in prop::collection::vec(1u64..5_000_000, 1..20),
    ) {
        let sim = Sim::new(7);
        let ch = FifoChannel::new(1e9, Dur::from_ns(100));
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, &bytes) in sizes.iter().enumerate() {
            let (c, s, o) = (ch.clone(), sim.clone(), order.clone());
            sim.spawn(format!("t{i}"), async move {
                c.transfer(&s, bytes).await;
                o.borrow_mut().push(i);
            });
        }
        let end = sim.run().unwrap();
        let expect: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(&*order.borrow(), &expect);
        // All requests issued at t=0: makespan = sum of service times.
        let total_ns: f64 = sizes.iter().map(|&b| b as f64).sum::<f64>()
            + 100.0 * sizes.len() as f64;
        prop_assert!((end.as_secs_f64() * 1e9 - total_ns).abs() < 1.0);
    }

    /// Processor sharing: work conservation. With all jobs present
    /// from t=0, the resource drains in exactly total_bytes/rate, and
    /// no job finishes before its fair-share lower bound.
    #[test]
    fn ps_resource_work_conservation(
        sizes in prop::collection::vec(1_000u64..2_000_000, 1..16),
    ) {
        let sim = Sim::new(3);
        let rate = 1e9;
        let ps = PsResource::new(rate);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for (i, &bytes) in sizes.iter().enumerate() {
            let (p, s, e) = (ps.clone(), sim.clone(), ends.clone());
            sim.spawn(format!("t{i}"), async move {
                p.transfer(&s, bytes).await;
                e.borrow_mut().push((i, s.now().as_secs_f64()));
            });
        }
        let end = sim.run().unwrap();
        let total: u64 = sizes.iter().sum();
        let makespan = end.as_secs_f64();
        // Work conservation: the resource is never idle while jobs
        // remain, so the drain time is exactly total/rate (within
        // picosecond rounding per completion event).
        let ideal = total as f64 / rate;
        prop_assert!((makespan - ideal).abs() < 1e-6 * sizes.len() as f64,
            "makespan {makespan} vs ideal {ideal}");
        // Fairness lower bound: a job of b bytes among n jobs cannot
        // finish before b*n/rate... only while all n are active; the
        // universal lower bound is b/rate.
        for &(i, t) in ends.borrow().iter() {
            prop_assert!(t + 1e-9 >= sizes[i] as f64 / rate);
        }
        // Shortest job finishes first (equal shares).
        let min_idx = (0..sizes.len()).min_by_key(|&i| sizes[i]).unwrap();
        let first = ends
            .borrow()
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(i, _)| i)
            .unwrap();
        prop_assert_eq!(sizes[first], sizes[min_idx]);
    }

    /// Determinism of the slab/wake-dedup executor: a workload that
    /// exercises slot recycling (short-lived nested tasks), duplicate
    /// same-instant wakes (multi-waiter flags set together), and timer
    /// events gives the identical event count and final clock when
    /// re-run with the same seed.
    #[test]
    fn slab_and_wake_dedup_preserve_determinism(
        seeds in prop::collection::vec(1u64..500, 2..8),
        spawn_depth in 1usize..4,
    ) {
        use elanib_simcore::Flag;
        let run = || {
            let sim = Sim::new(9);
            let gate = Flag::new();
            for (i, &sd) in seeds.iter().enumerate() {
                // Waiters: all woken by the same flag at one instant
                // (the dedup-prone pattern).
                let (s, g) = (sim.clone(), gate.clone());
                sim.spawn(format!("waiter{i}"), async move {
                    g.wait().await;
                    s.sleep(Dur::from_ns(sd)).await;
                });
                // Nested short-lived spawns: recycle slab slots while
                // the sim is still running.
                let s = sim.clone();
                let depth = spawn_depth;
                sim.spawn(format!("nest{i}"), async move {
                    for d in 0..depth {
                        let s2 = s.clone();
                        let done = Flag::new();
                        let d2 = done.clone();
                        s.spawn(format!("leaf{i}.{d}"), async move {
                            s2.sleep(Dur::from_ns(sd * (d as u64 + 1))).await;
                            d2.set();
                        });
                        done.wait().await;
                    }
                });
            }
            let s = sim.clone();
            sim.spawn("setter", async move {
                s.sleep(Dur::from_ns(100)).await;
                gate.set();
            });
            let t = sim.run().unwrap();
            (t, sim.events_processed(), sim.live_tasks())
        };
        let a = run();
        prop_assert_eq!(a, run());
        prop_assert_eq!(a.2, 0); // every slot reclaimed
    }

    /// Mailbox preserves FIFO order for any interleaving of pushes.
    #[test]
    fn mailbox_order_preserved(values in prop::collection::vec(0u32..1000, 1..50)) {
        use elanib_simcore::Mailbox;
        let sim = Sim::new(5);
        let mb: Mailbox<u32> = Mailbox::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let n = values.len();
        let (m, g) = (mb.clone(), got.clone());
        sim.spawn("consumer", async move {
            for _ in 0..n {
                let v = m.recv().await;
                g.borrow_mut().push(v);
            }
        });
        let s = sim.clone();
        let vals = values.clone();
        sim.spawn("producer", async move {
            for (k, v) in vals.into_iter().enumerate() {
                // Irregular but deterministic pacing.
                s.sleep(Dur::from_ns((v as u64 * 7 + k as u64) % 50)).await;
                mb.push(v);
            }
        });
        sim.run().unwrap();
        prop_assert_eq!(&*got.borrow(), &values);
    }
}

/// Run one randomized schedule under an explicit payload mode and
/// return every observable: the full `(time, step)` execution log
/// (ordering-sensitive), the final clock, and the event count.
fn payload_mode_run(
    mode: elanib_simcore::PayloadMode,
    chains: &[Vec<u64>],
) -> (Vec<(u64, u64)>, u64, u64) {
    use elanib_simcore::Mailbox;
    let sim = Sim::with_payload_mode(11, mode);
    let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let mb: Mailbox<u64> = Mailbox::new();
    for (i, chain) in chains.iter().enumerate() {
        let s = sim.clone();
        let l = log.clone();
        let m = mb.clone();
        let chain = chain.clone();
        let first = chain[0];
        sim.spawn(format!("p{i}"), async move {
            for (k, &d) in chain.iter().enumerate() {
                s.sleep(Dur::from_ps(d)).await;
                l.borrow_mut()
                    .push((s.now().as_ps(), ((i as u64) << 8) | k as u64));
            }
            m.push(i as u64);
        });
        // A timed closure event competing with the timers at a nearby
        // instant (same-instant ordering is part of the contract).
        let l = log.clone();
        sim.call_in(Dur::from_ps(first), move |s| {
            l.borrow_mut().push((s.now().as_ps(), 40_000 + i as u64))
        });
    }
    let total = chains.len();
    let s = sim.clone();
    let l = log.clone();
    sim.spawn("consumer", async move {
        for _ in 0..total {
            let v = mb.recv().await;
            l.borrow_mut().push((s.now().as_ps(), 10_000 + v));
            s.sleep(Dur::from_ns(3)).await;
        }
    });
    let end = sim.run().unwrap();
    let out = log.borrow().clone();
    (out, end.as_ps(), sim.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flattened tagged-union event payload must replay the boxed
    /// legacy path exactly on arbitrary schedules: same dispatch order
    /// (full log), same wake-driven consumer order, same final clock,
    /// same event count.
    #[test]
    fn tagged_and_legacy_payloads_agree_on_random_schedules(
        chains in prop::collection::vec(
            prop::collection::vec(0u64..5_000_000, 1..8),
            1..12,
        ),
    ) {
        let tagged = payload_mode_run(elanib_simcore::PayloadMode::Tagged, &chains);
        let legacy = payload_mode_run(elanib_simcore::PayloadMode::Legacy, &chains);
        prop_assert_eq!(tagged, legacy);
    }
}
