//! Adaptive per-pair lookahead vs uniform global-min windows: the two
//! horizon schemes must be *event-log identical* — same arrivals, same
//! timestamps, same final clock — on randomized ring partitions, and
//! both must match the one-shard serial reference. The adaptive engine
//! may only change how far each barrier round lets a shard dispatch,
//! never what the model observes.
//!
//! Lives in its own integration binary (= its own process) so the
//! `ELANIB_ADAPTIVE_LOOKAHEAD` escape-hatch check can flip the env var
//! without racing the library unit tests.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use proptest::prelude::*;

use elanib_simcore::{
    run_sharded_with, Dur, Lookahead, Outbox, ShardModel, ShardMsg, ShardRunStats, Sim,
};

/// Serializes every test in this binary: the escape-hatch check flips
/// `ELANIB_ADAPTIVE_LOOKAHEAD`, which the other tests' mode assertions
/// read. Lock poisoning (a failed sibling) must not mask this file's
/// own assertions, hence the into_inner fallback.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn owner(node: usize, n_nodes: usize, k: usize) -> usize {
    node * k / n_nodes
}

/// Tokens hop between ring-adjacent stations only (left or right by
/// the token's own hash), so cross-shard traffic exists exactly
/// between ring-adjacent contiguous blocks — the sparse influence
/// graph the pairwise spec declares. Every arrival is logged as
/// `(at, id)` and folded sorted, so same-instant delivery order is
/// observationally irrelevant (the model-arbitration contract).
struct RingModel {
    n_nodes: usize,
    k: usize,
    wire: Dur,
    hops: u32,
    seed_stride: usize,
}

#[derive(Clone, Copy)]
struct Tok {
    dst: usize,
    id: u64,
    ttl: u32,
}

type ArrivalLog = Rc<RefCell<BTreeMap<usize, Vec<(u64, u64)>>>>;

#[derive(Clone)]
struct St {
    cfg: Rc<(usize, usize, Dur)>, // (n_nodes, k, wire)
    log: ArrivalLog,
    sim: Sim,
    out: Outbox<Tok>,
}

fn arrive(st: &St, tok: Tok) {
    let (n, k, wire) = *st.cfg;
    st.log
        .borrow_mut()
        .entry(tok.dst)
        .or_default()
        .push((st.sim.now().as_ps(), tok.id));
    if tok.ttl == 0 {
        return;
    }
    let h = lcg(tok.id ^ (tok.dst as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let step = if h & 1 == 0 { 1 } else { n - 1 };
    let next = Tok {
        dst: (tok.dst + step) % n,
        id: lcg(tok.id),
        ttl: tok.ttl - 1,
    };
    let delay = Dur(wire.as_ps() * (1 + (h >> 1) % 3));
    let (here, there) = (owner(tok.dst, n, k), owner(next.dst, n, k));
    if here == there {
        let st2 = st.clone();
        st.sim
            .call_at(st.sim.now() + delay, move |_| arrive(&st2, next));
    } else {
        st.out.send(there, delay, next);
    }
}

impl ShardModel for RingModel {
    type Msg = Tok;
    type State = St;
    type Out = (BTreeMap<usize, Vec<(u64, u64)>>, u64);

    fn build(&mut self, shard: usize, sim: &Sim, out: &Outbox<Tok>) -> St {
        let st = St {
            cfg: Rc::new((self.n_nodes, self.k, self.wire)),
            log: Rc::new(RefCell::new(BTreeMap::new())),
            sim: sim.clone(),
            out: out.clone(),
        };
        for node in (0..self.n_nodes).step_by(self.seed_stride) {
            if owner(node, self.n_nodes, self.k) == shard {
                let st2 = st.clone();
                let id = lcg(node as u64);
                let start = Dur(self.wire.as_ps() * (1 + id % 5));
                let tok = Tok {
                    dst: node,
                    id,
                    ttl: self.hops,
                };
                sim.call_at(sim.now() + start, move |_| arrive(&st2, tok));
            }
        }
        st
    }

    fn deliver(&mut self, st: &mut St, sim: &Sim, msg: ShardMsg<Tok>) {
        let st2 = st.clone();
        let tok = msg.payload;
        sim.call_at(msg.at, move |_| arrive(&st2, tok));
    }

    fn finish(&mut self, st: St, sim: &Sim) -> Self::Out {
        let mut log = st.log.take();
        for v in log.values_mut() {
            v.sort_unstable();
        }
        (log, sim.now().as_ps())
    }
}

/// The sparse spec a contiguous ring-block partition justifies: only
/// ring-adjacent shard pairs share a channel, bounded by one wire.
fn ring_pairs(k: usize, wire: Dur) -> Vec<Vec<Option<Dur>>> {
    (0..k)
        .map(|s| {
            (0..k)
                .map(|d| (k > 1 && (((s + 1) % k == d) || ((d + 1) % k == s))).then_some(wire))
                .collect()
        })
        .collect()
}

type MergedLog = BTreeMap<usize, Vec<(u64, u64)>>;

fn run(look: Lookahead, n_nodes: usize, k: usize, hops: u32) -> (MergedLog, u64, ShardRunStats) {
    let wire = Dur::from_ns(25);
    let shards: Vec<(u64, RingModel)> = (0..k)
        .map(|_| {
            (
                11,
                RingModel {
                    n_nodes,
                    k,
                    wire,
                    hops,
                    seed_stride: 3,
                },
            )
        })
        .collect();
    let (outs, stats) = run_sharded_with(look, shards);
    let mut merged: MergedLog = BTreeMap::new();
    let mut end = 0u64;
    for (log, t_end) in outs {
        for (node, v) in log {
            assert!(
                merged.insert(node, v).is_none(),
                "node {node} reported by two shards"
            );
        }
        end = end.max(t_end);
    }
    (merged, end, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-pair adaptive horizons vs the uniform global-min window vs
    /// the serial one-shard reference: byte-identical arrival logs and
    /// final clocks on randomized ring partitions.
    #[test]
    fn adaptive_is_event_log_identical_to_global_min(
        k in 1usize..=4,
        extra_nodes in 0usize..=12,
        hops in 4u32..=40,
    ) {
        let _g = env_lock();
        let n_nodes = 2 * k + extra_nodes; // every shard owns >= 2 nodes
        let wire = Dur::from_ns(25);
        let (serial, serial_end, _) = run(Lookahead::Uniform(wire), n_nodes, 1, hops);
        prop_assert!(!serial.is_empty());
        let (uni, uni_end, uni_stats) = run(Lookahead::Uniform(wire), n_nodes, k, hops);
        let (ada, ada_end, ada_stats) =
            run(Lookahead::Pairwise(ring_pairs(k, wire)), n_nodes, k, hops);
        prop_assert!(!uni_stats.adaptive);
        prop_assert!(ada_stats.adaptive, "pairwise spec must engage adaptive horizons");
        prop_assert_eq!(&uni, &serial, "uniform {}-shard diverged from serial", k);
        prop_assert_eq!(&ada, &serial, "adaptive {}-shard diverged from serial", k);
        prop_assert_eq!(uni_end, serial_end);
        prop_assert_eq!(ada_end, serial_end);
    }
}

/// On a sparse ring the adaptive horizons must also pay off where it
/// counts: fewer barrier rounds than uniform global-min windows for
/// the same event total.
#[test]
fn adaptive_cuts_barrier_rounds_on_a_sparse_ring() {
    let _g = env_lock();
    let wire = Dur::from_ns(25);
    let (k, n_nodes, hops) = (4usize, 16usize, 60u32);
    let (uni, _, uni_stats) = run(Lookahead::Uniform(wire), n_nodes, k, hops);
    let (ada, _, ada_stats) = run(Lookahead::Pairwise(ring_pairs(k, wire)), n_nodes, k, hops);
    assert_eq!(uni, ada);
    assert_eq!(uni_stats.events, ada_stats.events, "same events either way");
    assert!(
        ada_stats.rounds < uni_stats.rounds,
        "adaptive rounds {} not below uniform rounds {}",
        ada_stats.rounds,
        uni_stats.rounds
    );
}

/// The escape hatch: `ELANIB_ADAPTIVE_LOOKAHEAD=0` collapses a
/// pairwise spec to its global minimum — same results, uniform
/// windows, `adaptive: false` in the stats. This binary is its own
/// process, and [`env_lock`] keeps the flip from racing the sibling
/// tests' mode assertions.
#[test]
fn escape_hatch_collapses_to_global_min() {
    let _g = env_lock();
    let wire = Dur::from_ns(25);
    std::env::set_var("ELANIB_ADAPTIVE_LOOKAHEAD", "0");
    let (off, off_end, off_stats) = run(Lookahead::Pairwise(ring_pairs(3, wire)), 9, 3, 30);
    std::env::remove_var("ELANIB_ADAPTIVE_LOOKAHEAD");
    assert!(!off_stats.adaptive, "hatch must disable adaptive horizons");
    let (on, on_end, on_stats) = run(Lookahead::Pairwise(ring_pairs(3, wire)), 9, 3, 30);
    assert!(on_stats.adaptive);
    assert_eq!(off, on, "hatch changed observable results");
    assert_eq!(off_end, on_end);
}
