//! Deterministic kernel profiler: per-event-type cost attribution.
//!
//! `BENCH_regen.json` records end-to-end wall times, which say nothing
//! about *where* events/sec goes — payload dispatch? wheel cascades?
//! cross-shard barriers? This module answers that with the same
//! zero-cost-when-off discipline as the tracer (`elanib-trace`): the
//! kernel carries an `Option<Rc<KernelProfiler>>` that is `None`
//! unless `ELANIB_PROFILE` is set, so the hot path pays one null check
//! per dispatch when profiling is off and no timestamping, no
//! histogram update, no allocation.
//!
//! ## What is recorded
//!
//! Per [`EventPayload`](crate::kernel) tag (`poll` / `timer` / `call`)
//! plus a `wake` bucket for wake-queue drains:
//!
//! * event **counts** — deterministic (a pure function of seed and
//!   program);
//! * **simulated-ps advance histograms** (log2 buckets of `at - now`
//!   per dispatched event) — deterministic;
//! * **wall-ns attribution** — each dispatch-loop segment is timed and
//!   charged to the bucket of the event that ran, so the bucket sums
//!   account for essentially the whole `run()` wall time. Wall times
//!   are *not* deterministic and are kept separate from the
//!   deterministic fields in the output.
//!
//! Plus timing-wheel stats (cascade totals, occupancy histogram
//! sampled at each pop, high-water pending count), a wake-drain
//! batch-size histogram, and — submitted by the sharded engine
//! ([`crate::shard`]) — cross-shard barrier-stall time.
//!
//! ## Determinism contract
//!
//! Profiling *observes*; it never schedules events, draws randomness
//! or alters model timing — exhibit CSVs are byte-identical with
//! `ELANIB_PROFILE` on or off (locked by
//! `crates/bench/tests/profile_determinism.rs`). The deterministic
//! fields of a merged profile are themselves byte-identical across
//! runs and across sweep shard placements: per-sim profiles merge by
//! commutative summation, so worker scheduling cannot leak in.
//!
//! ## Collection
//!
//! On drop, a profiler that saw any event submits its totals to a
//! process-global accumulator; [`flush`] (called from the bench
//! harness's `emit`, right next to the tracer flush) takes the merged
//! totals, writes `<label>.profile.json` and appends a flat
//! `{"kind":"profile",...}` record to `ELANIB_BENCH_JSON` for
//! `elanib-report`'s hot-event table and per-event-type cost gate.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Number of event-type buckets: poll, timer, call, wake-drain.
pub const TAGS: usize = 4;
/// Bucket names, indexed by tag. `wake` covers wake-queue drains
/// (task polls triggered by synchronization primitives rather than by
/// a popped event).
pub const TAG_NAMES: [&str; TAGS] = ["poll", "timer", "call", "wake"];

/// log2 histogram width: bucket 0 holds zero, bucket `i` holds values
/// `v` with `floor(log2 v) == i - 1`, the last bucket saturates.
pub const HIST_BUCKETS: usize = 64;

#[inline]
fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| env_flag("ELANIB_PROFILE"))
}

/// Runtime override used by tests (env vars are cached once per
/// process). `Some(true)` forces every subsequently created simulation
/// to profile; `Some(false)` forces off; `None` restores env behavior.
static OVERRIDE_SET: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<bool>> = Mutex::new(None);

pub fn set_override(on: Option<bool>) {
    OVERRIDE_SET.store(on.is_some(), Ordering::SeqCst);
    *OVERRIDE.lock().unwrap() = on;
}

/// Whether new simulations should carry a profiler: the test override
/// if set, else the (cached) `ELANIB_PROFILE` environment flag.
pub fn enabled() -> bool {
    if OVERRIDE_SET.load(Ordering::SeqCst) {
        if let Some(on) = *OVERRIDE.lock().unwrap() {
            return on;
        }
    }
    env_enabled()
}

/// The deterministic half of a profile: counts and simulated-time
/// histograms. A pure function of (seed, program) per sim; merged
/// across sims by summation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfDet {
    /// Dispatched events per tag (`wake` counts woken tasks polled).
    pub count: [u64; TAGS],
    /// log2 histogram of simulated-ps clock advance per popped event,
    /// per tag (the `wake` row stays empty: drains never move the
    /// clock).
    pub advance_hist: [[u64; HIST_BUCKETS]; TAGS],
    /// log2 histogram of wake-drain batch sizes.
    pub wake_batch_hist: [u64; HIST_BUCKETS],
    /// log2 histogram of wheel occupancy (pending events) sampled
    /// before each pop.
    pub occupancy_hist: [u64; HIST_BUCKETS],
    /// Wheel cascade total (events re-filed by bucket rollovers).
    pub cascades: u64,
    /// High-water pending-event count across the run.
    pub high_water: u64,
}

// [u64; 64] has no derived Default (std stops at 32-element arrays).
impl Default for ProfDet {
    fn default() -> ProfDet {
        ProfDet {
            count: [0; TAGS],
            advance_hist: [[0; HIST_BUCKETS]; TAGS],
            wake_batch_hist: [0; HIST_BUCKETS],
            occupancy_hist: [0; HIST_BUCKETS],
            cascades: 0,
            high_water: 0,
        }
    }
}

impl ProfDet {
    /// Commutative summation merge (high-water maxes): the totals of a
    /// set of sims are independent of merge order, which is what makes
    /// merged profiles shard-placement-insensitive.
    pub fn merge(&mut self, o: &ProfDet) {
        for t in 0..TAGS {
            self.count[t] += o.count[t];
            for b in 0..HIST_BUCKETS {
                self.advance_hist[t][b] += o.advance_hist[t][b];
            }
        }
        for b in 0..HIST_BUCKETS {
            self.wake_batch_hist[b] += o.wake_batch_hist[b];
            self.occupancy_hist[b] += o.occupancy_hist[b];
        }
        self.cascades += o.cascades;
        self.high_water = self.high_water.max(o.high_water);
    }

    /// Deterministic JSON rendering of the deterministic fields —
    /// what the cross-run / cross-shard-count identity tests compare.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (t, name) in TAG_NAMES.iter().enumerate() {
            s.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"advance_hist\":{}}},",
                self.count[t],
                sparse_hist(&self.advance_hist[t])
            ));
        }
        s.push_str(&format!(
            "\"wake_batch_hist\":{},\"occupancy_hist\":{},\"cascades\":{},\"high_water\":{}}}",
            sparse_hist(&self.wake_batch_hist),
            sparse_hist(&self.occupancy_hist),
            self.cascades,
            self.high_water
        ));
        s
    }
}

/// Render a log2 histogram sparsely: `{"3":17,"5":2}` (bucket index →
/// count, zero buckets omitted) so 64-wide arrays don't bloat the
/// profile files.
fn sparse_hist(h: &[u64; HIST_BUCKETS]) -> String {
    let mut s = String::from("{");
    let mut first = true;
    for (i, &c) in h.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\"{i}\":{c}"));
    }
    s.push('}');
    s
}

/// One simulation's (or one merged flush window's) profile totals.
#[derive(Clone, Debug, Default)]
pub struct ProfTotals {
    pub det: ProfDet,
    /// Wall nanoseconds attributed per tag (dispatch-loop segment of
    /// each event, charged to its bucket). Not deterministic.
    pub wall_ns: [u64; TAGS],
    /// Total wall nanoseconds spent inside `run_events` dispatch
    /// loops, including the unattributed residue (loop entry/exit).
    pub run_wall_ns: u64,
    /// Cross-shard barrier stall, submitted by the sharded engine.
    pub barrier_stall_ns: u64,
    /// Barrier rounds behind `barrier_stall_ns`.
    pub barrier_rounds: u64,
    /// Simulations merged into these totals.
    pub sims: u64,
}

impl ProfTotals {
    /// Commutative summation merge; see [`ProfDet::merge`].
    pub fn merge(&mut self, o: &ProfTotals) {
        self.det.merge(&o.det);
        for t in 0..TAGS {
            self.wall_ns[t] += o.wall_ns[t];
        }
        self.run_wall_ns += o.run_wall_ns;
        self.barrier_stall_ns += o.barrier_stall_ns;
        self.barrier_rounds += o.barrier_rounds;
        self.sims += o.sims;
    }

    pub fn events(&self) -> u64 {
        // `wake` counts polled tasks, not popped events; the popped
        // total is the first three tags.
        self.det.count[0] + self.det.count[1] + self.det.count[2]
    }

    /// Wall-ns attributed to named buckets (event tags + barrier).
    pub fn attributed_ns(&self) -> u64 {
        self.wall_ns.iter().sum::<u64>() + self.barrier_stall_ns
    }

    /// Share of measured kernel wall time the named buckets account
    /// for, in percent (100.0 when nothing was measured).
    pub fn attribution_pct(&self) -> f64 {
        let total = self.run_wall_ns + self.barrier_stall_ns;
        if total == 0 {
            return 100.0;
        }
        100.0 * self.attributed_ns() as f64 / total as f64
    }
}

/// Per-simulation profiler. Lives on [`Sim`](crate::Sim) as an
/// `Option<Rc<KernelProfiler>>`; interior mutability keeps the kernel
/// call sites `&self`. On drop, non-empty totals are submitted to the
/// process-global accumulator for [`flush`].
pub struct KernelProfiler {
    t: RefCell<ProfTotals>,
}

impl KernelProfiler {
    /// Build a profiler for a new simulation if profiling is
    /// [`enabled`].
    pub fn from_config() -> Option<Rc<KernelProfiler>> {
        if !enabled() {
            return None;
        }
        Some(Self::forced())
    }

    /// Profiler regardless of environment (tests and harnesses that
    /// read the snapshot directly instead of going through the global
    /// accumulator).
    pub fn forced() -> Rc<KernelProfiler> {
        Rc::new(KernelProfiler {
            t: RefCell::new(ProfTotals {
                sims: 1,
                ..ProfTotals::default()
            }),
        })
    }

    /// Record one dispatched event: its tag, the simulated-ps clock
    /// advance it caused, the wheel occupancy before the pop, and the
    /// wall time of its dispatch-loop segment.
    #[inline]
    pub fn event(&self, tag: usize, advance_ps: u64, occupancy: u64, wall: Duration) {
        let mut t = self.t.borrow_mut();
        let ns = wall.as_nanos() as u64;
        t.det.count[tag] += 1;
        t.det.advance_hist[tag][log2_bucket(advance_ps)] += 1;
        t.det.occupancy_hist[log2_bucket(occupancy)] += 1;
        t.wall_ns[tag] += ns;
        t.run_wall_ns += ns;
    }

    /// Record one wake-queue drain: `batch` tasks polled, charged to
    /// the `wake` bucket.
    #[inline]
    pub fn wake_drain(&self, batch: u64, wall: Duration) {
        let mut t = self.t.borrow_mut();
        let ns = wall.as_nanos() as u64;
        t.det.count[3] += batch;
        t.det.wake_batch_hist[log2_bucket(batch)] += 1;
        t.wall_ns[3] += ns;
        t.run_wall_ns += ns;
    }

    /// Unattributed dispatch-loop wall (entry/exit residue): counted
    /// in the total so attribution honesty is measurable.
    #[inline]
    pub fn loop_residue(&self, wall: Duration) {
        self.t.borrow_mut().run_wall_ns += wall.as_nanos() as u64;
    }

    /// Latest wheel totals (monotone; called at the end of each run).
    pub fn note_wheel(&self, cascades: u64, high_water: u64) {
        let mut t = self.t.borrow_mut();
        t.det.cascades = t.det.cascades.max(cascades);
        t.det.high_water = t.det.high_water.max(high_water);
    }

    /// Wall-ns recorded in dispatch loops so far — the run-loop
    /// wrapper samples this before/after to compute its residue.
    pub fn run_wall_ns(&self) -> u64 {
        self.t.borrow().run_wall_ns
    }

    /// Copy of the totals so far (tests compare these directly).
    pub fn snapshot(&self) -> ProfTotals {
        self.t.borrow().clone()
    }
}

impl Drop for KernelProfiler {
    fn drop(&mut self) {
        let t = self.t.borrow();
        if t.events() == 0 && t.det.count[3] == 0 {
            return;
        }
        accumulator().lock().unwrap().merge(&t);
    }
}

fn accumulator() -> &'static Mutex<ProfTotals> {
    static ACC: OnceLock<Mutex<ProfTotals>> = OnceLock::new();
    ACC.get_or_init(|| Mutex::new(ProfTotals::default()))
}

/// Submit cross-shard barrier stall observed by [`crate::shard`]'s
/// engine (time shards spent blocked on window barriers). No-op when
/// profiling is disabled so the sharded hot path stays clean.
pub fn submit_barrier(stall: Duration, rounds: u64) {
    if !enabled() {
        return;
    }
    let mut acc = accumulator().lock().unwrap();
    acc.barrier_stall_ns += stall.as_nanos() as u64;
    acc.barrier_rounds += rounds;
}

/// Drain the global accumulator (tests and [`flush`]).
pub fn take() -> ProfTotals {
    std::mem::take(&mut *accumulator().lock().unwrap())
}

/// Paths written by one [`flush`] call.
#[derive(Debug, Default)]
pub struct FlushedProfile {
    pub profile_json: Option<PathBuf>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Full profile JSON for one flush window (label + totals).
fn profile_json(label: &str, t: &ProfTotals) -> String {
    let mut s = format!(
        "{{\n  \"exhibit\": \"{}\",\n  \"schema\": 3,\n  \"git_rev\": \"{}\",\n  \"sims\": {},\n  \"events\": {},\n",
        json_escape(label),
        json_escape(elanib_trace::git_rev()),
        t.sims,
        t.events(),
    );
    s.push_str(&format!(
        "  \"run_wall_ns\": {},\n  \"attributed_ns\": {},\n  \"attribution_pct\": {:.2},\n",
        t.run_wall_ns,
        t.attributed_ns(),
        t.attribution_pct()
    ));
    s.push_str("  \"buckets\": {\n");
    for (tag, name) in TAG_NAMES.iter().enumerate() {
        let count = t.det.count[tag];
        let ns_per_event = if count > 0 {
            t.wall_ns[tag] as f64 / count as f64
        } else {
            0.0
        };
        s.push_str(&format!(
            "    \"{name}\": {{\"count\": {count}, \"wall_ns\": {}, \"ns_per_event\": {ns_per_event:.1}}},\n",
            t.wall_ns[tag]
        ));
    }
    s.push_str(&format!(
        "    \"barrier\": {{\"rounds\": {}, \"stall_ns\": {}}}\n  }},\n",
        t.barrier_rounds, t.barrier_stall_ns
    ));
    s.push_str(&format!("  \"deterministic\": {}\n}}\n", t.det.to_json()));
    s
}

/// Flat JSONL record for `ELANIB_BENCH_JSON` — one line per flush,
/// parseable by the same minimal field extraction the bench gate uses.
fn profile_record(label: &str, t: &ProfTotals) -> String {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = format!(
        "{{\"kind\":\"profile\",\"schema\":3,\"git_rev\":\"{}\",\"exhibit\":\"{}\",\"sims\":{},\"events\":{},\"run_wall_ns\":{},\"attribution_pct\":{:.2}",
        json_escape(elanib_trace::git_rev()),
        json_escape(label),
        t.sims,
        t.events(),
        t.run_wall_ns,
        t.attribution_pct(),
    );
    for (tag, name) in TAG_NAMES.iter().enumerate() {
        s.push_str(&format!(
            ",\"{name}_count\":{},\"{name}_wall_ns\":{}",
            t.det.count[tag], t.wall_ns[tag]
        ));
    }
    s.push_str(&format!(
        ",\"barrier_rounds\":{},\"barrier_stall_ns\":{},\"wheel_cascades\":{},\"wheel_high_water\":{},\"unix_ts\":{ts}}}",
        t.barrier_rounds, t.barrier_stall_ns, t.det.cascades, t.det.high_water
    ));
    s
}

/// Drain the accumulator and write the profile sinks for run `label`:
/// `<label>.profile.json` in the trace output directory, plus a
/// `{"kind":"profile",...}` line appended to `ELANIB_BENCH_JSON` when
/// set. Returns `None` when nothing was collected — the every-day case
/// of profiling disabled, so drivers call this unconditionally.
pub fn flush(label: &str) -> Option<FlushedProfile> {
    let t = take();
    if t.sims == 0 && t.barrier_rounds == 0 {
        return None;
    }
    let dir = elanib_trace::config()
        .dir
        .unwrap_or_else(|| PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let mut out = FlushedProfile::default();
    let p = dir.join(format!("{label}.profile.json"));
    if std::fs::write(&p, profile_json(label, &t)).is_ok() {
        out.profile_json = Some(p);
    }
    if let Ok(path) = std::env::var("ELANIB_BENCH_JSON") {
        if !path.is_empty() {
            let _ = elanib_trace::jsonl::append_line(
                std::path::Path::new(&path),
                &profile_record(label, &t),
            );
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_are_monotone_and_saturate() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn disabled_config_builds_no_profiler() {
        set_override(Some(false));
        assert!(KernelProfiler::from_config().is_none());
        set_override(None);
    }

    #[test]
    fn merge_sums_counts_and_histograms() {
        let a = KernelProfiler::forced();
        a.event(0, 100, 3, Duration::from_nanos(50));
        a.wake_drain(2, Duration::from_nanos(10));
        let b = KernelProfiler::forced();
        b.event(0, 100, 3, Duration::from_nanos(70));
        b.event(2, 0, 1, Duration::from_nanos(30));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.det.count[0], 2);
        assert_eq!(m.det.count[2], 1);
        assert_eq!(m.det.count[3], 2);
        assert_eq!(m.sims, 2);
        assert_eq!(m.events(), 3);
        assert_eq!(m.wall_ns[0], 120);
        assert_eq!(m.det.advance_hist[0][log2_bucket(100)], 2);
        // Attribution: every recorded nanosecond is in a named bucket.
        assert_eq!(m.attribution_pct(), 100.0);
    }

    #[test]
    fn deterministic_json_is_stable_and_sparse() {
        let p = KernelProfiler::forced();
        p.event(1, 4096, 10, Duration::from_nanos(5));
        let s1 = p.snapshot().det.to_json();
        let s2 = p.snapshot().det.to_json();
        assert_eq!(s1, s2);
        assert!(s1.contains("\"timer\":{\"count\":1"), "{s1}");
        // Sparse: only the touched buckets appear.
        assert!(s1.contains(&format!("\"{}\":1", log2_bucket(4096))), "{s1}");
        assert!(!s1.contains("\"0\":0"), "{s1}");
    }

    #[test]
    fn profile_record_is_flat_jsonl() {
        let p = KernelProfiler::forced();
        p.event(0, 7, 1, Duration::from_nanos(40));
        let rec = profile_record("fig2_test", &p.snapshot());
        assert!(rec.starts_with("{\"kind\":\"profile\""), "{rec}");
        assert!(rec.contains("\"schema\":3"), "{rec}");
        assert!(rec.contains("\"exhibit\":\"fig2_test\""), "{rec}");
        assert!(rec.contains("\"poll_count\":1"), "{rec}");
        assert!(!rec.contains('\n'));
    }
}
