//! Hierarchical timing wheel — the kernel's pending-event structure.
//!
//! Replaces the former `BinaryHeap<Reverse<Ev>>` on the hottest path in
//! the repository: every one of the hundreds of millions of events a
//! full exhibit regeneration dispatches goes through one [`push`] and
//! one [`pop`](TimerWheel::pop). The wheel keeps the **exact same total
//! order** as the heap it replaces — `(at, seq)`, so same-instant
//! events still fire in schedule order — which the tier-2 determinism
//! check (byte-identical exhibit CSVs) and the model proptest in
//! `tests/wheel_model.rs` both lock.
//!
//! ## Structure
//!
//! * [`LEVELS`] levels of [`SLOTS`] buckets each; level `l` buckets are
//!   `2^(BITS·l)` picoseconds wide, so the wheel spans
//!   `2^(BITS·LEVELS)` ps (~281 simulated seconds) — far past any delay a
//!   model component schedules.
//! * An event is filed at the level of the highest bit in which its
//!   expiry differs from the wheel anchor (the classic hashed-wheel
//!   rule), so `push` is O(1): no per-event comparisons, no sift.
//! * A sorted **far list** absorbs the (in practice nonexistent)
//!   overflow beyond the top level, keeping the structure total.
//! * `pop` advances the anchor to the next occupied bucket — found by
//!   per-level occupancy bitmaps, one `trailing_zeros` per level — and
//!   **cascades** that bucket in a single batched pass: the anchor
//!   jumps directly to the bucket's minimal expiry (provably the
//!   global minimum — levels are scanned fine to coarse, slots early
//!   to late, and the far list is never earlier), the minimal entries
//!   drain in sequence order, and every other entry re-files exactly
//!   once against the final anchor. A multi-level rollover that the
//!   classic hashed wheel pays once per level therefore costs one
//!   `place` per entry here. Same-expiry events are ordered by their
//!   monotone sequence number, so cascade order is irrelevant to the
//!   final order — which is what makes the wheel exactly
//!   heap-equivalent.
//!
//! Per-event cost is O(1) amortized — each event is filed at most
//! twice (once at push, once when its bucket's batched cascade runs) —
//! versus O(log n) comparisons per heap operation. The number of
//! events moved by cascades is exposed as
//! [`cascades`](TimerWheel::cascades) and surfaces in the metrics
//! registry as `wheel.cascades`.

use std::collections::VecDeque;

/// log2 of the bucket count per level.
const BITS: u32 = 6;
/// Buckets per level (must stay ≤ 64: occupancy is a `u64` bitmap).
pub const SLOTS: usize = 1 << BITS;
/// Number of levels; the wheel spans `2^(BITS·LEVELS)` picoseconds.
pub const LEVELS: usize = 8;
/// First expiry-minus-anchor distance that can *never* be held by the
/// wheel proper, regardless of alignment (beyond it events go to the
/// far list; closer events may still overflow on a boundary crossing).
pub const HORIZON_PS: u64 = 1 << (BITS * LEVELS as u32);

/// One pending event: expiry, schedule order, payload.
struct Entry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

/// One wheel level: 64 buckets plus an occupancy bitmap (bit `i` set
/// iff `buckets[i]` is non-empty).
struct Level<T> {
    occupied: u64,
    buckets: [Vec<Entry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            occupied: 0,
            buckets: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A min-ordered (by `(at, seq)`) pending-event store with O(1) insert.
///
/// Sequence numbers are assigned internally by [`push`](Self::push) in
/// call order, reproducing the schedule-order tiebreak of the heap it
/// replaces. Expiries must be ≥ the expiry of the most recently popped
/// event (time never runs backwards in a discrete-event kernel).
pub struct TimerWheel<T> {
    /// The reference point bucket indices are computed against. Equals
    /// the expiry of the most recently popped event (transiently, a
    /// bucket-span start while cascading inside `pop`).
    anchor: u64,
    levels: Vec<Level<T>>,
    /// Overflow beyond the top level, sorted by `(at, seq)`
    /// *descending* so the minimum pops off the tail in O(1).
    far: Vec<Entry<T>>,
    /// Events expiring exactly at `anchor`, in seq order: the bucket
    /// currently being drained, plus any zero-delay events pushed while
    /// draining it (their seq is necessarily larger than all entries).
    cur: VecDeque<Entry<T>>,
    /// Reusable buffer for cascading a bucket (swapped with the bucket
    /// so neither Vec ever gives its capacity back to the allocator —
    /// bucket churn is the wheel's hottest memory traffic).
    scratch: Vec<Entry<T>>,
    next_seq: u64,
    len: usize,
    high_water: usize,
    cascaded: u64,
}

impl<T> TimerWheel<T> {
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            anchor: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            far: Vec::new(),
            cur: VecDeque::new(),
            scratch: Vec::new(),
            next_seq: 0,
            len: 0,
            high_water: 0,
            cascaded: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events moved by level-down cascades so far (monotone; a measure
    /// of how much re-filing the workload's delay distribution causes).
    pub fn cascades(&self) -> u64 {
        self.cascaded
    }

    /// High-water mark of pending events — how deep the wheel got over
    /// its lifetime (monotone; the profiler's occupancy ceiling).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Level an expiry files at, given the current anchor: the level
    /// containing the highest differing bit. `LEVELS` means "far list";
    /// an expiry equal to the anchor files at level 0 (its bucket is
    /// the first one `pop` inspects).
    #[inline(always)]
    fn level_of(&self, at: u64) -> usize {
        let xor = at ^ self.anchor;
        if xor == 0 {
            return 0;
        }
        ((63 - xor.leading_zeros()) / BITS) as usize
    }

    /// File an entry into its wheel level or the far list. Expects
    /// `entry.at >= self.anchor`.
    #[inline]
    fn place(&mut self, entry: Entry<T>) {
        let level = self.level_of(entry.at);
        if level >= LEVELS {
            // Beyond the top level: keep the far list sorted descending
            // by (at, seq) so the global minimum is at the tail.
            let key = (entry.at, entry.seq);
            let pos = self.far.partition_point(|e| (e.at, e.seq) > key);
            self.far.insert(pos, entry);
            return;
        }
        let slot = ((entry.at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let lv = &mut self.levels[level];
        lv.occupied |= 1 << slot;
        lv.buckets[slot].push(entry);
    }

    /// Insert an event expiring at `at` (picoseconds). Events pushed
    /// with equal `at` pop in push order. `at` must not precede the
    /// expiry of the most recently popped event; in release builds a
    /// stale expiry is clamped to the anchor instead of corrupting the
    /// structure.
    #[inline]
    pub fn push(&mut self, at: u64, payload: T) {
        debug_assert!(at >= self.anchor, "event scheduled into the past");
        let at = at.max(self.anchor);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        if at == self.anchor {
            // Zero-delay event while the anchor bucket drains: seq is
            // larger than everything buffered, so FIFO order is (at,
            // seq) order.
            self.cur.push_back(Entry { at, seq, payload });
            return;
        }
        self.place(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event `(at, payload)` in strict
    /// `(at, seq)` order.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        match self.pop_impl::<false>(0) {
            Ok(next) => next,
            Err(_) => unreachable!("unbounded pop cannot report a limit"),
        }
    }

    /// Remove and return the earliest event, but only if it expires
    /// strictly before `limit`.
    ///
    /// * `Ok(Some((at, payload)))` — earliest event, `at < limit`.
    /// * `Ok(None)` — no events pending.
    /// * `Err(at)` — the earliest pending event expires at `at >=
    ///   limit`. **Nothing is removed and the anchor does not move**,
    ///   so the caller may keep pushing events at or after the most
    ///   recently *popped* expiry — including into `[now, at)` — and
    ///   pop again later. This is what lets a windowed driver
    ///   ([`Sim::run_until`](crate::Sim::run_until)) stop at a window
    ///   boundary and inject externally-delivered events into the next
    ///   window without the wheel having committed to the out-of-window
    ///   minimum.
    pub fn pop_before(&mut self, limit: u64) -> Result<Option<(u64, T)>, u64> {
        self.pop_impl::<true>(limit)
    }

    /// Shared scan for [`pop`](Self::pop) and
    /// [`pop_before`](Self::pop_before). With `BOUNDED = false` every
    /// limit check compiles out and the code is exactly the unbounded
    /// pop. With `BOUNDED = true`, each arm of the scan learns the
    /// candidate minimum's expiry *before* mutating anything (clearing
    /// occupancy, jumping the anchor, cascading), so an out-of-window
    /// minimum returns `Err` with the structure untouched. The far-list
    /// re-home at the top of the loop is the one permitted mutation: it
    /// files entries against the *current* anchor, which is valid
    /// whether or not this pop commits.
    fn pop_impl<const BOUNDED: bool>(&mut self, limit: u64) -> Result<Option<(u64, T)>, u64> {
        if let Some(e) = self.cur.front() {
            if BOUNDED && e.at >= limit {
                return Err(e.at);
            }
            let e = self.cur.pop_front().expect("front checked");
            self.len -= 1;
            return Ok(Some((e.at, e.payload)));
        }
        if self.len == 0 {
            return Ok(None);
        }
        loop {
            // Re-home far-list entries that fit under the top level at
            // the current anchor. (Entries are taken from the tail —
            // the minimum — so at most a prefix of the ordered list
            // moves, and everything left is still beyond the wheel.)
            while let Some(e) = self.far.last() {
                if self.level_of(e.at) >= LEVELS {
                    break;
                }
                let e = self.far.pop().expect("checked non-empty");
                self.place(e);
            }

            // Level 0: buckets are 1 ps wide, so the first occupied
            // bucket at or after the anchor holds exactly the events of
            // the minimal expiry. Order within it by seq and drain.
            let base0 = (self.anchor & (SLOTS as u64 - 1)) as u32;
            let mask0 = self.levels[0].occupied & (!0u64 << base0);
            if mask0 != 0 {
                let slot = mask0.trailing_zeros() as usize;
                if BOUNDED {
                    // Level-0 buckets hold a single instant (1 ps wide
                    // within one 64 ps window of the anchor), so the
                    // first entry's expiry is the bucket's.
                    let at = self.levels[0].buckets[slot][0].at;
                    if at >= limit {
                        return Err(at);
                    }
                }
                let lv = &mut self.levels[0];
                lv.occupied &= !(1u64 << slot);
                let bucket = &mut lv.buckets[slot];
                debug_assert!(!bucket.is_empty());
                self.len -= 1;
                if bucket.len() == 1 {
                    // Dominant case: one event at this instant. Skip
                    // the sort and the `cur` round-trip entirely.
                    let e = bucket.pop().expect("checked len");
                    debug_assert!(e.at >= self.anchor);
                    self.anchor = e.at;
                    return Ok(Some((e.at, e.payload)));
                }
                bucket.sort_unstable_by_key(|e| e.seq);
                let at = bucket[0].at;
                debug_assert!(bucket.iter().all(|e| e.at == at));
                debug_assert!(at >= self.anchor);
                self.anchor = at;
                // drain(..) leaves the bucket's capacity in place for
                // its next tenant.
                self.cur.extend(bucket.drain(..));
                let e = self.cur.pop_front().expect("bucket was non-empty");
                return Ok(Some((e.at, e.payload)));
            }

            // Coarser levels: find the first occupied bucket at or
            // after the anchor's own. The bucket provably contains the
            // global minimum (levels are scanned fine to coarse, slots
            // early to late, and the far list is never earlier), so
            // instead of rolling its entries down one level per loop
            // iteration the whole multi-level rollover is batched into
            // a single pass: jump the anchor straight to the bucket's
            // minimal expiry, drain that expiry to `cur`, and re-file
            // every other entry exactly once against the final anchor.
            for level in 1..LEVELS {
                let shift = BITS * level as u32;
                let base = ((self.anchor >> shift) & (SLOTS as u64 - 1)) as u32;
                let mask = self.levels[level].occupied & (!0u64 << base);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as usize;
                if BOUNDED {
                    // The bucket provably holds the global minimum;
                    // find it before touching anything so an
                    // out-of-window minimum leaves the wheel intact.
                    let min_at = self.levels[level].buckets[slot]
                        .iter()
                        .map(|e| e.at)
                        .min()
                        .expect("occupied bucket is non-empty");
                    if min_at >= limit {
                        return Err(min_at);
                    }
                }
                if slot as u32 > base {
                    // Anchor jumps to the start of the bucket's span;
                    // bits below the level are zeroed (nothing earlier
                    // exists — every finer level was empty).
                    let span = 1u64 << shift;
                    let window = !((span << BITS) - 1);
                    self.anchor = (self.anchor & window) | ((slot as u64) << shift);
                }
                let lv = &mut self.levels[level];
                lv.occupied &= !(1u64 << slot);
                if lv.buckets[slot].len() == 1 {
                    // This bucket was found by scanning levels fine to
                    // coarse and slots early to late, so every other
                    // pending wheel event — same level later slots,
                    // coarser levels, the far list — expires after all
                    // of its entries. A singleton bucket therefore
                    // *is* the global minimum: return it outright
                    // instead of re-filing it through `level` more
                    // cascade rounds. Sparse queues (few tasks, one
                    // timer each) take this path for nearly every pop.
                    let e = lv.buckets[slot].pop().expect("checked len");
                    debug_assert!(e.at >= self.anchor);
                    self.anchor = e.at;
                    self.len -= 1;
                    return Ok(Some((e.at, e.payload)));
                }
                let at0 = lv.buckets[slot][0].at;
                if lv.buckets[slot].iter().all(|e| e.at == at0) {
                    // Same reasoning, next-most-common shape: every
                    // entry expires at one instant (collective wakeups
                    // schedule whole rank groups together). Draining
                    // here skips `level` re-filing rounds *per entry*.
                    let Self {
                        levels,
                        cur,
                        anchor,
                        len,
                        ..
                    } = self;
                    let bucket = &mut levels[level].buckets[slot];
                    bucket.sort_unstable_by_key(|e| e.seq);
                    debug_assert!(at0 >= *anchor);
                    *anchor = at0;
                    cur.extend(bucket.drain(..));
                    let e = cur.pop_front().expect("bucket was non-empty");
                    *len -= 1;
                    return Ok(Some((e.at, e.payload)));
                }
                // Mixed-expiry bucket: batched one-pass cascade. Swap
                // the bucket with the (empty) scratch buffer so
                // `place` can borrow `self`; swap back afterwards so
                // both keep their capacity.
                let mut bucket = std::mem::take(&mut self.scratch);
                let lv = &mut self.levels[level];
                std::mem::swap(&mut bucket, &mut lv.buckets[slot]);
                self.cascaded += bucket.len() as u64;
                let min_at = bucket.iter().map(|e| e.at).min().expect("non-empty");
                debug_assert!(min_at >= self.anchor);
                // Entries share this bucket, so they agree on every bit
                // at or above the bucket's slot index — each re-files
                // at a level *strictly below* `level` relative to the
                // new anchor and can never cascade again this pop.
                self.anchor = min_at;
                debug_assert!(self.cur.is_empty());
                for e in bucket.drain(..) {
                    if e.at == min_at {
                        self.cur.push_back(e);
                    } else {
                        debug_assert!(self.level_of(e.at) < level);
                        self.place(e);
                    }
                }
                self.scratch = bucket;
                self.cur.make_contiguous().sort_unstable_by_key(|e| e.seq);
                self.len -= 1;
                let e = self.cur.pop_front().expect("minimum drained to cur");
                return Ok(Some((e.at, e.payload)));
            }

            // Wheel empty: everything pending is in the far list. Jump
            // the anchor straight to its minimum and re-home.
            match self.far.last() {
                Some(e) => {
                    if BOUNDED && e.at >= limit {
                        return Err(e.at);
                    }
                    self.anchor = e.at;
                    // Loop: the far-drain above now re-homes it (and
                    // any same-window followers) into the wheel.
                }
                None => {
                    debug_assert_eq!(self.len, 0);
                    return Ok(None);
                }
            }
        }
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a heap ordered exactly like the pre-wheel
    /// kernel's `BinaryHeap<Reverse<Ev>>`.
    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        for (i, &at) in [50u64, 3, 17, 3, 1 << 20, 64, 63].iter().enumerate() {
            w.push(at, i as u32);
        }
        let order = drain(&mut w);
        let times: Vec<u64> = order.iter().map(|&(at, _)| at).collect();
        assert_eq!(times, vec![3, 3, 17, 50, 63, 64, 1 << 20]);
        // Equal expiries keep push order.
        assert_eq!(order[0].1, 1);
        assert_eq!(order[1].1, 3);
    }

    #[test]
    fn same_instant_events_pop_in_push_order() {
        let mut w = TimerWheel::new();
        for i in 0..100u32 {
            w.push(4096, i);
        }
        let payloads: Vec<u32> = drain(&mut w).into_iter().map(|(_, p)| p).collect();
        assert_eq!(payloads, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_push_while_draining_pops_last_among_equals() {
        let mut w = TimerWheel::new();
        w.push(10, 0);
        w.push(10, 1);
        assert_eq!(w.pop(), Some((10, 0)));
        // Pushed at the instant being drained: fires after payload 1
        // (larger seq), before anything later.
        w.push(10, 2);
        w.push(11, 3);
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((10, 2)));
        assert_eq!(w.pop(), Some((11, 3)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn crosses_level_boundaries() {
        // Expiries straddling every level boundary, pushed in reverse.
        let mut w = TimerWheel::new();
        let mut ats = Vec::new();
        for level in 0..LEVELS as u32 {
            let span = 1u64 << (BITS * level);
            ats.extend([span - 1, span, span + 1]);
        }
        for (i, &at) in ats.iter().rev().enumerate() {
            w.push(at, i as u32);
        }
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(at, _)| at).collect();
        let mut want = ats.clone();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    #[test]
    fn far_list_handles_beyond_horizon_expiries() {
        let mut w = TimerWheel::new();
        w.push(HORIZON_PS + 5, 0);
        w.push(3 * HORIZON_PS + 1, 1);
        w.push(HORIZON_PS + 5, 2);
        w.push(7, 3);
        assert_eq!(w.pop(), Some((7, 3)));
        assert_eq!(w.pop(), Some((HORIZON_PS + 5, 0)));
        // Equal far expiries keep push order too.
        assert_eq!(w.pop(), Some((HORIZON_PS + 5, 2)));
        // After the anchor jumped far, nearby pushes still order.
        w.push(3 * HORIZON_PS, 4);
        assert_eq!(w.pop(), Some((3 * HORIZON_PS, 4)));
        assert_eq!(w.pop(), Some((3 * HORIZON_PS + 1, 1)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        w.push(1, 0);
        w.push(HORIZON_PS * 2, 1);
        w.push(1, 2);
        assert_eq!(w.len(), 3);
        w.pop();
        assert_eq!(w.len(), 2);
        drain(&mut w);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut w = TimerWheel::new();
        assert_eq!(w.high_water(), 0);
        for i in 0..5u32 {
            w.push(10 + i as u64, i);
        }
        assert_eq!(w.high_water(), 5);
        drain(&mut w);
        assert_eq!(w.high_water(), 5, "high water is monotone");
        w.push(1 << 20, 9);
        assert_eq!(w.high_water(), 5);
    }

    #[test]
    fn cascades_are_counted() {
        let mut w = TimerWheel::new();
        // Two distinct expiries sharing one level-2 bucket: finding
        // the earlier one must cascade both down. (A singleton bucket
        // would short-circuit without cascading — that's the fast
        // path, covered by `interleaved_push_pop_matches_reference_heap`.)
        w.push(1 << (2 * BITS), 0);
        w.push((1 << (2 * BITS)) + 1, 1);
        assert_eq!(w.cascades(), 0);
        assert_eq!(w.pop(), Some((1 << (2 * BITS), 0)));
        assert!(w.cascades() >= 2);
    }

    #[test]
    fn mixed_bucket_rollover_cascades_each_entry_once() {
        // Two expiries 1 ps apart deep in level 7. The classic hashed
        // wheel rolls the survivor down one level per pop iteration
        // (≈ one re-file per level); the batched cascade files each
        // entry exactly once, so the cascade counter equals the bucket
        // size and nothing recascades on the follow-up pop.
        let mut w = TimerWheel::new();
        let base = 1u64 << (BITS * 7);
        w.push(base, 0);
        w.push(base + 1, 1);
        assert_eq!(w.pop(), Some((base, 0)));
        assert_eq!(w.cascades(), 2, "one batched pass, one count per entry");
        assert_eq!(w.pop(), Some((base + 1, 1)));
        assert_eq!(
            w.cascades(),
            2,
            "survivor re-filed once, popped via fast path"
        );
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_before_leaves_wheel_intact_and_accepts_earlier_pushes() {
        let mut w = TimerWheel::new();
        w.push(10, 0);
        w.push(5_000, 1);
        w.push(1 << 20, 2);
        assert_eq!(w.pop_before(100), Ok(Some((10, 0))));
        // Next event (5000) is out of window: reported, not removed,
        // and the anchor stays at 10.
        assert_eq!(w.pop_before(100), Err(5_000));
        assert_eq!(w.len(), 2);
        // A windowed driver may now inject events anywhere at or after
        // the last popped expiry — including *before* the reported
        // minimum — and ordering must hold.
        w.push(50, 3);
        w.push(4_999, 4);
        assert_eq!(w.pop_before(100), Ok(Some((50, 3))));
        assert_eq!(w.pop_before(100), Err(4_999));
        assert_eq!(w.pop(), Some((4_999, 4)));
        assert_eq!(w.pop(), Some((5_000, 1)));
        // Far-horizon minimum is reported without committing either.
        w.push(3 * HORIZON_PS, 5);
        assert_eq!(w.pop_before(1 << 20), Err(1 << 20));
        assert_eq!(w.pop(), Some((1 << 20, 2)));
        assert_eq!(w.pop_before(HORIZON_PS), Err(3 * HORIZON_PS));
        w.push((1 << 20) + 7, 6);
        assert_eq!(w.pop(), Some(((1 << 20) + 7, 6)));
        assert_eq!(w.pop(), Some((3 * HORIZON_PS, 5)));
        assert_eq!(w.pop_before(u64::MAX), Ok(None));
    }

    #[test]
    fn pop_before_same_instant_batch_keeps_seq_order_across_windows() {
        let mut w = TimerWheel::new();
        for i in 0..4u32 {
            w.push(200, i);
        }
        assert_eq!(w.pop_before(200), Err(200));
        // The batch was not disturbed: draining pops in push order.
        for i in 0..4u32 {
            assert_eq!(w.pop_before(201), Ok(Some((200, i))));
        }
        assert_eq!(w.pop_before(201), Ok(None));
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Deterministic pseudo-random op mix, compared op-for-op
        // against the exact heap the wheel replaced.
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        for i in 0..20_000u32 {
            if rng() % 3 != 0 {
                // Push with a delay profile spanning all levels.
                let exp = rng() % 40;
                let at = now + (rng() % (1 << exp.min(50)));
                wheel.push(at, i);
                heap.push(Reverse((at, seq, i)));
                seq += 1;
            } else {
                let want = heap.pop().map(|Reverse((at, _, p))| (at, p));
                let got = wheel.pop();
                assert_eq!(got, want, "divergence after {i} ops");
                if let Some((at, _)) = got {
                    now = at;
                }
            }
        }
        loop {
            let want = heap.pop().map(|Reverse((at, _, p))| (at, p));
            let got = wheel.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
