//! Synchronization primitives for simulation tasks.
//!
//! These are the building blocks every model component uses to signal
//! completions across tasks: a one-shot multi-waiter [`Flag`], an
//! unbounded FIFO [`Mailbox`], and a counted [`Semaphore`] with FIFO
//! admission.
//!
//! All of them wake waiters *at the current simulated time* (zero-delay
//! wake): any latency a model wants must be expressed explicitly with
//! [`crate::Sim::sleep`] or resource delays.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// One-shot event: starts unset, may be `set()` exactly once, and any
/// number of tasks can `wait()` on it (before or after the set).
///
/// Flags are the per-message completion signals of the whole model —
/// DMA done, wire done, chain predecessor done — which made `Flag::new`
/// the single largest allocation site on the hot path (several flags
/// per simulated message). The backing `Rc` allocation is therefore
/// *pooled*: dropping the last handle to a flag parks its allocation
/// in a bounded thread-local free list for the next `Flag::new` to
/// reuse. Pooling is invisible to behavior (state is reset on reuse
/// and the pool is per OS thread, so determinism is untouched);
/// `ELANIB_FLAG_POOL=off` disables it for A/B runs.
#[derive(Clone)]
pub struct Flag {
    inner: Rc<RefCell<FlagInner>>,
}

impl Default for Flag {
    fn default() -> Flag {
        Flag::new()
    }
}

/// Max parked flag allocations per thread. Each entry is one small
/// `Rc` block (~56 B), so even at the cap the pool holds well under
/// half a megabyte per sweep worker; the cap exists only to bound
/// memory on pathological churn, not to be hit in steady state.
const FLAG_POOL_CAP: usize = 8192;

thread_local! {
    static FLAG_POOL: RefCell<Vec<Rc<RefCell<FlagInner>>>> = const { RefCell::new(Vec::new()) };
    /// Lazily-read `ELANIB_FLAG_POOL` gate (`off`/`0` disables).
    static FLAG_POOL_ON: bool = !matches!(
        std::env::var("ELANIB_FLAG_POOL").as_deref(),
        Ok("off") | Ok("0")
    );
}

impl Drop for Flag {
    fn drop(&mut self) {
        // Last handle: park the allocation for reuse instead of
        // freeing it. Any never-woken waiters are dropped here, as
        // they would be by the Rc teardown this replaces.
        if Rc::strong_count(&self.inner) == 1 && FLAG_POOL_ON.with(|&on| on) {
            let waiters = {
                let mut i = self.inner.borrow_mut();
                i.set = false;
                std::mem::take(&mut i.waiters)
            };
            // Dropping a waker is reentrancy-safe here (it only
            // touches the kernel wake queue's Arc), but do it outside
            // the pool borrow anyway.
            drop(waiters);
            FLAG_POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < FLAG_POOL_CAP {
                    p.push(self.inner.clone());
                }
            });
        }
    }
}

#[derive(Default)]
struct FlagInner {
    set: bool,
    waiters: Waiters,
}

/// Waiter storage tuned for the overwhelmingly common shapes: most
/// flags are completion signals with exactly one waiter, so the first
/// waker lives inline and the vector (one allocation per flag) only
/// appears when a second *distinct* waiter shows up. Re-registrations
/// by the same task (spurious re-polls) replace in place via
/// [`Waker::will_wake`] instead of stacking duplicates.
#[derive(Default)]
enum Waiters {
    #[default]
    None,
    One(Waker),
    Many(Vec<Waker>),
}

impl Waiters {
    fn push(&mut self, w: Waker) {
        match self {
            Waiters::None => *self = Waiters::One(w),
            Waiters::One(first) => {
                if first.will_wake(&w) {
                    *first = w; // same task re-registering
                } else {
                    let Waiters::One(first) = std::mem::take(self) else {
                        unreachable!()
                    };
                    *self = Waiters::Many(vec![first, w]);
                }
            }
            Waiters::Many(v) => {
                if let Some(last) = v.last_mut() {
                    if last.will_wake(&w) {
                        *last = w;
                        return;
                    }
                }
                v.push(w);
            }
        }
    }

    /// Wake every registered waiter, in registration order.
    fn wake_all(self) {
        match self {
            Waiters::None => {}
            Waiters::One(w) => w.wake(),
            Waiters::Many(v) => {
                for w in v {
                    w.wake();
                }
            }
        }
    }
}

impl Flag {
    pub fn new() -> Flag {
        // Reuse a parked allocation when one is available; parked
        // inners were reset (unset, no waiters) on the way in.
        match FLAG_POOL.with(|p| p.borrow_mut().pop()) {
            Some(inner) => Flag { inner },
            None => Flag {
                inner: Rc::new(RefCell::new(FlagInner::default())),
            },
        }
    }

    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Set the flag and wake all waiters. Idempotent.
    pub fn set(&self) {
        let waiters = {
            let mut i = self.inner.borrow_mut();
            if i.set {
                return;
            }
            i.set = true;
            std::mem::take(&mut i.waiters)
        };
        waiters.wake_all();
    }

    /// Future resolving once the flag is set.
    pub fn wait(&self) -> FlagWait {
        FlagWait { flag: self.clone() }
    }
}

pub struct FlagWait {
    flag: Flag,
}

impl Future for FlagWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut i = self.flag.inner.borrow_mut();
        if i.set {
            Poll::Ready(())
        } else {
            // Re-registering on every poll is fine: dead wakers are
            // cheap and a flag is set at most once.
            i.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Unbounded multi-producer FIFO queue with asynchronous consumption.
///
/// Used as the inbox of every active model component (NIC engines,
/// progress engines, switch arbiters).
pub struct Mailbox<T> {
    inner: Rc<RefCell<MailboxInner<T>>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: self.inner.clone(),
        }
    }
}

struct MailboxInner<T> {
    queue: VecDeque<T>,
    waiters: VecDeque<Waker>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox {
            inner: Rc::new(RefCell::new(MailboxInner {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
            })),
        }
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Mailbox<T> {
        Mailbox::default()
    }

    /// Append an item and wake one waiting consumer, if any.
    pub fn push(&self, item: T) {
        let waker = {
            let mut i = self.inner.borrow_mut();
            i.queue.push_back(item);
            i.waiters.pop_front()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Future resolving to the next item, in FIFO order.
    pub fn recv(&self) -> MailboxRecv<T> {
        MailboxRecv {
            mb: self.clone(),
            registered: false,
        }
    }
}

pub struct MailboxRecv<T> {
    mb: Mailbox<T>,
    registered: bool,
}

impl<T> Future for MailboxRecv<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        let mut i = this.mb.inner.borrow_mut();
        if let Some(item) = i.queue.pop_front() {
            Poll::Ready(item)
        } else {
            // A consumer may be polled spuriously; avoid stacking
            // duplicate wakers for the same pending recv.
            if !this.registered {
                this.registered = true;
            } else {
                // Replace any stale waker registered by this future.
                // With a single consumer per mailbox (the common case)
                // the queue holds at most one waker.
            }
            i.waiters.push_back(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Which side of a [`race2`] finished first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Race2<A, B> {
    First(A),
    Second(B),
}

/// Await whichever of two futures completes first, with a fixed,
/// deterministic priority: `a` is polled before `b` on every wake, so
/// when both are ready at the same simulated instant `a` wins.
///
/// This is the kernel-level building block for timeout timers (work vs.
/// deadline) and shutdown races (inbox vs. done-flag) — anywhere a task
/// must wait on two conditions without a tie-break dependent on wake
/// order.
pub async fn race2<A, B>(a: impl Future<Output = A>, b: impl Future<Output = B>) -> Race2<A, B> {
    // Stack-pinned inside the enclosing task's state machine: a race
    // costs zero allocations, where it used to box both sides (the
    // single hottest allocation site in the MPI progress loop, which
    // races inbox-recv against done/error flags on every blocking
    // iteration). Poll order is unchanged: `a` strictly before `b`.
    let mut a = std::pin::pin!(a);
    let mut b = std::pin::pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Race2::First(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Race2::Second(v));
        }
        Poll::Pending
    })
    .await
}

/// Counted semaphore with strict FIFO admission. Used to model finite
/// hardware resources (send-queue slots, credits) where ordering
/// fairness matters for determinism.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

struct SemInner {
    available: usize,
    waiters: VecDeque<Flag>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                available: permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    pub fn available(&self) -> usize {
        self.inner.borrow().available
    }

    /// Acquire one permit, waiting in FIFO order. Pair each call with
    /// exactly one [`Semaphore::release`].
    pub async fn acquire(&self) {
        let flag = {
            let mut i = self.inner.borrow_mut();
            if i.available > 0 && i.waiters.is_empty() {
                i.available -= 1;
                return;
            }
            let f = Flag::new();
            i.waiters.push_back(f.clone());
            f
        };
        flag.wait().await;
        // The releaser decremented `available` on our behalf when it
        // set our flag, so nothing more to do.
    }

    /// Return one permit, handing it to the oldest waiter if any.
    pub fn release(&self) {
        let flag = {
            let mut i = self.inner.borrow_mut();
            if let Some(f) = i.waiters.pop_front() {
                Some(f)
            } else {
                i.available += 1;
                None
            }
        };
        if let Some(f) = flag {
            f.set();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;
    use crate::time::Dur;
    use std::cell::Cell;

    #[test]
    fn flag_wakes_waiter_set_after_wait() {
        let sim = Sim::new(1);
        let flag = Flag::new();
        let got = Rc::new(Cell::new(false));
        let (f1, g1, s1) = (flag.clone(), got.clone(), sim.clone());
        sim.spawn("waiter", async move {
            f1.wait().await;
            assert_eq!(s1.now().as_us_f64(), 5.0);
            g1.set(true);
        });
        let s2 = sim.clone();
        sim.spawn("setter", async move {
            s2.sleep(Dur::from_us(5)).await;
            flag.set();
        });
        sim.run().unwrap();
        assert!(got.get());
    }

    #[test]
    fn flag_set_before_wait_is_immediate() {
        let sim = Sim::new(1);
        let flag = Flag::new();
        flag.set();
        flag.set(); // idempotent
        let s = sim.clone();
        sim.spawn("w", async move {
            flag.wait().await;
            assert_eq!(s.now().as_ps(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn flag_wakes_multiple_waiters() {
        let sim = Sim::new(1);
        let flag = Flag::new();
        let count = Rc::new(Cell::new(0));
        for i in 0..4 {
            let (f, c) = (flag.clone(), count.clone());
            sim.spawn(format!("w{i}"), async move {
                f.wait().await;
                c.set(c.get() + 1);
            });
        }
        let s = sim.clone();
        sim.spawn("setter", async move {
            s.sleep(Dur::from_us(1)).await;
            flag.set();
        });
        sim.run().unwrap();
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn mailbox_fifo_order() {
        let sim = Sim::new(1);
        let mb: Mailbox<u32> = Mailbox::new();
        let out = Rc::new(RefCell::new(Vec::new()));
        let (m, o) = (mb.clone(), out.clone());
        sim.spawn("consumer", async move {
            for _ in 0..3 {
                let v = m.recv().await;
                o.borrow_mut().push(v);
            }
        });
        let s = sim.clone();
        sim.spawn("producer", async move {
            for v in [10, 20, 30] {
                s.sleep(Dur::from_us(1)).await;
                mb.push(v);
            }
        });
        sim.run().unwrap();
        assert_eq!(*out.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn mailbox_buffered_items_consumed_without_blocking() {
        let sim = Sim::new(1);
        let mb: Mailbox<u32> = Mailbox::new();
        mb.push(1);
        mb.push(2);
        assert_eq!(mb.len(), 2);
        let m = mb.clone();
        sim.spawn("c", async move {
            assert_eq!(m.recv().await, 1);
            assert_eq!(m.try_recv(), Some(2));
            assert!(m.try_recv().is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn race2_first_side_wins_ties() {
        let sim = Sim::new(1);
        let (fa, fb) = (Flag::new(), Flag::new());
        fa.set();
        fb.set();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn("racer", async move {
            match race2(fa.wait(), fb.wait()).await {
                Race2::First(()) => d.set(true),
                Race2::Second(()) => panic!("first-ready side must win the tie"),
            }
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn race2_resolves_to_earlier_event() {
        let sim = Sim::new(1);
        let mb: Mailbox<u32> = Mailbox::new();
        let stop = Flag::new();
        let winner = Rc::new(Cell::new(0u32));
        let (m, st, w) = (mb.clone(), stop.clone(), winner.clone());
        sim.spawn("racer", async move {
            match race2(m.recv(), st.wait()).await {
                Race2::First(v) => w.set(v),
                Race2::Second(()) => w.set(99),
            }
        });
        let s = sim.clone();
        sim.spawn("driver", async move {
            s.sleep(Dur::from_us(1)).await;
            mb.push(7);
            s.sleep(Dur::from_us(1)).await;
            stop.set();
        });
        sim.run().unwrap();
        assert_eq!(winner.get(), 7);
    }

    #[test]
    fn semaphore_limits_concurrency_fifo() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let active = Rc::new(Cell::new(0u32));
        let peak = Rc::new(Cell::new(0u32));
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..6 {
            let (sm, a, p, o, s) = (
                sem.clone(),
                active.clone(),
                peak.clone(),
                order.clone(),
                sim.clone(),
            );
            sim.spawn(format!("t{i}"), async move {
                sm.acquire().await;
                a.set(a.get() + 1);
                p.set(p.get().max(a.get()));
                o.borrow_mut().push(i);
                s.sleep(Dur::from_us(10)).await;
                a.set(a.get() - 1);
                sm.release();
            });
        }
        sim.run().unwrap();
        assert_eq!(peak.get(), 2);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4, 5]);
    }
}
