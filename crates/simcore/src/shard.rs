//! Conservative parallel discrete-event simulation: one model split
//! into shards, each shard a whole single-threaded [`Sim`] on its own
//! OS thread, synchronized by lookahead-bounded barrier windows.
//!
//! ## The protocol
//!
//! The engine is the classic synchronous-conservative (CMB-family)
//! scheme, built directly on [`Sim::run_until`]:
//!
//! 1. Every shard dispatches all local events in the current window
//!    `[W, W + lookahead)` with `run_until(W + lookahead)`.
//! 2. Cross-shard messages produced during the window are published to
//!    their destination shards at a barrier. A message sent at local
//!    time `t` must be delivered at `t + delay` with
//!    `delay >= lookahead` ([`Outbox::send`] asserts this), so every
//!    message lands **at or past the window end** — no shard can ever
//!    receive an event in its past.
//! 3. Each shard injects its incoming messages in the deterministic
//!    order `(at, src shard, send seq)` and re-probes its queue.
//! 4. A second barrier agrees on the next window: the global minimum
//!    of every shard's earliest pending event, plus the lookahead.
//!    When no shard has a pending event and no message is in flight,
//!    the run terminates.
//!
//! Windows therefore *jump* across idle time (the next window starts
//! at the global next-event time, not at `W + lookahead`), so a sparse
//! simulation doesn't pay per-lookahead rounds.
//!
//! ## Adaptive per-shard horizons ([`Lookahead::Pairwise`])
//!
//! The uniform scheme above throttles every shard to the *single*
//! worst-case cut delay. [`run_sharded_with`] accepts a per-directed-
//! pair lookahead matrix instead (for a fabric partition, the minimum
//! cable propagation over each pair's cut cables); the engine closes
//! it into all-pairs minimum influence delays ([`HorizonPlan`]) and
//! grants each shard its own horizon per round: the earliest instant
//! any sibling's pending work — or an echo of the shard's own sends
//! routed back through the cut graph — could still reach it. Shards
//! adjacent only through long or indirect paths dispatch far past the
//! global minimum, cutting barrier rounds without admitting a single
//! causality violation; `ELANIB_ADAPTIVE_LOOKAHEAD=0` is the escape
//! hatch back to uniform global-min windows.
//!
//! ## Determinism
//!
//! Within a shard the kernel is the ordinary deterministic serial
//! kernel. Across shards, two things make the composition reproducible
//! and — the property the repo's byte-identity gates care about —
//! *shard-count-insensitive*:
//!
//! * the engine delivers messages in the total order
//!   `(at, src, seq)`, independent of thread scheduling;
//! * the model must make same-instant effects order-insensitive
//!   (classic DES "arbitration" — e.g. fold same-time arrivals by a
//!   message id, never by queue position). The engine cannot see model
//!   state, so this half of the contract is the model's; the demo
//!   model in the tests and `elanib-fabric`'s partition tests show the
//!   pattern.
//!
//! ## Model contract
//!
//! * [`ShardModel::build`] spawns this shard's tasks. Tasks send
//!   cross-shard messages through the [`Outbox`] **only from inside
//!   the simulation** (i.e. while the window runs).
//! * [`ShardModel::deliver`] runs *between* windows, with the sim
//!   clock at or before `msg.at`. It must only schedule effects **at**
//!   `msg.at` (e.g. spawn a task that `sleep_until(msg.at)`s and then
//!   pushes a mailbox); it must not send — a send from the deliver
//!   phase could land inside the next window, violating lookahead.
//!   The engine asserts the outbox is empty after the deliver phase.
//!
//! The per-shard `Sim`s are built, run, and dropped entirely on their
//! worker threads — `Sim` stays `!Send`, exactly like the sweep
//! engine's per-point sims ([`crate`] module docs).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::kernel::{FlightEntry, Sim};
use crate::time::{Dur, SimTime};

/// `ELANIB_DES_SHARDS`: number of shards for conservative parallel
/// DES, `None` when unset/`0`/unparsable — the serial default. Read
/// per call (tests flip it mid-process, like `ELANIB_SWEEP_THREADS`).
pub fn des_shards() -> Option<usize> {
    std::env::var("ELANIB_DES_SHARDS")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// `ELANIB_ADAPTIVE_LOOKAHEAD`: per-shard adaptive barrier horizons for
/// [`Lookahead::Pairwise`] runs, on by default. `0` / `off` collapses a
/// pairwise spec to its global minimum and runs the classic uniform
/// windows — the escape hatch the determinism A/B tests diff against.
/// Read per call (tests flip it mid-process).
pub fn adaptive_lookahead() -> bool {
    !matches!(
        std::env::var("ELANIB_ADAPTIVE_LOOKAHEAD").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// Cross-shard lookahead specification for [`run_sharded_with`].
#[derive(Clone, Debug)]
pub enum Lookahead {
    /// One pessimistic bound for every shard pair — the classic global
    /// minimum. [`run_sharded`] wraps this variant.
    Uniform(Dur),
    /// Per-directed-pair bounds: `pairs[src][dst]` is a lower bound on
    /// the delay of any *direct* src→dst influence (for a fabric cut,
    /// the minimum propagation over the cut cables joining the two
    /// shards — see `elanib_fabric::Partition::pair_lookahead`).
    /// `None` means the partition has no direct src→dst channel, and a
    /// send on that pair is an error. Indirect influence (src→m→dst)
    /// is inferred by the engine as path sums, which is exactly why
    /// non-adjacent shards earn horizons beyond the global minimum.
    Pairwise(Vec<Vec<Option<Dur>>>),
}

/// Infinity marker in the ps-valued distance algebra (also what an
/// idle shard reports as its next-event time, so the two compose).
const INF: u64 = u64::MAX;

/// The static half of the adaptive-horizon computation: all-pairs
/// minimum influence delays over a [`Lookahead::Pairwise`] spec.
///
/// `dist(s, d)` (s ≠ d) is the minimum total delay of any influence
/// path s→…→d using at least one cross-shard channel; the diagonal
/// `dist(i, i)` is the minimum delay of a round trip i→…→i — the
/// earliest a shard's own activity can echo back to it. Both fall out
/// of one Floyd–Warshall pass seeded with the direct pair bounds and
/// an infinite diagonal.
///
/// Given each shard's earliest pending event time `next[k]`, the safe
/// dispatch horizon of shard `i` is
///
/// ```text
/// H_i = min( min_{k≠i}( next[k] + dist(k,i) ),  next[i] + dist(i,i) )
/// ```
///
/// — no event from any sibling's pending work, nor any echo of shard
/// `i`'s own sends, can arrive before `H_i`. The shard holding the
/// globally earliest event always gets `H_i` strictly past it (all
/// channel bounds are positive), so every round makes progress.
#[derive(Clone, Debug)]
pub struct HorizonPlan {
    n: usize,
    /// Row-major `[src·n + dst]` path-closure delays in ps; `INF` =
    /// unreachable. Diagonal holds the min round-trip delay.
    dist: Vec<u64>,
    /// Row-major direct channel bounds in ps (`INF` = no channel) —
    /// what [`Outbox::send`] asserts against.
    direct: Vec<u64>,
}

impl HorizonPlan {
    /// Build the plan from per-directed-pair bounds. Every declared
    /// bound must be positive — a zero-delay channel admits no
    /// conservative window at all.
    pub fn new(pairs: &[Vec<Option<Dur>>]) -> HorizonPlan {
        let n = pairs.len();
        let mut direct = vec![INF; n * n];
        for (s, row) in pairs.iter().enumerate() {
            assert_eq!(row.len(), n, "pairwise lookahead matrix must be square");
            for (d, &b) in row.iter().enumerate() {
                if let Some(b) = b {
                    assert!(
                        b.as_ps() > 0,
                        "pair ({s},{d}) declares a zero lookahead — a zero-delay \
                         cross-shard channel cannot support conservative windows"
                    );
                    direct[s * n + d] = b.as_ps();
                }
            }
        }
        // Floyd–Warshall with an infinite initial diagonal: closes
        // multi-hop paths for s ≠ d and leaves min cycles on the
        // diagonal. All weights positive, so walks are paths.
        let mut dist = direct.clone();
        for m in 0..n {
            for s in 0..n {
                let sm = dist[s * n + m];
                if sm == INF {
                    continue;
                }
                for d in 0..n {
                    let md = dist[m * n + d];
                    if md == INF {
                        continue;
                    }
                    let c = sm.saturating_add(md);
                    if c < dist[s * n + d] {
                        dist[s * n + d] = c;
                    }
                }
            }
        }
        HorizonPlan { n, dist, direct }
    }

    /// Uniform plan: every ordered pair — the diagonal included, since
    /// [`run_sharded`] has always permitted barrier-delivered
    /// self-sends — bounded by `la`.
    pub fn uniform(n: usize, la: Dur) -> HorizonPlan {
        let pairs: Vec<Vec<Option<Dur>>> = (0..n).map(|_| vec![Some(la); n]).collect();
        HorizonPlan::new(&pairs)
    }

    /// Minimum influence-path delay s→d (`None` if no path); the
    /// diagonal reports the min round-trip through any sibling.
    pub fn dist(&self, s: usize, d: usize) -> Option<Dur> {
        let v = self.dist[s * self.n + d];
        (v != INF).then_some(Dur(v))
    }

    /// The pessimistic global bound this spec collapses to when
    /// adaptive horizons are disabled: the minimum declared pair bound
    /// (`None` when no pair declares a channel — fully independent
    /// shards).
    pub fn global_min(&self) -> Option<Dur> {
        let v = *self.direct.iter().min().expect("n >= 1");
        (v != INF).then_some(Dur(v))
    }

    /// Safe dispatch horizon of shard `i` (ps; `INF` = unbounded)
    /// given each shard's earliest pending event time in ps (`INF` =
    /// idle). See the type docs for the bound and why it is safe.
    pub fn horizon(&self, i: usize, next: &[u64]) -> u64 {
        debug_assert_eq!(next.len(), self.n);
        let mut h = INF;
        for (k, &nk) in next.iter().enumerate() {
            h = h.min(nk.saturating_add(self.dist[k * self.n + i]));
        }
        h
    }

    /// Direct channel bound row for `src` (ps; `INF` = no channel).
    fn bounds_row(&self, src: usize) -> Vec<u64> {
        self.direct[src * self.n..(src + 1) * self.n].to_vec()
    }
}

/// A timestamped cross-shard event.
#[derive(Clone, Debug)]
pub struct ShardMsg<M> {
    /// Delivery instant: send time + a delay of at least the engine
    /// lookahead.
    pub at: SimTime,
    /// Sending shard.
    pub src: usize,
    /// Per-source send sequence number; with `(at, src)` it totally
    /// orders deliveries.
    pub seq: u64,
    pub payload: M,
}

impl<M> ShardMsg<M> {
    /// Time remaining until `at` on this shard's clock — what a
    /// deliver-phase task should `sleep` before acting.
    pub fn delay_from(&self, sim: &Sim) -> Dur {
        self.at.since(sim.now())
    }
}

struct OutboxInner<M> {
    msgs: Vec<(usize, ShardMsg<M>)>,
    seq: u64,
}

/// Cross-shard send handle, cloneable into this shard's tasks.
pub struct Outbox<M> {
    inner: Rc<RefCell<OutboxInner<M>>>,
    sim: Sim,
    shard: usize,
    /// Per-destination minimum send delay in ps (`INF` = no channel
    /// declared) — this shard's row of the lookahead spec.
    bounds: Rc<Vec<u64>>,
}

impl<M> Clone for Outbox<M> {
    fn clone(&self) -> Self {
        Outbox {
            inner: self.inner.clone(),
            sim: self.sim.clone(),
            shard: self.shard,
            bounds: self.bounds.clone(),
        }
    }
}

impl<M> Outbox<M> {
    fn new(sim: Sim, shard: usize, bounds: Rc<Vec<u64>>) -> Outbox<M> {
        Outbox {
            inner: Rc::new(RefCell::new(OutboxInner {
                msgs: Vec::new(),
                seq: 0,
            })),
            sim,
            shard,
            bounds,
        }
    }

    /// Queue a message for `dst`, delivered `delay` after the current
    /// sim time. `delay` must be at least the declared lookahead of
    /// the `(self, dst)` pair — that bound is what lets sibling shards
    /// dispatch their window without waiting for us.
    pub fn send(&self, dst: usize, delay: Dur, payload: M) {
        let bound = *self
            .bounds
            .get(dst)
            .unwrap_or_else(|| panic!("cross-shard send to unknown shard {dst}"));
        assert!(
            bound != INF,
            "cross-shard send {} -> {dst} on a pair with no declared channel — \
             the lookahead spec must bound every pair the model uses",
            self.shard
        );
        assert!(
            delay.as_ps() >= bound,
            "cross-shard delay {delay} is below the declared {} -> {dst} lookahead {} — \
             the pair's lookahead must be a lower bound on its cut-link delays",
            self.shard,
            Dur(bound)
        );
        let mut i = self.inner.borrow_mut();
        let seq = i.seq;
        i.seq += 1;
        i.msgs.push((
            dst,
            ShardMsg {
                at: self.sim.now() + delay,
                src: self.shard,
                seq,
                payload,
            },
        ));
    }

    fn drain(&self) -> Vec<(usize, ShardMsg<M>)> {
        std::mem::take(&mut self.inner.borrow_mut().msgs)
    }

    fn is_empty(&self) -> bool {
        self.inner.borrow().msgs.is_empty()
    }
}

/// One shard of a partitioned model. The value itself crosses to a
/// worker thread (hence `Send`); everything thread-local it builds
/// lives in `State`.
pub trait ShardModel: Send {
    /// Cross-shard message payload.
    type Msg: Send;
    /// Thread-local per-shard state created by [`build`](Self::build)
    /// (may hold `Rc` handles shared with the shard's tasks).
    type State;
    /// Per-shard result returned to the caller.
    type Out: Send;

    /// Spawn this shard's tasks into `sim`. Runs on the shard thread
    /// before the first window.
    fn build(&mut self, shard: usize, sim: &Sim, out: &Outbox<Self::Msg>) -> Self::State;

    /// Inject one incoming message. Called between windows in
    /// `(at, src, seq)` order with `sim.now() <= msg.at`; must only
    /// schedule effects at `msg.at` and must not send (see module
    /// docs).
    fn deliver(&mut self, state: &mut Self::State, sim: &Sim, msg: ShardMsg<Self::Msg>);

    /// Extract this shard's result after global termination.
    fn finish(&mut self, state: Self::State, sim: &Sim) -> Self::Out;
}

/// Per-shard observability record of one [`run_sharded`] call. All
/// fields are gathered unconditionally — the cost is a handful of
/// `Instant` samples per *round* (not per event), invisible next to a
/// window's worth of dispatching — so shard-balance problems are
/// visible without re-running under a profiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardObs {
    pub shard: usize,
    /// Kernel events this shard dispatched.
    pub events: u64,
    /// Cross-shard messages this shard sent / received.
    pub sent: u64,
    pub recv: u64,
    /// Wall-ns this shard spent blocked on the three per-round
    /// barriers — waiting for siblings, not simulating. The dominant
    /// term of parallel inefficiency in an unbalanced partition.
    pub stall_ns: u64,
    /// Rounds in which this shard dispatched at least one event.
    /// `active_rounds / rounds` is the shard's lookahead utilization:
    /// how often a granted window contained any local work.
    pub active_rounds: u64,
}

/// Aggregate statistics of one [`run_sharded`] call.
#[derive(Clone, Debug, Default)]
pub struct ShardRunStats {
    /// Barrier windows executed (identical on every shard).
    pub rounds: u64,
    /// Cross-shard messages exchanged, summed over shards.
    pub messages: u64,
    /// Kernel events dispatched, summed over shards.
    pub events: u64,
    /// Latest final clock across the shards — the global end time.
    pub end: SimTime,
    /// Whether the run used per-shard adaptive horizons (a
    /// [`Lookahead::Pairwise`] spec with [`adaptive_lookahead`] on)
    /// rather than uniform global-min windows.
    pub adaptive: bool,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardObs>,
}

/// A phase barrier that poisons instead of hanging when a sibling
/// thread panics: every waiter observes the poison and unwinds, so the
/// original panic propagates through the thread-scope join rather than
/// deadlocking the run. (`std::sync::Barrier` has no poison path.)
struct PhaseBarrier {
    state: Mutex<(usize, u64, bool)>, // (arrived, phase, poisoned)
    cv: Condvar,
    n: usize,
}

impl PhaseBarrier {
    fn new(n: usize) -> PhaseBarrier {
        PhaseBarrier {
            state: Mutex::new((0, 0, false)),
            cv: Condvar::new(),
            n,
        }
    }

    /// Returns `true` for exactly one caller per phase (the leader).
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        assert!(!s.2, "shard engine poisoned by a sibling shard panic");
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 += 1;
            self.cv.notify_all();
            return true;
        }
        let phase = s.1;
        while s.1 == phase && !s.2 {
            s = self.cv.wait(s).unwrap();
        }
        assert!(!s.2, "shard engine poisoned by a sibling shard panic");
        false
    }

    fn poison(&self) {
        self.state.lock().unwrap().2 = true;
        self.cv.notify_all();
    }
}

/// Poisons the barrier if the owning thread unwinds mid-protocol.
struct PoisonGuard<'a>(&'a PhaseBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

const NO_EVENT: u64 = u64::MAX;

/// Per-shard exit snapshot for cross-shard failure reports: where the
/// shard's clock stood and what it last dispatched. Filled by a drop
/// guard as each worker exits — cleanly *or* unwinding — so when any
/// shard panics, the report below can show every sibling's flight-ring
/// tail, not just the panicking shard's.
struct ShardSnapshot {
    now_ps: u64,
    events: u64,
    panicked: bool,
    flight: Vec<FlightEntry>,
}

/// Records a [`ShardSnapshot`] when the worker exits, however it exits.
/// Declared *after* the shard's `Sim` so it runs while the sim is
/// still alive, and alongside [`PoisonGuard`] so siblings blocked at a
/// barrier unwind (and snapshot themselves) instead of hanging.
struct SnapshotGuard<'a> {
    sim: &'a Sim,
    slot: &'a Mutex<Option<ShardSnapshot>>,
}

impl Drop for SnapshotGuard<'_> {
    fn drop(&mut self) {
        *self.slot.lock().unwrap() = Some(ShardSnapshot {
            now_ps: self.sim.now().as_ps(),
            events: self.sim.events_processed(),
            panicked: std::thread::panicking(),
            flight: self.sim.flight_tail(),
        });
    }
}

/// Fold every shard's snapshot plus the shared barrier-window state
/// into one multi-line report. This is what makes a *cross*-shard
/// stall diagnosable: the panicking shard's message says where *it*
/// died, but the stall's cause is usually a sibling whose window end
/// or pending-event time stopped advancing — visible here.
fn cross_shard_report(
    snaps: &[Mutex<Option<ShardSnapshot>>],
    window_ends: &[AtomicU64],
    next_times: &[AtomicU64],
    rounds: u64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "cross-shard diagnostics ({} shards, {} rounds):",
        snaps.len(),
        rounds
    );
    for (i, slot) in snaps.iter().enumerate() {
        let we = window_ends[i].load(Ordering::Acquire);
        let nt = next_times[i].load(Ordering::Acquire);
        let _ = write!(out, "\n  shard {i}: window_end=");
        match we {
            u64::MAX => out.push_str("run-to-completion"),
            w => {
                let _ = write!(out, "{}", SimTime(w));
            }
        }
        out.push_str(", next_event=");
        match nt {
            NO_EVENT => out.push_str("none"),
            t => {
                let _ = write!(out, "{}", SimTime(t));
            }
        }
        match &*slot.lock().unwrap() {
            Some(s) => {
                let _ = write!(
                    out,
                    ", now={}, events={}, {}",
                    SimTime(s.now_ps),
                    s.events,
                    if s.panicked {
                        "panicked"
                    } else {
                        "exited cleanly"
                    }
                );
                if s.flight.is_empty() {
                    out.push_str(", flight tail: empty");
                } else {
                    let show = s.flight.len().min(8);
                    let _ = write!(out, ", flight tail ({} of {}): ", show, s.flight.len());
                    for (j, e) in s.flight[s.flight.len() - show..].iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{e}");
                    }
                }
            }
            None => out.push_str(", no snapshot (worker did not exit)"),
        }
    }
    out
}

/// How the engine grants dispatch horizons each round.
enum HorizonMode {
    /// Classic uniform windows: every shard's horizon is the global
    /// earliest pending event plus one lookahead (ps).
    Global(u64),
    /// Per-shard horizons from the pairwise influence closure.
    Adaptive(HorizonPlan),
}

/// Run a partitioned model to completion under the classic uniform
/// global-min lookahead: one `(seed, shard)` pair per shard, each on
/// its own thread, synchronized as described in the [module
/// docs](self). Returns the per-shard results in shard order.
pub fn run_sharded<Mdl: ShardModel>(
    lookahead: Dur,
    shards: Vec<(u64, Mdl)>,
) -> (Vec<Mdl::Out>, ShardRunStats) {
    run_sharded_with(Lookahead::Uniform(lookahead), shards)
}

/// [`run_sharded`] with an explicit lookahead spec. A
/// [`Lookahead::Pairwise`] spec enables per-shard adaptive horizons
/// (unless `ELANIB_ADAPTIVE_LOOKAHEAD=0` collapses it to the global
/// minimum): each round, every shard may dispatch up to the earliest
/// instant any cross-shard influence could still reach it, computed
/// from the siblings' pending-event times and the pairwise influence
/// closure ([`HorizonPlan`]). Shards far (in influence delay) from the
/// globally earliest event get wider windows than the uniform scheme
/// grants — fewer rounds, the same events, and observationally
/// identical results for any model honouring the module contract.
pub fn run_sharded_with<Mdl: ShardModel>(
    look: Lookahead,
    shards: Vec<(u64, Mdl)>,
) -> (Vec<Mdl::Out>, ShardRunStats) {
    let n = shards.len();
    assert!(n >= 1, "run_sharded needs at least one shard");
    let plan = match &look {
        Lookahead::Uniform(la) => {
            assert!(
                la.as_ps() > 0,
                "lookahead must be positive — a zero-lookahead partition cannot make progress"
            );
            HorizonPlan::uniform(n, *la)
        }
        Lookahead::Pairwise(pairs) => {
            assert_eq!(
                pairs.len(),
                n,
                "pairwise lookahead spec is {}x{} but the run has {n} shards",
                pairs.len(),
                pairs.len()
            );
            HorizonPlan::new(pairs)
        }
    };
    let mode = match &look {
        Lookahead::Uniform(la) => HorizonMode::Global(la.as_ps()),
        Lookahead::Pairwise(_) if adaptive_lookahead() => HorizonMode::Adaptive(plan.clone()),
        Lookahead::Pairwise(_) => {
            // Escape hatch: the pessimistic bound every pair satisfies.
            // Fully independent shards (no channel anywhere) still need
            // a positive window step; any value is sound there because
            // nothing ever crosses.
            HorizonMode::Global(plan.global_min().map_or(1, |d| d.as_ps()))
        }
    };
    let adaptive = matches!(mode, HorizonMode::Adaptive(_));

    let barrier = PhaseBarrier::new(n);
    let inboxes: Vec<Mutex<Vec<ShardMsg<Mdl::Msg>>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let obs: Vec<Mutex<ShardObs>> = (0..n).map(|_| Mutex::new(ShardObs::default())).collect();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_EVENT)).collect();
    // Per-shard window ends in ps (`u64::MAX` = run to completion);
    // the first round probes with limit 0 (nothing dispatches, every
    // shard just reports its earliest event).
    let window_ends: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let finished = std::sync::atomic::AtomicBool::new(false);
    let snapshots: Vec<Mutex<Option<ShardSnapshot>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let rounds = AtomicU64::new(0);
    let messages = AtomicU64::new(0);
    let events = AtomicU64::new(0);
    let end_ps = AtomicU64::new(0);

    let run_shard = |shard: usize, seed: u64, mut model: Mdl| -> Mdl::Out {
        let _guard = PoisonGuard(&barrier);
        let sim = Sim::new(seed);
        let _snap = SnapshotGuard {
            sim: &sim,
            slot: &snapshots[shard],
        };
        let outbox = Outbox::new(sim.clone(), shard, Rc::new(plan.bounds_row(shard)));
        let mut state = model.build(shard, &sim, &outbox);
        let mut my = ShardObs {
            shard,
            ..ShardObs::default()
        };
        let mut stall = std::time::Duration::ZERO;
        let mut my_rounds = 0u64;
        let mut prev_events = 0u64;

        loop {
            let limit = SimTime(window_ends[shard].load(Ordering::Acquire));
            let mut local_next = sim.run_until(limit);
            // Publish this window's sends. A message must land at or
            // past its *destination's* window end — the destination may
            // be dispatching a wider window than ours right now.
            let sent = outbox.drain();
            messages.fetch_add(sent.len() as u64, Ordering::Relaxed);
            my.sent += sent.len() as u64;
            for (dst, msg) in sent {
                assert!(dst < n, "cross-shard send to unknown shard {dst} (of {n})");
                let dst_limit = SimTime(window_ends[dst].load(Ordering::Acquire));
                assert!(
                    msg.at >= dst_limit,
                    "message at {} precedes shard {dst}'s window end {dst_limit} — \
                     lookahead violated",
                    msg.at
                );
                inboxes[dst].lock().unwrap().push(msg);
            }
            let t0 = std::time::Instant::now();
            barrier.wait(); // all sends routed
            stall += t0.elapsed();

            let mut inbox = std::mem::take(&mut *inboxes[shard].lock().unwrap());
            my.recv += inbox.len() as u64;
            if !inbox.is_empty() {
                inbox.sort_by_key(|m| (m.at, m.src, m.seq));
                for msg in inbox {
                    debug_assert!(sim.now() <= msg.at);
                    model.deliver(&mut state, &sim, msg);
                }
                // Absorb deliver-phase wakeups (task spawns poll below
                // the limit, then sleep to their message's `at`); no
                // event at or past the limit can run here.
                local_next = sim.run_until(limit);
                assert!(
                    outbox.is_empty(),
                    "deliver phase generated a send — cross-shard sends must \
                     happen from simulation tasks during a window"
                );
            }
            next_times[shard].store(
                local_next.map_or(NO_EVENT, |t| t.as_ps()),
                Ordering::Release,
            );

            let t1 = std::time::Instant::now();
            if barrier.wait() {
                // Leader: agree on the next horizons (or termination).
                let next: Vec<u64> = next_times
                    .iter()
                    .map(|t| t.load(Ordering::Acquire))
                    .collect();
                let global = *next.iter().min().unwrap();
                if global == NO_EVENT {
                    finished.store(true, Ordering::Release);
                } else {
                    match &mode {
                        HorizonMode::Global(la_ps) => {
                            let w = global + la_ps;
                            for we in &window_ends {
                                we.store(w, Ordering::Release);
                            }
                        }
                        HorizonMode::Adaptive(plan) => {
                            for (i, we) in window_ends.iter().enumerate() {
                                we.store(plan.horizon(i, &next), Ordering::Release);
                            }
                        }
                    }
                }
                let r = rounds.fetch_add(1, Ordering::Relaxed) + 1;
                // Live heartbeat (out-of-band; no-op unless
                // ELANIB_PROGRESS is set, rate-limited inside).
                elanib_trace::progress::beat("shard", || {
                    format!(
                        "\"rounds\":{r},\"events\":{},\"messages\":{},\"next_event_ps\":{}",
                        events.load(Ordering::Relaxed),
                        messages.load(Ordering::Relaxed),
                        global
                    )
                });
            }
            barrier.wait(); // horizons agreed
            stall += t1.elapsed();
            my_rounds += 1;
            let ev = sim.events_processed();
            if ev != prev_events {
                my.active_rounds += 1;
                prev_events = ev;
            }
            if finished.load(Ordering::Acquire) {
                break;
            }
        }

        my.events = sim.events_processed();
        my.stall_ns = stall.as_nanos() as u64;
        events.fetch_add(my.events, Ordering::Relaxed);
        end_ps.fetch_max(sim.now().as_ps(), Ordering::Relaxed);
        // Charge this shard's barrier stall to the profiler's barrier
        // bucket (no-op when ELANIB_PROFILE is off).
        crate::profile::submit_barrier(stall, my_rounds);
        *obs[shard].lock().unwrap() = my;
        model.finish(state, &sim)
    };

    let mut outs: Vec<Option<Mdl::Out>> = Vec::with_capacity(n);
    outs.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(shard, (seed, model))| {
                let f = &run_shard;
                scope.spawn(move || f(shard, seed, model))
            })
            .collect();
        let mut panic_payload = None;
        for (shard, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outs[shard] = Some(out),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            // Attach every shard's exit snapshot — flight-ring tails
            // plus the shared barrier-window state — to the payload so
            // the surviving message diagnoses cross-shard stalls, not
            // just the shard that happened to die first.
            let report = cross_shard_report(
                &snapshots,
                &window_ends,
                &next_times,
                rounds.load(Ordering::Relaxed),
            );
            let msg = if let Some(s) = p.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                p.downcast_ref::<&str>().map(|s| s.to_string())
            };
            match msg {
                Some(m) => std::panic::resume_unwind(Box::new(format!("{m}\n{report}"))),
                None => {
                    // Opaque payload: report on stderr, re-raise as-is.
                    eprintln!("{report}");
                    std::panic::resume_unwind(p);
                }
            }
        }
    });

    let stats = ShardRunStats {
        rounds: rounds.load(Ordering::Relaxed),
        messages: messages.load(Ordering::Relaxed),
        events: events.load(Ordering::Relaxed),
        end: SimTime(end_ps.load(Ordering::Relaxed)),
        adaptive,
        per_shard: obs.iter().map(|o| *o.lock().unwrap()).collect(),
    };
    (
        outs.into_iter()
            .map(|o| o.expect("every shard joined cleanly"))
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mailbox;
    use std::collections::BTreeMap;

    /// Demo model: `n_nodes` stations forwarding tokens over a wire of
    /// `wire` minimum delay, block-partitioned across shards. Every
    /// arrival is recorded as `(at, token id)`; arrivals fold into the
    /// per-node output *sorted by (at, id)*, so same-instant delivery
    /// order — the one thing the engine cannot pin down — is
    /// observationally irrelevant (model-level arbitration).
    struct RelayModel {
        n_shards: usize,
        n_nodes: usize,
        wire: Dur,
        seeds_per_node: u64,
        hops: u32,
    }

    type Token = (u64, u32); // (id, hops left)
    type ArrivalLog = Rc<RefCell<Vec<Vec<(u64, u64)>>>>;

    struct RelayState {
        // arrivals[local node] = (at ps, token id)
        arrivals: ArrivalLog,
        boxes: Rc<Vec<Mailbox<Token>>>,
        lo: usize,
    }

    fn owner(node: usize, n_nodes: usize, n_shards: usize) -> usize {
        node * n_shards / n_nodes
    }

    fn node_range(shard: usize, n_nodes: usize, n_shards: usize) -> (usize, usize) {
        let lo = (shard * n_nodes).div_ceil(n_shards);
        let hi = ((shard + 1) * n_nodes).div_ceil(n_shards);
        (lo, hi)
    }

    fn lcg(x: u64) -> u64 {
        x.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    }

    /// Deterministic forwarding rule: where a token goes next and
    /// after what delay — a function of (token id, node) only, so it
    /// cannot depend on same-instant processing order.
    fn route(wire: Dur, n_nodes: usize, id: u64, node: usize) -> (usize, Dur) {
        let h = lcg(id ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let dst = (node + 1 + (h % 5) as usize) % n_nodes;
        let delay = Dur(wire.as_ps() * (1 + h % 4));
        (dst, delay)
    }

    impl ShardModel for RelayModel {
        type Msg = (usize, Token); // (dst node, token)
        type State = RelayState;
        type Out = Vec<(usize, usize, u64, u64)>; // (node, count, hash, last at)

        fn build(&mut self, shard: usize, sim: &Sim, out: &Outbox<Self::Msg>) -> RelayState {
            let (lo, hi) = node_range(shard, self.n_nodes, self.n_shards);
            let arrivals = Rc::new(RefCell::new(vec![Vec::new(); hi - lo]));
            let boxes: Rc<Vec<Mailbox<Token>>> =
                Rc::new((lo..hi).map(|_| Mailbox::new()).collect());
            for node in lo..hi {
                let boxes_c = boxes.clone();
                let sim_c = sim.clone();
                let out_c = out.clone();
                let arr = arrivals.clone();
                let (n_nodes, n_shards, wire) = (self.n_nodes, self.n_shards, self.wire);
                sim.spawn(format!("relay{node}"), async move {
                    let mb = boxes_c[node - lo].clone();
                    loop {
                        let (id, hops_left) = mb.recv().await;
                        arr.borrow_mut()[node - lo].push((sim_c.now().as_ps(), id));
                        if hops_left == 0 {
                            continue;
                        }
                        let (dst, delay) = route(wire, n_nodes, id, node);
                        let tok = (lcg(id), hops_left - 1);
                        if owner(dst, n_nodes, n_shards) == shard {
                            // Intra-shard: a courier task that sleeps
                            // the wire delay then delivers — the same
                            // observable schedule as the deliver-phase
                            // courier on the cross-shard path.
                            let s2 = sim_c.clone();
                            let b2 = boxes_c.clone();
                            sim_c.spawn("courier", async move {
                                s2.sleep(delay).await;
                                b2[dst - lo].push(tok);
                            });
                        } else {
                            out_c.send(owner(dst, n_nodes, n_shards), delay, (dst, tok));
                        }
                    }
                });
            }
            // Seed tokens: a few per node, injected at distinct times.
            for node in lo..hi {
                for k in 0..self.seeds_per_node {
                    let id = lcg(((node as u64) << 16) | k);
                    let mb = boxes[node - lo].clone();
                    let sim_c = sim.clone();
                    let start = Dur(self.wire.as_ps() * (1 + (id % 7)));
                    let hops = self.hops;
                    sim.spawn(format!("seed{node}.{k}"), async move {
                        sim_c.sleep(start).await;
                        mb.push((id, hops));
                    });
                }
            }
            RelayState {
                arrivals,
                boxes,
                lo,
            }
        }

        fn deliver(&mut self, state: &mut RelayState, sim: &Sim, msg: ShardMsg<Self::Msg>) {
            let (dst, tok) = msg.payload;
            let mb = state.boxes[dst - state.lo].clone();
            let sim_c = sim.clone();
            let delay = msg.delay_from(sim);
            sim.spawn("courier", async move {
                sim_c.sleep(delay).await;
                mb.push(tok);
            });
        }

        fn finish(&mut self, state: RelayState, _sim: &Sim) -> Self::Out {
            let mut arrivals = state.arrivals.borrow_mut();
            arrivals
                .iter_mut()
                .enumerate()
                .map(|(i, a)| {
                    a.sort_unstable();
                    let mut h = 0xcbf29ce484222325u64;
                    for &(at, id) in a.iter() {
                        h = lcg(h ^ at ^ id);
                    }
                    let last = a.last().map_or(0, |&(at, _)| at);
                    (state.lo + i, a.len(), h, last)
                })
                .collect()
        }
    }

    fn run_relay(n_shards: usize) -> (BTreeMap<usize, (usize, u64, u64)>, ShardRunStats) {
        let wire = Dur::from_ns(100);
        let n_nodes = 12;
        let shards: Vec<(u64, RelayModel)> = (0..n_shards)
            .map(|_| {
                (
                    9,
                    RelayModel {
                        n_shards,
                        n_nodes,
                        wire,
                        seeds_per_node: 2,
                        hops: 20,
                    },
                )
            })
            .collect();
        let (outs, stats) = run_sharded(wire, shards);
        let mut merged = BTreeMap::new();
        for out in outs {
            for (node, count, hash, last) in out {
                assert!(
                    merged.insert(node, (count, hash, last)).is_none(),
                    "node {node} reported by two shards"
                );
            }
        }
        (merged, stats)
    }

    #[test]
    fn shard_counts_are_observationally_identical() {
        let (serial, s1) = run_relay(1);
        assert_eq!(serial.len(), 12);
        assert_eq!(s1.messages, 0, "one shard exchanges nothing");
        for n in [2usize, 3, 4] {
            let (sharded, stats) = run_relay(n);
            assert_eq!(serial, sharded, "{n}-shard run diverged from serial");
            assert!(stats.messages > 0, "{n}-shard run must cross shards");
            assert_eq!(stats.end, s1.end, "global end time must agree");
        }
    }

    #[test]
    fn per_shard_observability_accounts_for_totals() {
        let (_, stats) = run_relay(3);
        assert_eq!(stats.per_shard.len(), 3);
        for (i, o) in stats.per_shard.iter().enumerate() {
            assert_eq!(o.shard, i);
            assert!(o.events > 0, "shard {i} dispatched nothing");
            assert!(o.active_rounds <= stats.rounds);
        }
        let events: u64 = stats.per_shard.iter().map(|o| o.events).sum();
        assert_eq!(events, stats.events, "per-shard events sum to the total");
        let sent: u64 = stats.per_shard.iter().map(|o| o.sent).sum();
        let recv: u64 = stats.per_shard.iter().map(|o| o.recv).sum();
        assert_eq!(sent, stats.messages, "every message was sent once");
        assert_eq!(recv, stats.messages, "every message was received once");
    }

    #[test]
    fn lookahead_violation_panics() {
        struct Bad;
        impl ShardModel for Bad {
            type Msg = ();
            type State = ();
            type Out = ();
            fn build(&mut self, _s: usize, sim: &Sim, out: &Outbox<()>) {
                let out = out.clone();
                let sim_c = sim.clone();
                sim.spawn("bad", async move {
                    sim_c.sleep(Dur::from_ns(5)).await;
                    out.send(0, Dur::from_ns(1), ()); // below lookahead
                });
            }
            fn deliver(&mut self, _st: &mut (), _sim: &Sim, _m: ShardMsg<()>) {}
            fn finish(&mut self, _st: (), _sim: &Sim) {}
        }
        let r =
            std::panic::catch_unwind(|| run_sharded(Dur::from_ns(100), vec![(1, Bad), (1, Bad)]));
        let p = r.expect_err("sub-lookahead send must be rejected");
        // The re-raised payload carries the cross-shard report: every
        // shard's barrier-window state, not just the panicking one's.
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .expect("enriched payload is a String");
        assert!(msg.contains("lookahead"), "{msg}");
        assert!(msg.contains("cross-shard diagnostics (2 shards"), "{msg}");
        assert!(msg.contains("shard 0:"), "{msg}");
        assert!(msg.contains("shard 1:"), "{msg}");
        assert!(msg.contains("window_end="), "{msg}");
        assert!(msg.contains("next_event="), "{msg}");
    }

    #[test]
    fn idle_time_is_jumped_not_walked() {
        // One event a full second out, lookahead 1 us: a fixed-width
        // window walk would need ~10^6 rounds; the global-min jump
        // finishes in a handful.
        struct Sleeper;
        impl ShardModel for Sleeper {
            type Msg = ();
            type State = ();
            type Out = u64;
            fn build(&mut self, shard: usize, sim: &Sim, _out: &Outbox<()>) {
                if shard == 0 {
                    let s = sim.clone();
                    sim.spawn("sleeper", async move {
                        s.sleep(Dur::from_secs(1)).await;
                    });
                }
            }
            fn deliver(&mut self, _st: &mut (), _sim: &Sim, _m: ShardMsg<()>) {}
            fn finish(&mut self, _st: (), sim: &Sim) -> u64 {
                sim.now().as_ps()
            }
        }
        let (outs, stats) = run_sharded(Dur::from_us(1), vec![(1, Sleeper), (2, Sleeper)]);
        assert_eq!(outs[0], Dur::from_secs(1).as_ps());
        assert!(
            stats.rounds < 10,
            "idle skip failed: {} rounds for one far event",
            stats.rounds
        );
    }

    /// Ring of shards, each joined only to its two neighbors: the
    /// pairwise closure must grant multi-hop pairs the full path sum,
    /// and every shard not adjacent to the earliest event a horizon
    /// strictly past the uniform global-min window.
    #[test]
    fn ring_pairwise_horizons_exceed_global_min() {
        let la = Dur::from_ns(25);
        let k = 6usize;
        let pairs: Vec<Vec<Option<Dur>>> = (0..k)
            .map(|s| {
                (0..k)
                    .map(|d| (((s + 1) % k == d) || ((d + 1) % k == s)).then_some(la))
                    .collect()
            })
            .collect();
        let plan = HorizonPlan::new(&pairs);
        assert_eq!(plan.global_min(), Some(la));
        // Multi-hop pairs close to path sums; the diagonal is the
        // shortest round trip (one cable out and back).
        assert_eq!(plan.dist(0, 3), Some(Dur(3 * la.as_ps())));
        assert_eq!(plan.dist(0, 5), Some(la));
        assert_eq!(plan.dist(2, 2), Some(Dur(2 * la.as_ps())));
        // Shard 0 holds the globally earliest event; everyone else is
        // idle. Uniform windows stop every shard at t + la.
        let t = Dur::from_us(1).as_ps();
        let mut next = vec![u64::MAX; k];
        next[0] = t;
        let uniform_window = t + la.as_ps();
        for i in 0..k {
            let h = plan.horizon(i, &next);
            assert!(h >= uniform_window, "shard {i} horizon regressed");
            // Only the ring neighbors of shard 0 are pinned to the
            // global minimum; everyone else gets strictly more.
            if i != 1 && i != 5 {
                assert!(
                    h > uniform_window,
                    "shard {i}: adaptive horizon {h} not past uniform {uniform_window}"
                );
            }
        }
        // The far side earns the full 3-hop influence distance, and
        // the source itself the round-trip echo bound.
        assert_eq!(plan.horizon(3, &next), t + 3 * la.as_ps());
        assert_eq!(plan.horizon(0, &next), t + 2 * la.as_ps());
    }

    #[test]
    fn uniform_plan_matches_complete_graph() {
        let la = Dur::from_ns(10);
        let plan = HorizonPlan::uniform(3, la);
        for s in 0..3 {
            for d in 0..3 {
                assert_eq!(plan.dist(s, d), Some(la), "({s},{d})");
            }
        }
        assert_eq!(plan.global_min(), Some(la));
        let next = [100u64, u64::MAX, u64::MAX];
        assert_eq!(plan.horizon(1, &next), 100 + la.as_ps());
    }

    #[test]
    fn disconnected_plan_grants_unbounded_horizons() {
        let pairs: Vec<Vec<Option<Dur>>> = vec![vec![None; 2]; 2];
        let plan = HorizonPlan::new(&pairs);
        assert_eq!(plan.global_min(), None);
        assert_eq!(plan.dist(0, 1), None);
        // No channel anywhere: nothing can ever cross, so both shards
        // may run to completion in one window.
        assert_eq!(plan.horizon(0, &[5, 7]), u64::MAX);
        assert_eq!(plan.horizon(1, &[5, 7]), u64::MAX);
    }

    #[test]
    fn adaptive_lookahead_env_hatch_parses() {
        // Serialized with other env checks by living in one test fn.
        std::env::remove_var("ELANIB_ADAPTIVE_LOOKAHEAD");
        assert!(adaptive_lookahead(), "adaptive must default on");
        std::env::set_var("ELANIB_ADAPTIVE_LOOKAHEAD", "0");
        assert!(!adaptive_lookahead());
        std::env::set_var("ELANIB_ADAPTIVE_LOOKAHEAD", "off");
        assert!(!adaptive_lookahead());
        std::env::set_var("ELANIB_ADAPTIVE_LOOKAHEAD", "1");
        assert!(adaptive_lookahead());
        std::env::remove_var("ELANIB_ADAPTIVE_LOOKAHEAD");
    }

    #[test]
    fn des_shards_parses_like_the_sweep_knob() {
        // Serialized with other env tests by running in one test fn.
        std::env::remove_var("ELANIB_DES_SHARDS");
        assert_eq!(des_shards(), None);
        std::env::set_var("ELANIB_DES_SHARDS", "4");
        assert_eq!(des_shards(), Some(4));
        std::env::set_var("ELANIB_DES_SHARDS", "0");
        assert_eq!(des_shards(), None);
        std::env::set_var("ELANIB_DES_SHARDS", "nope");
        assert_eq!(des_shards(), None);
        std::env::remove_var("ELANIB_DES_SHARDS");
    }
}
