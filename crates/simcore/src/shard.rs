//! Conservative parallel discrete-event simulation: one model split
//! into shards, each shard a whole single-threaded [`Sim`] on its own
//! OS thread, synchronized by lookahead-bounded barrier windows.
//!
//! ## The protocol
//!
//! The engine is the classic synchronous-conservative (CMB-family)
//! scheme, built directly on [`Sim::run_until`]:
//!
//! 1. Every shard dispatches all local events in the current window
//!    `[W, W + lookahead)` with `run_until(W + lookahead)`.
//! 2. Cross-shard messages produced during the window are published to
//!    their destination shards at a barrier. A message sent at local
//!    time `t` must be delivered at `t + delay` with
//!    `delay >= lookahead` ([`Outbox::send`] asserts this), so every
//!    message lands **at or past the window end** — no shard can ever
//!    receive an event in its past.
//! 3. Each shard injects its incoming messages in the deterministic
//!    order `(at, src shard, send seq)` and re-probes its queue.
//! 4. A second barrier agrees on the next window: the global minimum
//!    of every shard's earliest pending event, plus the lookahead.
//!    When no shard has a pending event and no message is in flight,
//!    the run terminates.
//!
//! Windows therefore *jump* across idle time (the next window starts
//! at the global next-event time, not at `W + lookahead`), so a sparse
//! simulation doesn't pay per-lookahead rounds.
//!
//! ## Determinism
//!
//! Within a shard the kernel is the ordinary deterministic serial
//! kernel. Across shards, two things make the composition reproducible
//! and — the property the repo's byte-identity gates care about —
//! *shard-count-insensitive*:
//!
//! * the engine delivers messages in the total order
//!   `(at, src, seq)`, independent of thread scheduling;
//! * the model must make same-instant effects order-insensitive
//!   (classic DES "arbitration" — e.g. fold same-time arrivals by a
//!   message id, never by queue position). The engine cannot see model
//!   state, so this half of the contract is the model's; the demo
//!   model in the tests and `elanib-fabric`'s partition tests show the
//!   pattern.
//!
//! ## Model contract
//!
//! * [`ShardModel::build`] spawns this shard's tasks. Tasks send
//!   cross-shard messages through the [`Outbox`] **only from inside
//!   the simulation** (i.e. while the window runs).
//! * [`ShardModel::deliver`] runs *between* windows, with the sim
//!   clock at or before `msg.at`. It must only schedule effects **at**
//!   `msg.at` (e.g. spawn a task that `sleep_until(msg.at)`s and then
//!   pushes a mailbox); it must not send — a send from the deliver
//!   phase could land inside the next window, violating lookahead.
//!   The engine asserts the outbox is empty after the deliver phase.
//!
//! The per-shard `Sim`s are built, run, and dropped entirely on their
//! worker threads — `Sim` stays `!Send`, exactly like the sweep
//! engine's per-point sims ([`crate`] module docs).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::kernel::Sim;
use crate::time::{Dur, SimTime};

/// `ELANIB_DES_SHARDS`: number of shards for conservative parallel
/// DES, `None` when unset/`0`/unparsable — the serial default. Read
/// per call (tests flip it mid-process, like `ELANIB_SWEEP_THREADS`).
pub fn des_shards() -> Option<usize> {
    std::env::var("ELANIB_DES_SHARDS")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// A timestamped cross-shard event.
#[derive(Clone, Debug)]
pub struct ShardMsg<M> {
    /// Delivery instant: send time + a delay of at least the engine
    /// lookahead.
    pub at: SimTime,
    /// Sending shard.
    pub src: usize,
    /// Per-source send sequence number; with `(at, src)` it totally
    /// orders deliveries.
    pub seq: u64,
    pub payload: M,
}

impl<M> ShardMsg<M> {
    /// Time remaining until `at` on this shard's clock — what a
    /// deliver-phase task should `sleep` before acting.
    pub fn delay_from(&self, sim: &Sim) -> Dur {
        self.at.since(sim.now())
    }
}

struct OutboxInner<M> {
    msgs: Vec<(usize, ShardMsg<M>)>,
    seq: u64,
}

/// Cross-shard send handle, cloneable into this shard's tasks.
pub struct Outbox<M> {
    inner: Rc<RefCell<OutboxInner<M>>>,
    sim: Sim,
    shard: usize,
    lookahead: Dur,
}

impl<M> Clone for Outbox<M> {
    fn clone(&self) -> Self {
        Outbox {
            inner: self.inner.clone(),
            sim: self.sim.clone(),
            shard: self.shard,
            lookahead: self.lookahead,
        }
    }
}

impl<M> Outbox<M> {
    fn new(sim: Sim, shard: usize, lookahead: Dur) -> Outbox<M> {
        Outbox {
            inner: Rc::new(RefCell::new(OutboxInner {
                msgs: Vec::new(),
                seq: 0,
            })),
            sim,
            shard,
            lookahead,
        }
    }

    /// Queue a message for `dst`, delivered `delay` after the current
    /// sim time. `delay` must be at least the engine lookahead — that
    /// bound is what lets sibling shards dispatch their window without
    /// waiting for us.
    pub fn send(&self, dst: usize, delay: Dur, payload: M) {
        assert!(
            delay >= self.lookahead,
            "cross-shard delay {delay} is below the lookahead {} — \
             the partition's lookahead must be a lower bound on every cut-link delay",
            self.lookahead
        );
        let mut i = self.inner.borrow_mut();
        let seq = i.seq;
        i.seq += 1;
        i.msgs.push((
            dst,
            ShardMsg {
                at: self.sim.now() + delay,
                src: self.shard,
                seq,
                payload,
            },
        ));
    }

    fn drain(&self) -> Vec<(usize, ShardMsg<M>)> {
        std::mem::take(&mut self.inner.borrow_mut().msgs)
    }

    fn is_empty(&self) -> bool {
        self.inner.borrow().msgs.is_empty()
    }
}

/// One shard of a partitioned model. The value itself crosses to a
/// worker thread (hence `Send`); everything thread-local it builds
/// lives in `State`.
pub trait ShardModel: Send {
    /// Cross-shard message payload.
    type Msg: Send;
    /// Thread-local per-shard state created by [`build`](Self::build)
    /// (may hold `Rc` handles shared with the shard's tasks).
    type State;
    /// Per-shard result returned to the caller.
    type Out: Send;

    /// Spawn this shard's tasks into `sim`. Runs on the shard thread
    /// before the first window.
    fn build(&mut self, shard: usize, sim: &Sim, out: &Outbox<Self::Msg>) -> Self::State;

    /// Inject one incoming message. Called between windows in
    /// `(at, src, seq)` order with `sim.now() <= msg.at`; must only
    /// schedule effects at `msg.at` and must not send (see module
    /// docs).
    fn deliver(&mut self, state: &mut Self::State, sim: &Sim, msg: ShardMsg<Self::Msg>);

    /// Extract this shard's result after global termination.
    fn finish(&mut self, state: Self::State, sim: &Sim) -> Self::Out;
}

/// Per-shard observability record of one [`run_sharded`] call. All
/// fields are gathered unconditionally — the cost is a handful of
/// `Instant` samples per *round* (not per event), invisible next to a
/// window's worth of dispatching — so shard-balance problems are
/// visible without re-running under a profiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardObs {
    pub shard: usize,
    /// Kernel events this shard dispatched.
    pub events: u64,
    /// Cross-shard messages this shard sent / received.
    pub sent: u64,
    pub recv: u64,
    /// Wall-ns this shard spent blocked on the three per-round
    /// barriers — waiting for siblings, not simulating. The dominant
    /// term of parallel inefficiency in an unbalanced partition.
    pub stall_ns: u64,
    /// Rounds in which this shard dispatched at least one event.
    /// `active_rounds / rounds` is the shard's lookahead utilization:
    /// how often a granted window contained any local work.
    pub active_rounds: u64,
}

/// Aggregate statistics of one [`run_sharded`] call.
#[derive(Clone, Debug, Default)]
pub struct ShardRunStats {
    /// Barrier windows executed (identical on every shard).
    pub rounds: u64,
    /// Cross-shard messages exchanged, summed over shards.
    pub messages: u64,
    /// Kernel events dispatched, summed over shards.
    pub events: u64,
    /// Latest final clock across the shards — the global end time.
    pub end: SimTime,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardObs>,
}

/// A phase barrier that poisons instead of hanging when a sibling
/// thread panics: every waiter observes the poison and unwinds, so the
/// original panic propagates through the thread-scope join rather than
/// deadlocking the run. (`std::sync::Barrier` has no poison path.)
struct PhaseBarrier {
    state: Mutex<(usize, u64, bool)>, // (arrived, phase, poisoned)
    cv: Condvar,
    n: usize,
}

impl PhaseBarrier {
    fn new(n: usize) -> PhaseBarrier {
        PhaseBarrier {
            state: Mutex::new((0, 0, false)),
            cv: Condvar::new(),
            n,
        }
    }

    /// Returns `true` for exactly one caller per phase (the leader).
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        assert!(!s.2, "shard engine poisoned by a sibling shard panic");
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 += 1;
            self.cv.notify_all();
            return true;
        }
        let phase = s.1;
        while s.1 == phase && !s.2 {
            s = self.cv.wait(s).unwrap();
        }
        assert!(!s.2, "shard engine poisoned by a sibling shard panic");
        false
    }

    fn poison(&self) {
        self.state.lock().unwrap().2 = true;
        self.cv.notify_all();
    }
}

/// Poisons the barrier if the owning thread unwinds mid-protocol.
struct PoisonGuard<'a>(&'a PhaseBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

const NO_EVENT: u64 = u64::MAX;
const DONE: u64 = u64::MAX;

/// Run a partitioned model to completion: one `(seed, shard)` pair per
/// shard, each on its own thread, synchronized as described in the
/// [module docs](self). Returns the per-shard results in shard order.
pub fn run_sharded<Mdl: ShardModel>(
    lookahead: Dur,
    shards: Vec<(u64, Mdl)>,
) -> (Vec<Mdl::Out>, ShardRunStats) {
    let n = shards.len();
    assert!(n >= 1, "run_sharded needs at least one shard");
    assert!(
        lookahead.as_ps() > 0,
        "lookahead must be positive — a zero-lookahead partition cannot make progress"
    );

    let barrier = PhaseBarrier::new(n);
    let inboxes: Vec<Mutex<Vec<ShardMsg<Mdl::Msg>>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let obs: Vec<Mutex<ShardObs>> = (0..n).map(|_| Mutex::new(ShardObs::default())).collect();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_EVENT)).collect();
    // Window end in ps; the first round probes with limit 0 (nothing
    // dispatches, every shard just reports its earliest event).
    let window_end = AtomicU64::new(0);
    let rounds = AtomicU64::new(0);
    let messages = AtomicU64::new(0);
    let events = AtomicU64::new(0);
    let end_ps = AtomicU64::new(0);

    let run_shard = |shard: usize, seed: u64, mut model: Mdl| -> Mdl::Out {
        let _guard = PoisonGuard(&barrier);
        let sim = Sim::new(seed);
        let outbox = Outbox::new(sim.clone(), shard, lookahead);
        let mut state = model.build(shard, &sim, &outbox);
        let mut my = ShardObs {
            shard,
            ..ShardObs::default()
        };
        let mut stall = std::time::Duration::ZERO;
        let mut my_rounds = 0u64;
        let mut prev_events = 0u64;

        loop {
            let limit = SimTime(window_end.load(Ordering::Acquire));
            let mut local_next = sim.run_until(limit);
            // Publish this window's sends.
            let sent = outbox.drain();
            messages.fetch_add(sent.len() as u64, Ordering::Relaxed);
            my.sent += sent.len() as u64;
            for (dst, msg) in sent {
                assert!(dst < n, "cross-shard send to unknown shard {dst} (of {n})");
                assert!(
                    msg.at >= limit,
                    "message at {} precedes the window end {limit} — lookahead violated",
                    msg.at
                );
                inboxes[dst].lock().unwrap().push(msg);
            }
            let t0 = std::time::Instant::now();
            barrier.wait(); // all sends routed
            stall += t0.elapsed();

            let mut inbox = std::mem::take(&mut *inboxes[shard].lock().unwrap());
            my.recv += inbox.len() as u64;
            if !inbox.is_empty() {
                inbox.sort_by_key(|m| (m.at, m.src, m.seq));
                for msg in inbox {
                    debug_assert!(sim.now() <= msg.at);
                    model.deliver(&mut state, &sim, msg);
                }
                // Absorb deliver-phase wakeups (task spawns poll below
                // the limit, then sleep to their message's `at`); no
                // event at or past the limit can run here.
                local_next = sim.run_until(limit);
                assert!(
                    outbox.is_empty(),
                    "deliver phase generated a send — cross-shard sends must \
                     happen from simulation tasks during a window"
                );
            }
            next_times[shard].store(
                local_next.map_or(NO_EVENT, |t| t.as_ps()),
                Ordering::Release,
            );

            let t1 = std::time::Instant::now();
            if barrier.wait() {
                // Leader: agree on the next window (or termination).
                let global = next_times
                    .iter()
                    .map(|t| t.load(Ordering::Acquire))
                    .min()
                    .unwrap();
                let next_window = if global == NO_EVENT {
                    DONE
                } else {
                    global + lookahead.as_ps()
                };
                window_end.store(next_window, Ordering::Release);
                let r = rounds.fetch_add(1, Ordering::Relaxed) + 1;
                // Live heartbeat (out-of-band; no-op unless
                // ELANIB_PROGRESS is set, rate-limited inside).
                elanib_trace::progress::beat("shard", || {
                    format!(
                        "\"rounds\":{r},\"events\":{},\"messages\":{},\"window_end_ps\":{}",
                        events.load(Ordering::Relaxed),
                        messages.load(Ordering::Relaxed),
                        next_window
                    )
                });
            }
            barrier.wait(); // window agreed
            stall += t1.elapsed();
            my_rounds += 1;
            let ev = sim.events_processed();
            if ev != prev_events {
                my.active_rounds += 1;
                prev_events = ev;
            }
            if window_end.load(Ordering::Acquire) == DONE {
                break;
            }
        }

        my.events = sim.events_processed();
        my.stall_ns = stall.as_nanos() as u64;
        events.fetch_add(my.events, Ordering::Relaxed);
        end_ps.fetch_max(sim.now().as_ps(), Ordering::Relaxed);
        // Charge this shard's barrier stall to the profiler's barrier
        // bucket (no-op when ELANIB_PROFILE is off).
        crate::profile::submit_barrier(stall, my_rounds);
        *obs[shard].lock().unwrap() = my;
        model.finish(state, &sim)
    };

    let mut outs: Vec<Option<Mdl::Out>> = Vec::with_capacity(n);
    outs.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(shard, (seed, model))| {
                let f = &run_shard;
                scope.spawn(move || f(shard, seed, model))
            })
            .collect();
        let mut panic_payload = None;
        for (shard, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outs[shard] = Some(out),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    });

    let stats = ShardRunStats {
        rounds: rounds.load(Ordering::Relaxed),
        messages: messages.load(Ordering::Relaxed),
        events: events.load(Ordering::Relaxed),
        end: SimTime(end_ps.load(Ordering::Relaxed)),
        per_shard: obs.iter().map(|o| *o.lock().unwrap()).collect(),
    };
    (
        outs.into_iter()
            .map(|o| o.expect("every shard joined cleanly"))
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mailbox;
    use std::collections::BTreeMap;

    /// Demo model: `n_nodes` stations forwarding tokens over a wire of
    /// `wire` minimum delay, block-partitioned across shards. Every
    /// arrival is recorded as `(at, token id)`; arrivals fold into the
    /// per-node output *sorted by (at, id)*, so same-instant delivery
    /// order — the one thing the engine cannot pin down — is
    /// observationally irrelevant (model-level arbitration).
    struct RelayModel {
        n_shards: usize,
        n_nodes: usize,
        wire: Dur,
        seeds_per_node: u64,
        hops: u32,
    }

    type Token = (u64, u32); // (id, hops left)
    type ArrivalLog = Rc<RefCell<Vec<Vec<(u64, u64)>>>>;

    struct RelayState {
        // arrivals[local node] = (at ps, token id)
        arrivals: ArrivalLog,
        boxes: Rc<Vec<Mailbox<Token>>>,
        lo: usize,
    }

    fn owner(node: usize, n_nodes: usize, n_shards: usize) -> usize {
        node * n_shards / n_nodes
    }

    fn node_range(shard: usize, n_nodes: usize, n_shards: usize) -> (usize, usize) {
        let lo = (shard * n_nodes).div_ceil(n_shards);
        let hi = ((shard + 1) * n_nodes).div_ceil(n_shards);
        (lo, hi)
    }

    fn lcg(x: u64) -> u64 {
        x.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    }

    /// Deterministic forwarding rule: where a token goes next and
    /// after what delay — a function of (token id, node) only, so it
    /// cannot depend on same-instant processing order.
    fn route(wire: Dur, n_nodes: usize, id: u64, node: usize) -> (usize, Dur) {
        let h = lcg(id ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let dst = (node + 1 + (h % 5) as usize) % n_nodes;
        let delay = Dur(wire.as_ps() * (1 + h % 4));
        (dst, delay)
    }

    impl ShardModel for RelayModel {
        type Msg = (usize, Token); // (dst node, token)
        type State = RelayState;
        type Out = Vec<(usize, usize, u64, u64)>; // (node, count, hash, last at)

        fn build(&mut self, shard: usize, sim: &Sim, out: &Outbox<Self::Msg>) -> RelayState {
            let (lo, hi) = node_range(shard, self.n_nodes, self.n_shards);
            let arrivals = Rc::new(RefCell::new(vec![Vec::new(); hi - lo]));
            let boxes: Rc<Vec<Mailbox<Token>>> =
                Rc::new((lo..hi).map(|_| Mailbox::new()).collect());
            for node in lo..hi {
                let boxes_c = boxes.clone();
                let sim_c = sim.clone();
                let out_c = out.clone();
                let arr = arrivals.clone();
                let (n_nodes, n_shards, wire) = (self.n_nodes, self.n_shards, self.wire);
                sim.spawn(format!("relay{node}"), async move {
                    let mb = boxes_c[node - lo].clone();
                    loop {
                        let (id, hops_left) = mb.recv().await;
                        arr.borrow_mut()[node - lo].push((sim_c.now().as_ps(), id));
                        if hops_left == 0 {
                            continue;
                        }
                        let (dst, delay) = route(wire, n_nodes, id, node);
                        let tok = (lcg(id), hops_left - 1);
                        if owner(dst, n_nodes, n_shards) == shard {
                            // Intra-shard: a courier task that sleeps
                            // the wire delay then delivers — the same
                            // observable schedule as the deliver-phase
                            // courier on the cross-shard path.
                            let s2 = sim_c.clone();
                            let b2 = boxes_c.clone();
                            sim_c.spawn("courier", async move {
                                s2.sleep(delay).await;
                                b2[dst - lo].push(tok);
                            });
                        } else {
                            out_c.send(owner(dst, n_nodes, n_shards), delay, (dst, tok));
                        }
                    }
                });
            }
            // Seed tokens: a few per node, injected at distinct times.
            for node in lo..hi {
                for k in 0..self.seeds_per_node {
                    let id = lcg(((node as u64) << 16) | k);
                    let mb = boxes[node - lo].clone();
                    let sim_c = sim.clone();
                    let start = Dur(self.wire.as_ps() * (1 + (id % 7)));
                    let hops = self.hops;
                    sim.spawn(format!("seed{node}.{k}"), async move {
                        sim_c.sleep(start).await;
                        mb.push((id, hops));
                    });
                }
            }
            RelayState {
                arrivals,
                boxes,
                lo,
            }
        }

        fn deliver(&mut self, state: &mut RelayState, sim: &Sim, msg: ShardMsg<Self::Msg>) {
            let (dst, tok) = msg.payload;
            let mb = state.boxes[dst - state.lo].clone();
            let sim_c = sim.clone();
            let delay = msg.delay_from(sim);
            sim.spawn("courier", async move {
                sim_c.sleep(delay).await;
                mb.push(tok);
            });
        }

        fn finish(&mut self, state: RelayState, _sim: &Sim) -> Self::Out {
            let mut arrivals = state.arrivals.borrow_mut();
            arrivals
                .iter_mut()
                .enumerate()
                .map(|(i, a)| {
                    a.sort_unstable();
                    let mut h = 0xcbf29ce484222325u64;
                    for &(at, id) in a.iter() {
                        h = lcg(h ^ at ^ id);
                    }
                    let last = a.last().map_or(0, |&(at, _)| at);
                    (state.lo + i, a.len(), h, last)
                })
                .collect()
        }
    }

    fn run_relay(n_shards: usize) -> (BTreeMap<usize, (usize, u64, u64)>, ShardRunStats) {
        let wire = Dur::from_ns(100);
        let n_nodes = 12;
        let shards: Vec<(u64, RelayModel)> = (0..n_shards)
            .map(|_| {
                (
                    9,
                    RelayModel {
                        n_shards,
                        n_nodes,
                        wire,
                        seeds_per_node: 2,
                        hops: 20,
                    },
                )
            })
            .collect();
        let (outs, stats) = run_sharded(wire, shards);
        let mut merged = BTreeMap::new();
        for out in outs {
            for (node, count, hash, last) in out {
                assert!(
                    merged.insert(node, (count, hash, last)).is_none(),
                    "node {node} reported by two shards"
                );
            }
        }
        (merged, stats)
    }

    #[test]
    fn shard_counts_are_observationally_identical() {
        let (serial, s1) = run_relay(1);
        assert_eq!(serial.len(), 12);
        assert_eq!(s1.messages, 0, "one shard exchanges nothing");
        for n in [2usize, 3, 4] {
            let (sharded, stats) = run_relay(n);
            assert_eq!(serial, sharded, "{n}-shard run diverged from serial");
            assert!(stats.messages > 0, "{n}-shard run must cross shards");
            assert_eq!(stats.end, s1.end, "global end time must agree");
        }
    }

    #[test]
    fn per_shard_observability_accounts_for_totals() {
        let (_, stats) = run_relay(3);
        assert_eq!(stats.per_shard.len(), 3);
        for (i, o) in stats.per_shard.iter().enumerate() {
            assert_eq!(o.shard, i);
            assert!(o.events > 0, "shard {i} dispatched nothing");
            assert!(o.active_rounds <= stats.rounds);
        }
        let events: u64 = stats.per_shard.iter().map(|o| o.events).sum();
        assert_eq!(events, stats.events, "per-shard events sum to the total");
        let sent: u64 = stats.per_shard.iter().map(|o| o.sent).sum();
        let recv: u64 = stats.per_shard.iter().map(|o| o.recv).sum();
        assert_eq!(sent, stats.messages, "every message was sent once");
        assert_eq!(recv, stats.messages, "every message was received once");
    }

    #[test]
    fn lookahead_violation_panics() {
        struct Bad;
        impl ShardModel for Bad {
            type Msg = ();
            type State = ();
            type Out = ();
            fn build(&mut self, _s: usize, sim: &Sim, out: &Outbox<()>) {
                let out = out.clone();
                let sim_c = sim.clone();
                sim.spawn("bad", async move {
                    sim_c.sleep(Dur::from_ns(5)).await;
                    out.send(0, Dur::from_ns(1), ()); // below lookahead
                });
            }
            fn deliver(&mut self, _st: &mut (), _sim: &Sim, _m: ShardMsg<()>) {}
            fn finish(&mut self, _st: (), _sim: &Sim) {}
        }
        let r =
            std::panic::catch_unwind(|| run_sharded(Dur::from_ns(100), vec![(1, Bad), (1, Bad)]));
        assert!(r.is_err(), "sub-lookahead send must be rejected");
    }

    #[test]
    fn idle_time_is_jumped_not_walked() {
        // One event a full second out, lookahead 1 us: a fixed-width
        // window walk would need ~10^6 rounds; the global-min jump
        // finishes in a handful.
        struct Sleeper;
        impl ShardModel for Sleeper {
            type Msg = ();
            type State = ();
            type Out = u64;
            fn build(&mut self, shard: usize, sim: &Sim, _out: &Outbox<()>) {
                if shard == 0 {
                    let s = sim.clone();
                    sim.spawn("sleeper", async move {
                        s.sleep(Dur::from_secs(1)).await;
                    });
                }
            }
            fn deliver(&mut self, _st: &mut (), _sim: &Sim, _m: ShardMsg<()>) {}
            fn finish(&mut self, _st: (), sim: &Sim) -> u64 {
                sim.now().as_ps()
            }
        }
        let (outs, stats) = run_sharded(Dur::from_us(1), vec![(1, Sleeper), (2, Sleeper)]);
        assert_eq!(outs[0], Dur::from_secs(1).as_ps());
        assert!(
            stats.rounds < 10,
            "idle skip failed: {} rounds for one far event",
            stats.rounds
        );
    }

    #[test]
    fn des_shards_parses_like_the_sweep_knob() {
        // Serialized with other env tests by running in one test fn.
        std::env::remove_var("ELANIB_DES_SHARDS");
        assert_eq!(des_shards(), None);
        std::env::set_var("ELANIB_DES_SHARDS", "4");
        assert_eq!(des_shards(), Some(4));
        std::env::set_var("ELANIB_DES_SHARDS", "0");
        assert_eq!(des_shards(), None);
        std::env::set_var("ELANIB_DES_SHARDS", "nope");
        assert_eq!(des_shards(), None);
        std::env::remove_var("ELANIB_DES_SHARDS");
    }
}
