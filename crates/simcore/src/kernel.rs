//! The discrete-event kernel and its cooperative task executor.
//!
//! The kernel is single-threaded and **deterministic**: every run with
//! the same seed and the same task program replays the exact same event
//! sequence. Determinism comes from three rules:
//!
//! 1. the event heap is ordered by `(time, sequence-number)`, so
//!    simultaneous events fire in scheduling order;
//! 2. there is exactly one executor thread — tasks are `async` state
//!    machines polled to completion one at a time;
//! 3. all randomness flows through the kernel's seeded [`rand::rngs::StdRng`].
//!
//! Simulated processes (MPI ranks, NIC engines, switch arbiters) are
//! plain `async fn`s spawned with [`Sim::spawn`]. They suspend on
//! [`Sim::sleep`] (the passage of modelled time) or on synchronization
//! primitives from [`crate::sync`], and the kernel advances the clock
//! between polls.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{Dur, SimTime};

/// Identifier of a spawned task within one simulation.
pub type TaskId = usize;

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;
type BoxCall = Box<dyn FnOnce(&Sim)>;

enum EvKind {
    /// Poll the given task.
    Wake(TaskId),
    /// Run an arbitrary closure against the simulation (used by timers
    /// and by model components that are pure event handlers rather than
    /// tasks).
    Call(BoxCall),
}

struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Ev {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

struct Task {
    fut: Option<BoxFuture>,
    name: String,
    done: bool,
}

/// The queue a [`Waker`] pushes into. It must be `Send + Sync` because
/// `std::task::Waker` is, even though this simulator never leaves its
/// thread.
#[derive(Default)]
struct WakeQueue {
    ready: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    queue: Arc<WakeQueue>,
    id: TaskId,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.ready.lock().unwrap().push(self.id);
    }
}

/// Trace callback: `(time, message)`.
type Tracer = Box<dyn FnMut(SimTime, &str)>;

struct Kernel {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Ev>>,
    tasks: Vec<Task>,
    live_tasks: usize,
    rng: StdRng,
    events_processed: u64,
    tracer: Option<Tracer>,
}

/// Handle to a running simulation. Cheap to clone; all clones share the
/// same kernel.
#[derive(Clone)]
pub struct Sim {
    k: Rc<RefCell<Kernel>>,
    wakes: Arc<WakeQueue>,
}

/// Why [`Sim::run`] stopped before all tasks completed.
#[derive(Debug)]
pub enum SimError {
    /// The event heap drained while tasks were still suspended — some
    /// wait can never be satisfied (e.g. a `recv` with no matching
    /// `send`). Carries the names of the stuck tasks.
    Deadlock(Vec<String>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(names) => {
                write!(f, "simulation deadlock; {} task(s) stuck: ", names.len())?;
                for (i, n) in names.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                if names.len() > 8 {
                    write!(f, ", ...")?;
                }
                Ok(())
            }
        }
    }
}
impl std::error::Error for SimError {}

impl Sim {
    /// Create a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Sim {
        Sim {
            k: Rc::new(RefCell::new(Kernel {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                tasks: Vec::new(),
                live_tasks: 0,
                rng: StdRng::seed_from_u64(seed),
                events_processed: 0,
                tracer: None,
            })),
            wakes: Arc::new(WakeQueue::default()),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.borrow().now
    }

    /// Number of events the kernel has dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.k.borrow().events_processed
    }

    /// Install a trace callback invoked by [`Sim::trace`].
    pub fn set_tracer(&self, f: impl FnMut(SimTime, &str) + 'static) {
        self.k.borrow_mut().tracer = Some(Box::new(f));
    }

    /// Emit a trace line if a tracer is installed. `msg` is built lazily
    /// so tracing is free when disabled.
    pub fn trace(&self, msg: impl FnOnce() -> String) {
        let mut k = self.k.borrow_mut();
        if k.tracer.is_some() {
            let now = k.now;
            let s = {
                // Build the message outside the tracer borrow.
                drop(k);
                let s = msg();
                k = self.k.borrow_mut();
                s
            };
            if let Some(t) = k.tracer.as_mut() {
                t(now, &s);
            }
        }
    }

    /// Run a closure with the kernel RNG. All model randomness must go
    /// through here to preserve determinism.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.k.borrow_mut().rng)
    }

    /// Spawn a task. It will first be polled when the kernel reaches the
    /// current simulated time in its event order (immediately at t=now).
    pub fn spawn(&self, name: impl Into<String>, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut k = self.k.borrow_mut();
        let id = k.tasks.len();
        k.tasks.push(Task {
            fut: Some(Box::pin(fut)),
            name: name.into(),
            done: false,
        });
        k.live_tasks += 1;
        let at = k.now;
        k.push(at, EvKind::Wake(id));
        id
    }

    /// Schedule `f` to run against the simulation after `delay`.
    pub fn call_in(&self, delay: Dur, f: impl FnOnce(&Sim) + 'static) {
        let mut k = self.k.borrow_mut();
        let at = k.now + delay;
        k.push(at, EvKind::Call(Box::new(f)));
    }

    /// Schedule `f` at an absolute time (must not be in the past).
    pub fn call_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) {
        let mut k = self.k.borrow_mut();
        debug_assert!(at >= k.now, "call_at into the past");
        k.push(at, EvKind::Call(Box::new(f)));
    }

    /// Future that completes after `d` of simulated time.
    pub fn sleep(&self, d: Dur) -> Delay {
        Delay {
            sim: self.clone(),
            deadline: None,
            dur: d,
        }
    }

    /// Future that completes at absolute time `t` (immediately if `t`
    /// is in the past).
    pub fn sleep_until(&self, t: SimTime) -> Delay {
        let now = self.now();
        Delay {
            sim: self.clone(),
            deadline: None,
            dur: t.since(now),
        }
    }

    /// Drive the simulation until every spawned task has completed.
    ///
    /// Returns the final simulated time, or [`SimError::Deadlock`] if
    /// events ran dry with tasks still suspended.
    pub fn run(&self) -> Result<SimTime, SimError> {
        loop {
            // 1. Poll every task woken at the current instant. Wakes
            //    performed while draining are themselves drained before
            //    the clock may advance (zero-delay wake semantics).
            loop {
                let ready: Vec<TaskId> = {
                    let mut q = self.wakes.ready.lock().unwrap();
                    std::mem::take(&mut *q)
                };
                if ready.is_empty() {
                    break;
                }
                for tid in ready {
                    self.poll_task(tid);
                }
            }

            // 2. Advance the clock to the next event.
            let ev = {
                let mut k = self.k.borrow_mut();
                match k.heap.pop() {
                    Some(Reverse(ev)) => {
                        debug_assert!(ev.at >= k.now, "event heap time went backwards");
                        k.now = ev.at;
                        k.events_processed += 1;
                        ev
                    }
                    None => break,
                }
            };
            match ev.kind {
                EvKind::Wake(tid) => self.poll_task(tid),
                EvKind::Call(f) => f(self),
            }
        }

        let k = self.k.borrow();
        if k.live_tasks > 0 {
            let stuck = k
                .tasks
                .iter()
                .filter(|t| !t.done)
                .map(|t| t.name.clone())
                .collect();
            return Err(SimError::Deadlock(stuck));
        }
        Ok(k.now)
    }

    fn poll_task(&self, tid: TaskId) {
        // Take the future out of the slab so polling can re-enter the
        // kernel (to schedule events, spawn tasks, ...).
        let mut fut = {
            let mut k = self.k.borrow_mut();
            match k.tasks[tid].fut.take() {
                Some(f) => f,
                // Already completed, or currently being polled higher up
                // the stack (a spurious duplicate wake): ignore.
                None => return,
            }
        };
        let waker: Waker = Arc::new(TaskWaker {
            queue: self.wakes.clone(),
            id: tid,
        })
        .into();
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut k = self.k.borrow_mut();
                k.tasks[tid].done = true;
                k.live_tasks -= 1;
            }
            Poll::Pending => {
                self.k.borrow_mut().tasks[tid].fut = Some(fut);
            }
        }
    }
}

impl Kernel {
    fn push(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Delay {
    sim: Sim,
    deadline: Option<SimTime>,
    dur: Dur,
}

impl Future for Delay {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.deadline {
            None => {
                if this.dur.is_zero() {
                    return Poll::Ready(());
                }
                let deadline = this.sim.now() + this.dur;
                this.deadline = Some(deadline);
                let waker = cx.waker().clone();
                this.sim.call_at(deadline, move |_| waker.wake());
                Poll::Pending
            }
            Some(d) => {
                if this.sim.now() >= d {
                    Poll::Ready(())
                } else {
                    // Spurious poll before the timer fired; the timer
                    // event holds our original waker, so just wait.
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_runs_to_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new(1);
        let end = Rc::new(Cell::new(SimTime::ZERO));
        let e = end.clone();
        let s = sim.clone();
        sim.spawn("sleeper", async move {
            s.sleep(Dur::from_us(10)).await;
            s.sleep(Dur::from_us(5)).await;
            e.set(s.now());
        });
        sim.run().unwrap();
        assert_eq!(end.get(), SimTime::ZERO + Dur::from_us(15));
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let o = order.clone();
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                s.sleep(Dur::from_us(1)).await;
                o.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn call_in_runs_at_right_time() {
        let sim = Sim::new(1);
        let seen = Rc::new(Cell::new(0u64));
        let s2 = seen.clone();
        sim.call_in(Dur::from_ms(2), move |sim| {
            assert_eq!(sim.now(), SimTime::ZERO + Dur::from_ms(2));
            s2.set(7);
        });
        sim.run().unwrap();
        assert_eq!(seen.get(), 7);
    }

    #[test]
    fn zero_duration_sleep_is_immediate() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn("z", async move {
            s.sleep(Dur::ZERO).await;
            assert_eq!(s.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn deterministic_event_counts() {
        fn run_once(seed: u64) -> (SimTime, u64) {
            let sim = Sim::new(seed);
            for i in 0..20 {
                let s = sim.clone();
                sim.spawn(format!("t{i}"), async move {
                    let jitter = s.with_rng(|r| rand::Rng::gen_range(r, 1..100u64));
                    s.sleep(Dur::from_ns(jitter)).await;
                    s.sleep(Dur::from_ns(jitter * 3)).await;
                });
            }
            let t = sim.run().unwrap();
            (t, sim.events_processed())
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42).0, run_once(43).0);
    }

    #[test]
    fn nested_spawn_completes() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn("outer", async move {
            s.sleep(Dur::from_us(1)).await;
            let s2 = s.clone();
            s.spawn("inner", async move {
                s2.sleep(Dur::from_us(1)).await;
                d.set(true);
            });
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn deadlock_is_reported_with_task_name() {
        let sim = Sim::new(1);
        sim.spawn("stuck-task", std::future::pending::<()>());
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck-task".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn trace_callback_fires() {
        let sim = Sim::new(1);
        let lines = Rc::new(RefCell::new(Vec::new()));
        let l = lines.clone();
        sim.set_tracer(move |t, msg| l.borrow_mut().push(format!("{t} {msg}")));
        let s = sim.clone();
        sim.spawn("tr", async move {
            s.sleep(Dur::from_us(1)).await;
            s.trace(|| "hello".to_string());
        });
        sim.run().unwrap();
        assert_eq!(lines.borrow().len(), 1);
        assert!(lines.borrow()[0].contains("hello"));
    }
}
