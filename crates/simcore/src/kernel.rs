//! The discrete-event kernel and its cooperative task executor.
//!
//! The kernel is single-threaded and **deterministic**: every run with
//! the same seed and the same task program replays the exact same event
//! sequence. Determinism comes from three rules:
//!
//! 1. pending events are ordered by `(time, sequence-number)`, so
//!    simultaneous events fire in scheduling order;
//! 2. there is exactly one executor thread — tasks are `async` state
//!    machines polled to completion one at a time;
//! 3. all randomness flows through the kernel's seeded [`rand::rngs::StdRng`].
//!
//! Simulated processes (MPI ranks, NIC engines, switch arbiters) are
//! plain `async fn`s spawned with [`Sim::spawn`]. They suspend on
//! [`Sim::sleep`] (the passage of modelled time) or on synchronization
//! primitives from [`crate::sync`], and the kernel advances the clock
//! between polls.
//!
//! Pending events live in a hierarchical timing wheel
//! ([`crate::wheel`]) rather than a binary heap; it preserves the exact
//! `(time, sequence-number)` order of rule 1 with O(1) insertion.
//!
//! ## Parallel sweeps
//!
//! Each kernel stays strictly single-threaded, but *independent* sims
//! may run concurrently on different OS threads (the sweep engine in
//! `elanib-core::sweep` does exactly this). Nothing is shared between
//! two `Sim`s, so a sim's event sequence — and therefore every number
//! it produces — is identical whether it runs alone, serially after
//! other sims, or on a worker thread next to 16 siblings. The only
//! thread-aware state in this module is [`thread_events`], a
//! thread-local counter of dispatched events that sweep workers read
//! to attribute event throughput to jobs.
//!
//! ## Hot path
//!
//! The executor is tuned for the tight event loops the paper's
//! exhibits generate (hundreds of millions of events per regeneration):
//!
//! * tasks live in a structure-of-arrays slab with a free list
//!   ([`Kernel::hot`] / [`Kernel::wakers`] / [`Kernel::cold`]): the
//!   dispatch loop touches only the dense hot array (future + live
//!   generation, 24 bytes per slot) per event, wake plumbing sits in
//!   its own array, and diagnostics-only fields (names, suspend
//!   times) stay out of the way entirely. [`TaskId`]s carry a
//!   generation so a stale wake for a recycled slot is ignored
//!   instead of polling the wrong task;
//! * each task's [`Waker`] is created once at spawn and *moved* (not
//!   cloned) in and out of the slab per poll — zero refcount traffic
//!   on the poll path — and the backing `Arc` itself is recycled
//!   across slot generations when no stale clone is outstanding, so
//!   steady-state spawning allocates no waker at all;
//! * event payloads are a flat tagged union ([`EventPayload`]): timer
//!   expiry ([`Sim::sleep`]) schedules the sleeping task's id directly
//!   in the timing wheel and firing it polls the task in place — no
//!   waker clone, no wake-queue mutex round trip per sleep — while
//!   [`Sim::call_at`] closures park in a kernel slab so the wheel
//!   moves plain words, never boxes. Dispatch pops the event *and*
//!   extracts the target future/closure under a single kernel borrow;
//! * small [`Sim::call_at`] closures (≤ 48 bytes of captures — every
//!   hot closure in the model) are stored inline in the call slab
//!   instead of boxed, so the per-message completion callbacks and
//!   processor-sharing reschedules that dominate the `call` bucket
//!   stop churning the allocator (`ELANIB_CALL_ARENA=off` restores
//!   the boxed path for A/B);
//! * per-sim transient strings (task names) live in a bump arena that
//!   resets when the last live task completes, and [`Sim::spawn_fmt`]
//!   formats a name straight into the arena with no intermediate
//!   `String`, so slot recycling does not churn the allocator;
//! * the wake queue is drained in batches (one lock acquisition and
//!   zero allocations per batch, the drain buffers ping-pong) behind
//!   an atomic nothing-pending fast check, and a task woken k times at
//!   the same instant is queued — and polled — once. Dedup marks are
//!   cleared per task immediately before its poll rather than for the
//!   whole batch up front, so a wake raised *while the batch drains*
//!   for a not-yet-polled task coalesces into the pending poll
//!   instead of scheduling a needless second one in the next batch
//!   (`ELANIB_WAKE_COALESCE=off` restores batch-time clearing).
//!
//! [`Sim::run_until`] bounds the dispatch loop to a time window,
//! leaving out-of-window events in the wheel with its anchor held at
//! the last dispatched instant, so events delivered from outside the
//! kernel between windows schedule normally; the conservative sharded
//! engine in [`crate::shard`] drives one kernel per shard with it.

use std::alloc::Layout;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::profile::KernelProfiler;
use crate::time::{Dur, SimTime};
use crate::wheel::TimerWheel;

/// Identifier of a spawned task within one simulation. Slots are
/// recycled; the generation distinguishes the current occupant from
/// any prior task that used the same slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId {
    idx: u32,
    gen: u32,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.idx, self.gen)
    }
}

type BoxFuture = PooledFut;
type BoxCall = Box<dyn FnOnce(&Sim)>;

/// Size classes for pooled task-future blocks. Model tasks cluster
/// tightly: per-message helper tasks ("rx", send-completion watchers)
/// are 32–128 B state machines, transfer tasks land around 512 B.
const FUT_CLASSES: [usize; 6] = [32, 64, 128, 256, 512, 1024];
/// Block alignment — covers every future alignment seen in practice;
/// stricter alignments fall back to a plain box.
const FUT_ALIGN: usize = 16;
/// `class` sentinel: block owned by the global allocator, not a pool.
const FUT_UNPOOLED: u8 = u8::MAX;
/// Max parked blocks per size class per thread (bounds idle memory at
/// ~2 MB/thread worst case; in-flight population stays well under it).
const FUT_POOL_CAP: usize = 1024;

/// Per-thread free lists of future blocks, one per size class. Raw
/// blocks only — every entry is uninitialized storage of its class
/// size at `FUT_ALIGN`.
struct FutPool([Vec<*mut u8>; FUT_CLASSES.len()]);

impl Drop for FutPool {
    fn drop(&mut self) {
        for (class, list) in self.0.iter_mut().enumerate() {
            let layout = Layout::from_size_align(FUT_CLASSES[class], FUT_ALIGN).unwrap();
            for &block in list.iter() {
                // SAFETY: parked blocks were allocated with exactly
                // this layout and their contents already dropped.
                unsafe { std::alloc::dealloc(block, layout) };
            }
        }
    }
}

thread_local! {
    static FUT_POOL: RefCell<FutPool> = const { RefCell::new(FutPool([const { Vec::new() }; FUT_CLASSES.len()])) };
    /// Lazily-read `ELANIB_FUT_POOL` gate (`off`/`0` disables pooling;
    /// every future then lives in a plain box).
    static FUT_POOL_ON: bool = !matches!(
        std::env::var("ELANIB_FUT_POOL").as_deref(),
        Ok("off") | Ok("0")
    );
}

/// An owned, type-erased task future whose heap block is recycled
/// through [`FUT_POOL`]. Spawn-heavy models create one short-lived
/// task per simulated message, so `Box::pin` + dealloc on completion
/// was a top allocation site; with the pool, steady-state spawns reuse
/// a same-class block with no allocator traffic at all.
///
/// Pinning: the pointee is placement-constructed into its block and
/// never moves until `drop_in_place` runs in `Drop` — structurally
/// pinned even though the `PooledFut` handle itself moves freely
/// (it is just a pointer + class tag).
struct PooledFut {
    ptr: std::ptr::NonNull<dyn Future<Output = ()>>,
    class: u8,
}

impl PooledFut {
    fn new<F: Future<Output = ()> + 'static>(fut: F) -> PooledFut {
        let size = std::mem::size_of::<F>();
        if std::mem::align_of::<F>() <= FUT_ALIGN && FUT_POOL_ON.with(|&on| on) {
            if let Some(class) = FUT_CLASSES.iter().position(|&c| size <= c) {
                let layout = Layout::from_size_align(FUT_CLASSES[class], FUT_ALIGN).unwrap();
                let block = FUT_POOL
                    .with(|p| p.borrow_mut().0[class].pop())
                    .unwrap_or_else(|| {
                        // SAFETY: `layout` has non-zero size.
                        let p = unsafe { std::alloc::alloc(layout) };
                        if p.is_null() {
                            std::alloc::handle_alloc_error(layout);
                        }
                        p
                    });
                // SAFETY: the block is valid for `FUT_CLASSES[class] >=
                // size` bytes at `FUT_ALIGN >= align_of::<F>()`.
                unsafe { (block as *mut F).write(fut) };
                let ptr = block as *mut F as *mut dyn Future<Output = ()>;
                return PooledFut {
                    // SAFETY: freshly written through a non-null block.
                    ptr: unsafe { std::ptr::NonNull::new_unchecked(ptr) },
                    class: class as u8,
                };
            }
        }
        // Oversized or overaligned (or pool disabled): plain box.
        let raw = Box::into_raw(Box::new(fut) as Box<dyn Future<Output = ()>>);
        PooledFut {
            // SAFETY: `Box::into_raw` never returns null.
            ptr: unsafe { std::ptr::NonNull::new_unchecked(raw) },
            class: FUT_UNPOOLED,
        }
    }

    /// Poll the owned future. `&mut self` gives exclusive access; the
    /// pointee never moves, upholding the `Pin` contract.
    #[inline]
    fn poll(&mut self, cx: &mut Context<'_>) -> Poll<()> {
        // SAFETY: see type docs — heap-allocated, initialized, pinned.
        unsafe { Pin::new_unchecked(&mut *self.ptr.as_ptr()).poll(cx) }
    }
}

impl Drop for PooledFut {
    fn drop(&mut self) {
        let p = self.ptr.as_ptr();
        if self.class == FUT_UNPOOLED {
            // SAFETY: came from `Box::into_raw` in `new`.
            drop(unsafe { Box::from_raw(p) });
            return;
        }
        // SAFETY: initialized pointee, dropped exactly once here. Any
        // reentrant allocation from the destructor (e.g. flag pools)
        // touches other thread-locals, never `FUT_POOL`.
        unsafe { std::ptr::drop_in_place(p) };
        let class = self.class as usize;
        let block = p as *mut u8;
        let parked = FUT_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.0[class].len() < FUT_POOL_CAP {
                pool.0[class].push(block);
                true
            } else {
                false
            }
        });
        if !parked {
            let layout = Layout::from_size_align(FUT_CLASSES[class], FUT_ALIGN).unwrap();
            // SAFETY: allocated with exactly this layout in `new`.
            unsafe { std::alloc::dealloc(block, layout) };
        }
    }
}

/// Flattened event payload: a small tagged union, 16 bytes in the
/// common variants, instead of the boxed callables earlier kernels
/// queued. Closures still exist (model components that are pure event
/// handlers schedule them via [`Sim::call_at`]) but they live in a
/// slab on the kernel — the wheel entry is just the slot index — so
/// wheel buckets stay dense and cascades move plain words.
enum EventPayload {
    /// Poll the given task (generation-checked). Scheduled at spawn
    /// *and* by expiring timers: a sleeping task's [`Delay`] registers
    /// the task id directly, so timer expiry polls the task without a
    /// waker clone or a wake-queue round trip.
    Poll(TaskId),
    /// Fire a stored waker — the fallback timer path, used when a
    /// [`Delay`] is polled from outside a kernel task (or always, in
    /// `legacy` payload mode — see [`payload_mode`]).
    Timer(Waker),
    /// Run the closure parked in the kernel's call slab at this index.
    Call(u32),
}

impl EventPayload {
    /// Profiler bucket index (see [`crate::profile::TAG_NAMES`]).
    #[inline]
    fn tag(&self) -> usize {
        match self {
            EventPayload::Poll(_) => 0,
            EventPayload::Timer(_) => 1,
            EventPayload::Call(_) => 2,
        }
    }
}

/// Flight-recorder depth: the last this-many dispatched events are
/// kept per simulation, always (the ring is fixed-size and
/// allocation-free after startup, so there is no reason to gate it).
pub const FLIGHT_LEN: usize = 64;

/// One flight-recorder entry: a recently dispatched kernel event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightEntry {
    /// Dispatch instant, simulated picoseconds.
    pub at_ps: u64,
    /// Event kind: 0 = poll, 1 = timer, 2 = call
    /// ([`flight_kind_name`]).
    pub kind: u8,
    /// Task slot (poll) or call slot (call); 0 for timer wakers.
    pub idx: u32,
}

/// Human name of a [`FlightEntry::kind`].
pub fn flight_kind_name(kind: u8) -> &'static str {
    match kind {
        0 => "poll",
        1 => "timer",
        2 => "call",
        _ => "?",
    }
}

impl fmt::Display for FlightEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}@{}ps",
            flight_kind_name(self.kind),
            self.idx,
            self.at_ps
        )
    }
}

/// Fixed-size ring of the most recent dispatched events. Written on
/// every dispatch (two stores), read only by deadlock reports and
/// debugging accessors, so an *untraced* stuck run still ships the
/// event history that led up to the hang.
struct FlightRing {
    buf: Vec<FlightEntry>,
    /// Total events ever recorded; `written % FLIGHT_LEN` is the next
    /// write position.
    written: u64,
}

impl FlightRing {
    fn new() -> FlightRing {
        FlightRing {
            buf: vec![FlightEntry::default(); FLIGHT_LEN],
            written: 0,
        }
    }

    #[inline]
    fn record(&mut self, at_ps: u64, payload: &EventPayload) {
        let (kind, idx) = match payload {
            EventPayload::Poll(id) => (0u8, id.idx),
            EventPayload::Timer(_) => (1, 0),
            EventPayload::Call(i) => (2, *i),
        };
        let slot = (self.written % FLIGHT_LEN as u64) as usize;
        self.buf[slot] = FlightEntry { at_ps, kind, idx };
        self.written += 1;
    }

    /// The recorded tail, oldest first (deterministic: dispatch order).
    fn tail(&self) -> Vec<FlightEntry> {
        let n = self.written.min(FLIGHT_LEN as u64);
        let start = self.written - n;
        (0..n)
            .map(|k| self.buf[((start + k) % FLIGHT_LEN as u64) as usize])
            .collect()
    }
}

/// How timer events are represented, selectable per-[`Sim`] (the
/// `ELANIB_PAYLOAD_MODE` environment variable sets the default). The
/// observable event order is identical in both modes — locked by the
/// payload-model proptest and the tier-2 byte-identity check — so
/// `Legacy` exists purely as the A/B baseline for the flattened path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PayloadMode {
    /// Tagged-union fast path: timer expiry polls the sleeping task
    /// directly ([`EventPayload::Poll`]).
    Tagged,
    /// Pre-flattening behavior: every timer clones the task waker and
    /// detours through the wake queue's mutex.
    Legacy,
}

/// The payload mode new simulations default to: `"legacy"` when
/// `ELANIB_PAYLOAD_MODE=legacy`, else `"tagged"`. Sweep perf records
/// carry this string so A/B trajectories stay attributable.
pub fn payload_mode() -> &'static str {
    match default_payload_mode() {
        PayloadMode::Legacy => "legacy",
        PayloadMode::Tagged => "tagged",
    }
}

fn default_payload_mode() -> PayloadMode {
    match std::env::var("ELANIB_PAYLOAD_MODE") {
        Ok(v) if v == "legacy" => PayloadMode::Legacy,
        _ => PayloadMode::Tagged,
    }
}

/// Dispatch-path tuning knobs, all defaulting to the fast paths and
/// individually revertible from the environment so every optimization
/// keeps an A/B baseline alive:
///
/// * `call_arena` — store small [`Sim::call_at`] closures inline in
///   the call slab instead of boxing each one
///   (`ELANIB_CALL_ARENA=off` reverts to boxes);
/// * `wake_coalesce` — clear wake-dedup marks per task right before
///   its poll so same-instant wakes coalesce *across* drain batches
///   (`ELANIB_WAKE_COALESCE=off` reverts to batch-time clearing).
#[derive(Clone, Copy, Debug)]
pub struct SimOpts {
    pub payload_mode: PayloadMode,
    pub call_arena: bool,
    pub wake_coalesce: bool,
}

impl SimOpts {
    /// Options as configured by the environment (the defaults
    /// [`Sim::new`] uses).
    pub fn from_env() -> SimOpts {
        let off = |var: &str| matches!(std::env::var(var).as_deref(), Ok("off") | Ok("0"));
        SimOpts {
            payload_mode: default_payload_mode(),
            call_arena: !off("ELANIB_CALL_ARENA"),
            wake_coalesce: !off("ELANIB_WAKE_COALESCE"),
        }
    }
}

impl Default for SimOpts {
    fn default() -> SimOpts {
        SimOpts {
            payload_mode: PayloadMode::Tagged,
            call_arena: true,
            wake_coalesce: true,
        }
    }
}

/// Bump arena for per-sim transient strings (task names). Names are
/// written once at spawn and read only for diagnostics — deadlock
/// reports and task-lifetime trace spans — so slots hold a plain
/// `(offset, len)` span instead of an owned `String`, and slot
/// recycling stops churning the allocator. The arena resets wholesale
/// whenever the last live task completes (no span can be referenced
/// once nothing is live), which bounds growth across sequential
/// task generations.
#[derive(Default)]
struct NameArena {
    buf: String,
}

/// Span into the [`NameArena`].
#[derive(Clone, Copy, Default)]
struct NameRef {
    off: u32,
    len: u32,
}

impl NameArena {
    fn intern(&mut self, s: &str) -> NameRef {
        let off = self.buf.len() as u32;
        self.buf.push_str(s);
        NameRef {
            off,
            len: s.len() as u32,
        }
    }
    /// Format a name straight into the arena — the zero-allocation
    /// path behind [`Sim::spawn_fmt`]: hot model spawn sites pass
    /// `format_args!` instead of building a `String` per task.
    fn intern_fmt(&mut self, args: fmt::Arguments<'_>) -> NameRef {
        use fmt::Write;
        let off = self.buf.len() as u32;
        self.buf
            .write_fmt(args)
            .expect("fmt::Write on String cannot fail");
        NameRef {
            off,
            len: self.buf.len() as u32 - off,
        }
    }
    fn get(&self, r: NameRef) -> &str {
        &self.buf[r.off as usize..(r.off + r.len) as usize]
    }
    /// Drop all interned names, keeping the buffer's capacity.
    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// Hot half of a task slot — the only per-task state the dispatch
/// loop touches on a `Poll` event: the future to run and the
/// generation that validates the event. 24 bytes, densely packed in
/// [`Kernel::hot`], so a dispatch reads one cache line per event.
///
/// A slot is *live* while its task has not completed; on completion
/// the future is dropped, the generation is bumped (so in-flight
/// wakes for the finished task are ignored) and the index goes back
/// on the free list for the next spawn.
struct TaskHot {
    fut: Option<BoxFuture>,
    gen: u32,
    live: bool,
}

impl TaskHot {
    fn vacant() -> TaskHot {
        TaskHot {
            fut: None,
            gen: 0,
            live: false,
        }
    }
}

/// Wake half of a task slot, in its own array ([`Kernel::wakers`]):
/// the per-poll `Waker` (moved out and back, never cloned on the poll
/// path) and the backing `Arc` kept for recycling — when a slot is
/// respawned and no stale clone of the previous task's waker is
/// outstanding (`Arc::strong_count == 1`), the arc's packed id is
/// rewritten in place and no allocation happens at all.
#[derive(Default)]
struct WakerSlot {
    waker: Option<Waker>,
    arc: Option<Arc<TaskWaker>>,
}

/// Cold half of a task slot ([`Kernel::cold`]): diagnostics-only
/// fields read by deadlock reports and task-lifetime trace spans.
#[derive(Default)]
struct TaskCold {
    name: NameRef,
    /// Simulated time of the most recent `Poll::Pending` — i.e. when
    /// the task last suspended. Reported on deadlock.
    last_suspend: SimTime,
    /// Simulated time the current occupant was spawned; closes the
    /// task-lifetime span when event tracing is on.
    spawned_at: SimTime,
}

/// Inline capture space per call slot, in bytes. Every hot closure in
/// the model (processor-sharing reschedules, NIC completion
/// callbacks, message deliveries) must fit: the largest are the HCA
/// delivery callbacks, which carry a whole protocol message by value
/// (~80 B with its `Rc`s). Larger or over-aligned closures fall back
/// to a box transparently.
const CALL_INLINE_BYTES: usize = 96;
const CALL_INLINE_WORDS: usize = CALL_INLINE_BYTES / 8;

/// A small `FnOnce(&Sim)` stored inline: the capture bytes plus the
/// monomorphized functions that know how to run or drop them. The
/// capture is moved out by `invoke`; `drop_in_place` exists only for
/// kernel teardown with the call still pending.
struct InlineCall {
    data: [MaybeUninit<u64>; CALL_INLINE_WORDS],
    invoke: unsafe fn(*mut u8, &Sim),
    drop_in_place: unsafe fn(*mut u8),
}

impl Drop for InlineCall {
    fn drop(&mut self) {
        // Only reached when the kernel is torn down with this call
        // still scheduled; dispatch wraps the slot in `ManuallyDrop`
        // after moving the capture out.
        unsafe { (self.drop_in_place)(self.data.as_mut_ptr() as *mut u8) }
    }
}

/// One slot of the call slab ([`Kernel::calls`]).
enum CallSlot {
    Vacant,
    /// Small closure stored inline — no allocation.
    Inline(InlineCall),
    /// Fallback: closure too large/aligned for the inline arena, or
    /// the arena is disabled (`ELANIB_CALL_ARENA=off`).
    Boxed(BoxCall),
}

impl CallSlot {
    /// Run the parked closure. Consumes the slot's payload exactly
    /// once in either representation.
    fn run(self, sim: &Sim) {
        match self {
            CallSlot::Vacant => unreachable!("dispatched a vacant call slot"),
            CallSlot::Inline(ic) => {
                // The capture is moved out by `invoke`; suppress the
                // teardown drop so it is not dropped twice.
                let mut ic = ManuallyDrop::new(ic);
                unsafe { (ic.invoke)(ic.data.as_mut_ptr() as *mut u8, sim) }
            }
            CallSlot::Boxed(f) => f(sim),
        }
    }
}

/// The queue a [`Waker`] pushes into. It must be `Send + Sync` because
/// `std::task::Waker` is, even though a kernel never leaves its thread
/// (the sweep engine runs *distinct* sims on distinct threads).
#[derive(Default)]
struct WakeQueue {
    state: Mutex<WakeState>,
    /// Lock-free "anything queued?" hint. Set under the lock by
    /// [`TaskWaker::wake_by_ref`], cleared under the lock when a batch
    /// is drained, checked *before* the lock by the drain loop — which
    /// runs once per dispatched event, almost always finds nothing,
    /// and now pays one atomic load instead of a mutex round trip for
    /// the common miss.
    nonempty: AtomicBool,
}

#[derive(Default)]
struct WakeState {
    /// Tasks woken since the last drain, in wake order.
    ready: Vec<TaskId>,
    /// Dedup marks: `queued[idx] == gen as u64 + 1` iff `(idx, gen)`
    /// is already in `ready`. 0 = not queued. Cleared at drain time
    /// under the same lock acquisition that swaps the batch out.
    ///
    /// The marks are one wider than the `u32` generation on purpose:
    /// `gen + 1` can then never wrap to 0, the not-queued sentinel. A
    /// `u32` mark scheme breaks at `gen == u32::MAX`, where the mark
    /// collides with the sentinel and the slot's *first* wake of a
    /// batch is falsely treated as a duplicate and dropped — a
    /// lost-wakeup (spurious deadlock) after 2^32 recycles of one slot.
    queued: Vec<u64>,
}

struct TaskWaker {
    queue: Arc<WakeQueue>,
    /// Packed `(idx << 32) | gen`. Atomic so the arc can be recycled
    /// across slot generations: when a slot respawns and
    /// `Arc::strong_count == 1` (the kernel holds the only reference
    /// — no stale clone can observe the change), the id is rewritten
    /// in place instead of allocating a fresh arc. `Relaxed` suffices:
    /// the rewrite happens strictly while no other reference exists.
    id: AtomicU64,
}

impl TaskWaker {
    fn pack(id: TaskId) -> u64 {
        (id.idx as u64) << 32 | id.gen as u64
    }
    fn unpack(packed: u64) -> TaskId {
        TaskId {
            idx: (packed >> 32) as u32,
            gen: packed as u32,
        }
    }
    fn new(queue: Arc<WakeQueue>, id: TaskId) -> TaskWaker {
        TaskWaker {
            queue,
            id: AtomicU64::new(Self::pack(id)),
        }
    }
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        let id = TaskWaker::unpack(self.id.load(Ordering::Relaxed));
        let mut q = self.queue.state.lock().unwrap();
        let idx = id.idx as usize;
        if q.queued.len() <= idx {
            q.queued.resize(idx + 1, 0);
        }
        let mark = id.gen as u64 + 1;
        if q.queued[idx] == mark {
            return; // already queued at this instant: dedup
        }
        q.queued[idx] = mark;
        q.ready.push(id);
        self.queue.nonempty.store(true, Ordering::Release);
    }
}

/// Legacy string-trace callback: `(time, message)`. Kept for ad-hoc
/// debugging via [`Sim::set_tracer`]; the structured, sink-backed path
/// is the `elanib-trace` [`Tracer`](elanib_trace::Tracer) carried on
/// [`Sim`].
type TraceCallback = Box<dyn FnMut(SimTime, &str)>;

struct Kernel {
    now: SimTime,
    /// Pending events in `(time, seq)` order; sequence numbers are
    /// assigned by the wheel in push order. A [`Sim::run_until`] window
    /// boundary leaves out-of-window events in place
    /// ([`TimerWheel::pop_before`]), so the wheel alone is the pending
    /// set — there is no side stash.
    queue: TimerWheel<EventPayload>,
    /// Task slab, structure-of-arrays: `hot[i]` / `wakers[i]` /
    /// `cold[i]` are the three halves of slot `i` (dispatch state,
    /// wake plumbing, diagnostics — see the module docs).
    hot: Vec<TaskHot>,
    wakers: Vec<WakerSlot>,
    cold: Vec<TaskCold>,
    /// Recycled slab indices, available for the next spawn.
    free: Vec<u32>,
    /// Parked [`Sim::call_at`] closures; `EventPayload::Call` holds an
    /// index into this slab.
    calls: Vec<CallSlot>,
    /// Recycled call-slab indices.
    call_free: Vec<u32>,
    /// Store small call closures inline ([`SimOpts::call_arena`]).
    call_arena: bool,
    /// Count of waker `Arc`s actually allocated (spawns minus
    /// recycles) — observability for the recycling fast path.
    waker_allocs: u64,
    /// Task currently being polled, if any — the target a [`Delay`]
    /// registers for direct timer dispatch.
    current: Option<TaskId>,
    names: NameArena,
    payload_mode: PayloadMode,
    live_tasks: usize,
    rng: StdRng,
    events_processed: u64,
    /// Portion of `events_processed` already added to the
    /// thread-local counter (see [`thread_events`]).
    events_reported: u64,
    /// Portion of the wheel's cascade count already published to the
    /// metrics registry.
    cascades_reported: u64,
    tracer: Option<TraceCallback>,
    /// Always-on ring of recently dispatched events (see
    /// [`FlightRing`]); feeds deadlock reports and panic isolation.
    flight: FlightRing,
}

thread_local! {
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
    static THREAD_WAKER_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative count of kernel events dispatched by simulations that
/// ran **on the current OS thread**. The sweep engine samples this
/// before and after each job to attribute event throughput; it is
/// monotone and never reset.
pub fn thread_events() -> u64 {
    THREAD_EVENTS.with(|c| c.get())
}

/// Cumulative count of waker `Arc` allocations on the current OS
/// thread — spawns whose slot had no recyclable arc parked. The
/// micro-bench reports this next to allocations-per-event; in steady
/// state it should stay far below the spawn count.
pub fn thread_waker_allocs() -> u64 {
    THREAD_WAKER_ALLOCS.with(|c| c.get())
}

/// Handle to a running simulation. Cheap to clone; all clones share the
/// same kernel.
#[derive(Clone)]
pub struct Sim {
    k: Rc<RefCell<Kernel>>,
    wakes: Arc<WakeQueue>,
    /// Scratch buffer the wake queue is swapped into at drain time;
    /// ping-pongs with the queue's vector so steady-state draining
    /// performs no allocation.
    drain_buf: Rc<RefCell<Vec<TaskId>>>,
    /// Structured tracer, `None` unless `ELANIB_TRACE`/`ELANIB_METRICS`
    /// enabled it at construction. Kept outside the kernel `RefCell` so
    /// instrumentation points pay exactly one null check when disabled
    /// and never contend with a kernel borrow.
    tr: Option<Rc<elanib_trace::Tracer>>,
    /// Kernel profiler, `None` unless `ELANIB_PROFILE` enabled it at
    /// construction. Same zero-cost-when-off discipline as `tr`: the
    /// hot loop pays one null check per dispatch when disabled.
    prof: Option<Rc<KernelProfiler>>,
    /// Clear wake-dedup marks per task just before its poll
    /// ([`SimOpts::wake_coalesce`]) instead of per batch at swap time.
    wake_coalesce: bool,
}

/// One entry of a [`SimError::Deadlock`] report.
#[derive(Clone, Debug)]
pub struct StuckTask {
    pub name: String,
    /// Simulated time at which the task last suspended — where in the
    /// protocol it got stuck. Essential when a sweep worker reports a
    /// deadlock from deep inside a study grid.
    pub since: SimTime,
}

/// Kernel-state snapshot attached to every deadlock report: the
/// scheduler's queue depths at the moment events ran dry plus the
/// flight-recorder tail of the last dispatched events — so a stuck
/// point deep inside a sweep grid ships its diagnosis with the panic
/// message instead of requiring a re-run under a debugger. Built
/// unconditionally (the flight ring is always on); `counters` is
/// non-empty only when the structured tracer was also enabled.
#[derive(Clone, Debug, Default)]
pub struct DeadlockDiag {
    /// Events still pending in the heap (0 for a natural deadlock —
    /// nonzero would mean the loop exited abnormally).
    pub pending_events: usize,
    /// Tasks sitting woken-but-undrained in the wake queue.
    pub wake_queue: usize,
    pub live_tasks: usize,
    pub events_processed: u64,
    /// Top monotonic counters recorded by the tracer, pre-formatted;
    /// empty in untraced runs.
    pub counters: String,
    /// Flight-recorder tail: the last dispatched events, oldest first
    /// (deterministic dispatch order). Empty only if the run
    /// deadlocked before dispatching a single event.
    pub flight: Vec<FlightEntry>,
}

/// Why [`Sim::run`] stopped before all tasks completed.
#[derive(Debug)]
pub enum SimError {
    /// The event heap drained while tasks were still suspended — some
    /// wait can never be satisfied (e.g. a `recv` with no matching
    /// `send`). Carries the stuck tasks' names, the simulated time each
    /// last suspended at, and — when tracing is enabled — a kernel
    /// diagnostics snapshot.
    Deadlock {
        stuck: Vec<StuckTask>,
        diag: DeadlockDiag,
    },
    /// [`Sim::run_until_budget`] exhausted its simulated-time budget
    /// with events still pending: the run is *live* (not deadlocked)
    /// but has overrun the caller's watchdog. `next` is the timestamp
    /// of the earliest undispatched event; `diag` carries the same
    /// kernel snapshot (flight-ring tail included) a deadlock report
    /// would, so a runaway scenario ships its diagnosis without being
    /// killed from outside the process.
    ScenarioTimeout {
        budget: SimTime,
        next: SimTime,
        diag: DeadlockDiag,
    },
}

/// Shared tail of every [`SimError`] Display form: the kernel snapshot
/// in square brackets, flight-ring tail last.
fn fmt_diag(f: &mut fmt::Formatter<'_>, d: &DeadlockDiag) -> fmt::Result {
    write!(
        f,
        " [kernel: pending_events={}, wake_queue={}, live_tasks={}, events_processed={}",
        d.pending_events, d.wake_queue, d.live_tasks, d.events_processed
    )?;
    if !d.counters.is_empty() {
        write!(f, "; counters: {}", d.counters)?;
    }
    if !d.flight.is_empty() {
        let show = d.flight.len().min(8);
        write!(f, "; flight tail ({} of {}): ", show, d.flight.len())?;
        for (i, e) in d.flight[d.flight.len() - show..].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
    }
    write!(f, "]")
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck, diag } => {
                write!(f, "simulation deadlock; {} task(s) stuck: ", stuck.len())?;
                for (i, t) in stuck.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} (suspended at {})", t.name, t.since)?;
                }
                if stuck.len() > 8 {
                    write!(f, ", ...")?;
                }
                fmt_diag(f, diag)
            }
            SimError::ScenarioTimeout { budget, next, diag } => {
                write!(
                    f,
                    "scenario timeout: simulated-time budget {budget} exhausted \
                     with events still pending (next event at {next})"
                )?;
                fmt_diag(f, diag)
            }
        }
    }
}
impl std::error::Error for SimError {}

impl Sim {
    /// Create a simulation whose RNG is seeded with `seed`. The timer
    /// payload mode follows `ELANIB_PAYLOAD_MODE` (default: tagged);
    /// the dispatch-path knobs follow their env vars ([`SimOpts`]).
    pub fn new(seed: u64) -> Sim {
        Sim::with_opts(seed, SimOpts::from_env())
    }

    /// Create a simulation with an explicit timer [`PayloadMode`] —
    /// the hook the payload-model tests and A/B harnesses use to pin a
    /// mode regardless of environment.
    pub fn with_payload_mode(seed: u64, payload_mode: PayloadMode) -> Sim {
        let mut opts = SimOpts::from_env();
        opts.payload_mode = payload_mode;
        Sim::with_opts(seed, opts)
    }

    /// Create a simulation with every dispatch-path knob pinned —
    /// what the A/B tests use to compare fast and fallback paths
    /// regardless of environment.
    pub fn with_opts(seed: u64, opts: SimOpts) -> Sim {
        Sim {
            k: Rc::new(RefCell::new(Kernel {
                now: SimTime::ZERO,
                queue: TimerWheel::new(),
                hot: Vec::new(),
                wakers: Vec::new(),
                cold: Vec::new(),
                free: Vec::new(),
                calls: Vec::new(),
                call_free: Vec::new(),
                call_arena: opts.call_arena,
                waker_allocs: 0,
                current: None,
                names: NameArena::default(),
                payload_mode: opts.payload_mode,
                live_tasks: 0,
                rng: StdRng::seed_from_u64(seed),
                events_processed: 0,
                events_reported: 0,
                cascades_reported: 0,
                tracer: None,
                flight: FlightRing::new(),
            })),
            wakes: Arc::new(WakeQueue::default()),
            drain_buf: Rc::new(RefCell::new(Vec::new())),
            tr: elanib_trace::Tracer::from_config(seed),
            prof: KernelProfiler::from_config(),
            wake_coalesce: opts.wake_coalesce,
        }
    }

    /// Create a simulation with an explicit tracer (tests and tools
    /// that want telemetry regardless of environment).
    pub fn with_tracer(seed: u64, tr: Rc<elanib_trace::Tracer>) -> Sim {
        let mut sim = Sim::new(seed);
        sim.tr = Some(tr);
        sim
    }

    /// Create a simulation with an explicit kernel profiler (tests and
    /// tools that want cost attribution regardless of environment).
    pub fn with_profiler(seed: u64, prof: Rc<KernelProfiler>) -> Sim {
        let mut sim = Sim::new(seed);
        sim.prof = Some(prof);
        sim
    }

    /// The kernel profiler, if `ELANIB_PROFILE` (or
    /// [`Sim::with_profiler`]) enabled it for this simulation.
    #[inline]
    pub fn profiler(&self) -> Option<&KernelProfiler> {
        self.prof.as_deref()
    }

    /// Snapshot of the flight recorder: the most recent dispatched
    /// events, oldest first. Always available — the ring is maintained
    /// unconditionally (two stores per dispatch, no allocation).
    pub fn flight_tail(&self) -> Vec<FlightEntry> {
        self.k.borrow().flight.tail()
    }

    /// The structured tracer, if tracing/metrics is enabled for this
    /// simulation. Instrumentation points across the model crates go
    /// through this accessor:
    ///
    /// ```ignore
    /// if let Some(tr) = sim.tracer() {
    ///     tr.add("regcache.miss", 1);
    /// }
    /// ```
    #[inline]
    pub fn tracer(&self) -> Option<&elanib_trace::Tracer> {
        self.tr.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.borrow().now
    }

    /// Number of events the kernel has dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.k.borrow().events_processed
    }

    /// Number of task slots currently live (spawned, not completed).
    pub fn live_tasks(&self) -> usize {
        self.k.borrow().live_tasks
    }

    /// Size of the task slab (high-water mark of concurrently live
    /// tasks, not total spawns — slots are recycled).
    pub fn slab_capacity(&self) -> usize {
        self.k.borrow().hot.len()
    }

    /// Number of waker `Arc` allocations so far — spawns that could
    /// not recycle the slot's previous arc. Observability for the
    /// waker-recycling fast path (and its test).
    pub fn waker_allocs(&self) -> u64 {
        self.k.borrow().waker_allocs
    }

    /// Install a trace callback invoked by [`Sim::trace`].
    pub fn set_tracer(&self, f: impl FnMut(SimTime, &str) + 'static) {
        self.k.borrow_mut().tracer = Some(Box::new(f));
    }

    /// Emit a trace line if a tracer is installed. `msg` is built lazily
    /// so tracing is free when disabled.
    pub fn trace(&self, msg: impl FnOnce() -> String) {
        let mut k = self.k.borrow_mut();
        if k.tracer.is_some() {
            let now = k.now;
            let s = {
                // Build the message outside the tracer borrow.
                drop(k);
                let s = msg();
                k = self.k.borrow_mut();
                s
            };
            if let Some(t) = k.tracer.as_mut() {
                t(now, &s);
            }
        }
    }

    /// Run a closure with the kernel RNG. All model randomness must go
    /// through here to preserve determinism.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.k.borrow_mut().rng)
    }

    /// Spawn a task. It will first be polled when the kernel reaches the
    /// current simulated time in its event order (immediately at t=now).
    pub fn spawn(&self, name: impl AsRef<str>, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let name = name.as_ref();
        self.spawn_with(|arena| arena.intern(name), fut)
    }

    /// Spawn a task whose name is formatted straight into the name
    /// arena — the hot-path variant for model sites that would
    /// otherwise build (and immediately discard) a `String` per task:
    ///
    /// ```ignore
    /// sim.spawn_fmt(format_args!("xfer {src}->{dst}"), async move { ... });
    /// ```
    pub fn spawn_fmt(
        &self,
        name: fmt::Arguments<'_>,
        fut: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        self.spawn_with(|arena| arena.intern_fmt(name), fut)
    }

    fn spawn_with(
        &self,
        intern: impl FnOnce(&mut NameArena) -> NameRef,
        fut: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let mut k = self.k.borrow_mut();
        let now = k.now;
        let idx = match k.free.pop() {
            Some(i) => i,
            None => {
                k.hot.push(TaskHot::vacant());
                k.wakers.push(WakerSlot::default());
                k.cold.push(TaskCold::default());
                (k.hot.len() - 1) as u32
            }
        };
        let name = intern(&mut k.names);
        let i = idx as usize;
        debug_assert!(!k.hot[i].live, "spawn into a live slot");
        let id = TaskId {
            idx,
            gen: k.hot[i].gen,
        };
        k.hot[i].fut = Some(PooledFut::new(fut));
        k.hot[i].live = true;
        k.cold[i] = TaskCold {
            name,
            last_suspend: now,
            spawned_at: now,
        };
        // Waker fast path: recycle the slot's previous arc when the
        // kernel holds the only reference (no stale clone can exist,
        // so rewriting the packed id is unobservable); otherwise
        // allocate a fresh one and let the old arc die with its
        // outstanding clones, which the generation check defuses.
        debug_assert!(k.wakers[i].waker.is_none(), "live slot with a parked waker");
        let arc = match k.wakers[i].arc.take() {
            Some(a) if Arc::strong_count(&a) == 1 => {
                a.id.store(TaskWaker::pack(id), Ordering::Relaxed);
                a
            }
            _ => {
                k.waker_allocs += 1;
                THREAD_WAKER_ALLOCS.with(|c| c.set(c.get() + 1));
                Arc::new(TaskWaker::new(self.wakes.clone(), id))
            }
        };
        k.wakers[i].waker = Some(Waker::from(arc.clone()));
        k.wakers[i].arc = Some(arc);
        k.live_tasks += 1;
        k.push(now, EventPayload::Poll(id));
        drop(k);
        if let Some(tr) = &self.tr {
            tr.add("sim.tasks_spawned", 1);
        }
        id
    }

    /// Schedule `f` to run against the simulation after `delay`.
    pub fn call_in(&self, delay: Dur, f: impl FnOnce(&Sim) + 'static) {
        let mut k = self.k.borrow_mut();
        let at = k.now + delay;
        k.push_call(at, f);
    }

    /// Schedule `f` at an absolute time (must not be in the past).
    pub fn call_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) {
        let mut k = self.k.borrow_mut();
        debug_assert!(at >= k.now, "call_at into the past");
        k.push_call(at, f);
    }

    /// Schedule a timer at `at` for the task currently being polled —
    /// the direct-dispatch path [`Delay`] prefers: the expiry event
    /// carries the (generation-checked) task id itself, so firing it
    /// polls the task without cloning a waker or detouring through the
    /// wake queue. Returns false when there is no current task (the
    /// delay is being polled from outside the kernel) or the sim runs
    /// in legacy payload mode; the caller then falls back to
    /// [`Sim::schedule_timer`].
    ///
    /// Order equivalence with the waker path: a popped `Timer` waker
    /// enqueues its task and the run loop drains that single wake
    /// before popping another event, so in both representations the
    /// task is polled after every earlier event and before every later
    /// one — the payload-model proptest and the tier-2 byte-identity
    /// check both lock this.
    fn schedule_timer_direct(&self, at: SimTime) -> bool {
        let mut k = self.k.borrow_mut();
        if k.payload_mode == PayloadMode::Legacy {
            return false;
        }
        let Some(id) = k.current else {
            return false;
        };
        debug_assert!(at >= k.now, "timer into the past");
        k.push(at, EventPayload::Poll(id));
        drop(k);
        if let Some(tr) = &self.tr {
            tr.add("sim.timers", 1);
        }
        true
    }

    /// Schedule `waker` to fire at `at` — the fallback timer path (and
    /// the only one in legacy payload mode).
    fn schedule_timer(&self, at: SimTime, waker: Waker) {
        {
            let mut k = self.k.borrow_mut();
            debug_assert!(at >= k.now, "timer into the past");
            k.push(at, EventPayload::Timer(waker));
        }
        if let Some(tr) = &self.tr {
            tr.add("sim.timers", 1);
        }
    }

    /// Future that completes after `d` of simulated time.
    pub fn sleep(&self, d: Dur) -> Delay {
        Delay {
            sim: self.clone(),
            deadline: None,
            dur: d,
        }
    }

    /// Future that completes at absolute time `t` (immediately if `t`
    /// is in the past).
    pub fn sleep_until(&self, t: SimTime) -> Delay {
        let now = self.now();
        Delay {
            sim: self.clone(),
            deadline: None,
            dur: t.since(now),
        }
    }

    /// Drain one batch of woken tasks and poll them in wake order.
    /// Returns false when the queue was empty. One lock acquisition
    /// and no allocation per batch: the queue's vector and the drain
    /// buffer ping-pong, and dedup marks are cleared while the lock is
    /// already held.
    /// `mark` is the profiler's chained timestamp: when profiling, the
    /// span from `*mark` to the end of this batch is charged to the
    /// wake bucket and `*mark` advances, so consecutive segments
    /// partition the dispatch loop with no untimed gaps between them.
    fn drain_wakes(&self, mark: Option<&mut Instant>) -> bool {
        // Common case — nothing woke since the last drain — answered
        // by one atomic load, no lock.
        if !self.wakes.nonempty.load(Ordering::Acquire) {
            return false;
        }
        let mut buf = self.drain_buf.borrow_mut();
        debug_assert!(buf.is_empty());
        let coalesce = self.wake_coalesce;
        {
            let mut q = self.wakes.state.lock().unwrap();
            if q.ready.is_empty() {
                return false;
            }
            let WakeState { ready, queued } = &mut *q;
            std::mem::swap(ready, &mut *buf);
            if !coalesce {
                for id in buf.iter() {
                    queued[id.idx as usize] = 0;
                }
            }
            self.wakes.nonempty.store(false, Ordering::Release);
        }
        if let Some(tr) = &self.tr {
            tr.add("sim.wakes", buf.len() as u64);
        }
        // Polling may re-enter the kernel (spawn, wake, schedule) but
        // never this drain, so holding the buffer borrow is safe.
        for i in 0..buf.len() {
            let id = buf[i];
            if coalesce {
                // Unmark this task only now, just before its poll: a
                // wake raised while the earlier part of the batch was
                // polling coalesces into this still-pending poll
                // (which will observe the wake's state change) instead
                // of re-queueing a needless second poll. A wake raised
                // *during or after* the poll re-queues, as it must —
                // it may arrive after the task decided to suspend.
                let mut q = self.wakes.state.lock().unwrap();
                let mark = id.gen as u64 + 1;
                if q.queued[id.idx as usize] == mark {
                    q.queued[id.idx as usize] = 0;
                }
            }
            self.poll_task(id);
        }
        if let (Some(p), Some(m)) = (&self.prof, mark) {
            let now = Instant::now();
            p.wake_drain(buf.len() as u64, now.duration_since(*m));
            *m = now;
        }
        buf.clear();
        true
    }

    /// The dispatch loop shared by [`Sim::run`] and [`Sim::run_until`]:
    /// process events in `(time, seq)` order while their time precedes
    /// `limit` (all events when `limit` is `None`). Returns the time of
    /// the first event at or past the limit — left undisturbed in the
    /// wheel, whose anchor likewise stays put so new events may still
    /// be scheduled anywhere at or after `now` — or `None` when no
    /// events remain.
    fn run_events(&self, limit: Option<SimTime>) -> Option<SimTime> {
        match self.prof.clone() {
            None => self.run_events_inner(limit, None),
            Some(p) => {
                // Bracket the whole dispatch loop so the time *not*
                // attributed to a named bucket (final drain checks,
                // the empty/limit pop) lands in the residue — the
                // attribution percentage the report prints is honest.
                let t0 = Instant::now();
                let before = p.run_wall_ns();
                let out = self.run_events_inner(limit, Some(&p));
                let total = t0.elapsed().as_nanos() as u64;
                let attributed = p.run_wall_ns() - before;
                p.loop_residue(Duration::from_nanos(total.saturating_sub(attributed)));
                out
            }
        }
    }

    fn run_events_inner(
        &self,
        limit: Option<SimTime>,
        prof: Option<&Rc<KernelProfiler>>,
    ) -> Option<SimTime> {
        // Chained profiling timestamp: each attribution advances it,
        // so the wake and event segments tile the loop end to end —
        // only the final (empty or past-limit) pop lands in the
        // residue bucket.
        let mut mark = prof.map(|_| Instant::now());
        loop {
            // 1. Poll every task woken at the current instant. Wakes
            //    performed while draining are themselves drained before
            //    the clock may advance (zero-delay wake semantics).
            while self.drain_wakes(mark.as_mut()) {}

            // 2. Advance the clock to the next event and extract the
            //    dispatch target — future + waker for a poll, parked
            //    closure for a call — under the same kernel borrow as
            //    the pop: one borrow per event, not two.
            let (action, tag, prof_sample) = {
                let mut k = self.k.borrow_mut();
                let next = match limit {
                    Some(lim) => match k.queue.pop_before(lim.as_ps()) {
                        Ok(next) => next,
                        Err(at_ps) => return Some(SimTime(at_ps)),
                    },
                    None => k.queue.pop(),
                };
                match next {
                    Some((at_ps, payload)) => {
                        let at = SimTime(at_ps);
                        debug_assert!(at >= k.now, "event time went backwards");
                        // Occupancy at dispatch is the pre-pop depth;
                        // the advance is how far the clock jumps.
                        let sample =
                            prof.map(|_| (k.queue.len() as u64 + 1, at_ps - k.now.as_ps()));
                        k.now = at;
                        k.events_processed += 1;
                        k.flight.record(at_ps, &payload);
                        let tag = payload.tag();
                        let action = match payload {
                            EventPayload::Poll(id) => match Sim::take_for_poll(&mut k, id) {
                                Some((fut, w, prev)) => Action::Poll(id, fut, w, prev),
                                // Stale (recycled slot) or already
                                // completed: nothing to do.
                                None => Action::Skip,
                            },
                            EventPayload::Timer(w) => Action::Wake(w),
                            EventPayload::Call(i) => Action::Call(k.take_call(i)),
                        };
                        (action, tag, sample)
                    }
                    None => return None,
                }
            };
            match action {
                Action::Poll(id, fut, w, prev) => self.poll_taken(id, fut, w, prev),
                Action::Wake(w) => w.wake(),
                Action::Call(slot) => slot.run(self),
                Action::Skip => {}
            }
            if let (Some(p), Some(m), Some((occupancy, adv_ps))) =
                (prof, mark.as_mut(), prof_sample)
            {
                let now = Instant::now();
                p.event(tag, adv_ps, occupancy, now.duration_since(*m));
                *m = now;
            }
        }
    }

    /// Drive the simulation until every spawned task has completed.
    ///
    /// Returns the final simulated time, or [`SimError::Deadlock`] if
    /// events ran dry with tasks still suspended.
    pub fn run(&self) -> Result<SimTime, SimError> {
        let leftover = self.run_events(None);
        debug_assert!(leftover.is_none());
        let result = self.finish_run();
        self.publish_counters();
        result
    }

    /// Drive the simulation to completion like [`Sim::run`], but under
    /// a simulated-time watchdog: if events are still pending once the
    /// clock would cross `budget`, stop and return a typed
    /// [`SimError::ScenarioTimeout`] (kernel snapshot and flight-ring
    /// tail attached) instead of spinning forever or requiring an
    /// external process kill. A run that drains its events within the
    /// budget behaves exactly as `run()` — including deadlock
    /// detection — so a generous budget is free.
    pub fn run_until_budget(&self, budget: SimTime) -> Result<SimTime, SimError> {
        let leftover = self.run_events(Some(budget));
        let result = match leftover {
            Some(next) => Err(SimError::ScenarioTimeout {
                budget,
                next,
                diag: self.diag_snapshot(),
            }),
            None => self.finish_run(),
        };
        self.publish_counters();
        result
    }

    /// Kernel snapshot for an error report: scheduler queue depths and
    /// the flight-recorder tail, built unconditionally — an *untraced*
    /// failure is still diagnosable. Trace counters ride along when
    /// the tracer happens to be on.
    fn diag_snapshot(&self) -> DeadlockDiag {
        let k = self.k.borrow();
        DeadlockDiag {
            pending_events: k.queue.len(),
            wake_queue: self.wakes.state.lock().unwrap().ready.len(),
            live_tasks: k.live_tasks,
            events_processed: k.events_processed,
            counters: self
                .tr
                .as_ref()
                .map(|tr| tr.counter_digest(6))
                .unwrap_or_default(),
            flight: k.flight.tail(),
        }
    }

    /// Completion / deadlock verdict once the event queue has drained.
    fn finish_run(&self) -> Result<SimTime, SimError> {
        let now = {
            let k = self.k.borrow();
            if k.live_tasks > 0 {
                let stuck: Vec<StuckTask> = k
                    .hot
                    .iter()
                    .zip(&k.cold)
                    .filter(|(h, _)| h.live)
                    .map(|(_, c)| StuckTask {
                        name: k.names.get(c.name).to_string(),
                        since: c.last_suspend,
                    })
                    .collect();
                drop(k);
                let diag = self.diag_snapshot();
                return Err(SimError::Deadlock { stuck, diag });
            }
            k.now
        };
        Ok(now)
    }

    /// Drive the simulation up to (exclusive) `limit`: every pending
    /// event with time < `limit` is dispatched, then the loop stops
    /// and reports the time of the earliest remaining event (`None` if
    /// the queue drained). The clock stays at the last dispatched
    /// event — it does **not** jump to the limit — and suspended tasks
    /// are *not* a deadlock here: they may be waiting on input a later
    /// window injects. This is the primitive the conservative sharded
    /// engine ([`crate::shard`]) builds barrier windows from.
    pub fn run_until(&self, limit: SimTime) -> Option<SimTime> {
        let next = self.run_events(Some(limit));
        self.publish_counters();
        next
    }

    /// Publish this run's event count to the per-thread counter the
    /// sweep engine reads (delta-based: run() may be called again).
    fn publish_counters(&self) {
        let mut k = self.k.borrow_mut();
        let delta = k.events_processed - k.events_reported;
        k.events_reported = k.events_processed;
        let cascades = k.queue.cascades() - k.cascades_reported;
        k.cascades_reported = k.queue.cascades();
        let (total_cascades, high_water) = (k.queue.cascades(), k.queue.high_water() as u64);
        THREAD_EVENTS.with(|c| c.set(c.get() + delta));
        drop(k);
        if let Some(tr) = &self.tr {
            tr.add("sim.events", delta);
            tr.add("wheel.cascades", cascades);
        }
        if let Some(p) = &self.prof {
            p.note_wheel(total_cascades, high_water);
        }
    }

    /// Extract a live task's future and waker for polling and mark it
    /// current (so a [`Delay`] created inside can register direct
    /// timer dispatch). Returns `None` for a stale generation or an
    /// already-completed / already-being-polled target.
    #[inline]
    fn take_for_poll(k: &mut Kernel, id: TaskId) -> Option<(BoxFuture, Waker, Option<TaskId>)> {
        let i = id.idx as usize;
        let slot = &mut k.hot[i];
        if slot.gen != id.gen {
            // Stale wake for a recycled slot: the task it meant is
            // long gone.
            return None;
        }
        // `None` here: already completed, or currently being polled
        // higher up the stack (a spurious duplicate wake) — ignore.
        let fut = slot.fut.take()?;
        // The waker travels by value — moved out for the poll, moved
        // back on suspend — so the poll path performs no refcount
        // traffic at all.
        let waker = k.wakers[i].waker.take().expect("live task has a waker");
        let prev = k.current.replace(id);
        Some((fut, waker, prev))
    }

    fn poll_task(&self, id: TaskId) {
        let taken = Sim::take_for_poll(&mut self.k.borrow_mut(), id);
        if let Some((fut, waker, prev)) = taken {
            self.poll_taken(id, fut, waker, prev);
        }
    }

    /// Poll an extracted future and write the outcome back into the
    /// slab: completion recycles the slot (generation bump invalidates
    /// in-flight wakes; the waker's arc is parked for reuse by the
    /// next spawn), suspension returns future and waker to their
    /// arrays.
    fn poll_taken(
        &self,
        id: TaskId,
        mut fut: BoxFuture,
        waker: Waker,
        prev_current: Option<TaskId>,
    ) {
        let mut cx = Context::from_waker(&waker);
        match fut.poll(&mut cx) {
            Poll::Ready(()) => {
                let mut k = self.k.borrow_mut();
                k.current = prev_current;
                let now = k.now;
                let i = id.idx as usize;
                // Capture the lifetime span before the slot is wiped —
                // only when events are actually being recorded (the
                // name copy is the lone tracing cost on this path).
                let name_ref = k.cold[i].name;
                let slot = &mut k.hot[i];
                slot.live = false;
                // Invalidate in-flight wakes and recycle the slot. The
                // polled waker is dropped here (it never went back into
                // the slab); the backing arc stays parked in
                // `wakers[i].arc` for the next spawn to recycle.
                slot.gen = slot.gen.wrapping_add(1);
                k.cold[i].name = NameRef::default();
                let span = match &self.tr {
                    Some(tr) if tr.events_on() => {
                        Some((k.names.get(name_ref).to_string(), k.cold[i].spawned_at))
                    }
                    _ => None,
                };
                k.live_tasks -= 1;
                k.free.push(id.idx);
                if k.live_tasks == 0 {
                    // No live slot can reference a name span any more:
                    // reclaim the arena for the next task generation.
                    k.names.reset();
                }
                drop(k);
                if let Some(tr) = &self.tr {
                    tr.add("sim.tasks_completed", 1);
                    if let Some((name, spawned_at)) = span {
                        tr.span("task", name, spawned_at.as_ps(), now.as_ps(), id.idx, 0);
                    }
                }
            }
            Poll::Pending => {
                let mut k = self.k.borrow_mut();
                k.current = prev_current;
                let now = k.now;
                let i = id.idx as usize;
                k.hot[i].fut = Some(fut);
                k.wakers[i].waker = Some(waker);
                k.cold[i].last_suspend = now;
            }
        }
    }
}

/// What one popped event resolved to under the dispatch borrow; the
/// borrow is released before the action runs (the action re-enters
/// the kernel freely).
enum Action {
    Poll(TaskId, BoxFuture, Waker, Option<TaskId>),
    Wake(Waker),
    Call(CallSlot),
    Skip,
}

impl Kernel {
    fn push(&mut self, at: SimTime, payload: EventPayload) {
        self.queue.push(at.as_ps(), payload);
    }

    /// Park a closure in the call slab and schedule the slot index.
    /// Small captures go into the slot's inline arena (no allocation);
    /// oversized or over-aligned ones — and everything when
    /// `ELANIB_CALL_ARENA=off` — are boxed.
    fn push_call<F: FnOnce(&Sim) + 'static>(&mut self, at: SimTime, f: F) {
        let slot = if self.call_arena
            && std::mem::size_of::<F>() <= CALL_INLINE_BYTES
            && std::mem::align_of::<F>() <= std::mem::align_of::<u64>()
        {
            /// Move the capture out of the slot and run it.
            unsafe fn invoke<F: FnOnce(&Sim)>(p: *mut u8, sim: &Sim) {
                let f = unsafe { (p as *mut F).read() };
                f(sim)
            }
            /// Drop the capture in place (kernel teardown only).
            unsafe fn drop_call<F>(p: *mut u8) {
                unsafe { std::ptr::drop_in_place(p as *mut F) }
            }
            let mut ic = InlineCall {
                data: [MaybeUninit::uninit(); CALL_INLINE_WORDS],
                invoke: invoke::<F>,
                drop_in_place: drop_call::<F>,
            };
            unsafe { (ic.data.as_mut_ptr() as *mut F).write(f) };
            CallSlot::Inline(ic)
        } else {
            CallSlot::Boxed(Box::new(f))
        };
        let idx = match self.call_free.pop() {
            Some(i) => {
                self.calls[i as usize] = slot;
                i
            }
            None => {
                self.calls.push(slot);
                (self.calls.len() - 1) as u32
            }
        };
        self.push(at, EventPayload::Call(idx));
    }

    /// Remove a parked call from the slab for dispatch, recycling its
    /// slot.
    fn take_call(&mut self, i: u32) -> CallSlot {
        let slot = std::mem::replace(&mut self.calls[i as usize], CallSlot::Vacant);
        debug_assert!(!matches!(slot, CallSlot::Vacant), "call slot occupied");
        self.call_free.push(i);
        slot
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Delay {
    sim: Sim,
    deadline: Option<SimTime>,
    dur: Dur,
}

impl Future for Delay {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.deadline {
            None => {
                if this.dur.is_zero() {
                    return Poll::Ready(());
                }
                let deadline = this.sim.now() + this.dur;
                this.deadline = Some(deadline);
                // Tagged fast path: the expiry event polls the current
                // task directly. Falls back to the stored-waker event
                // when polled outside a kernel task or in legacy mode.
                if !this.sim.schedule_timer_direct(deadline) {
                    this.sim.schedule_timer(deadline, cx.waker().clone());
                }
                Poll::Pending
            }
            Some(d) => {
                if this.sim.now() >= d {
                    Poll::Ready(())
                } else {
                    // Spurious poll before the timer fired; the timer
                    // event holds our original waker, so just wait.
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_runs_to_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new(1);
        let end = Rc::new(Cell::new(SimTime::ZERO));
        let e = end.clone();
        let s = sim.clone();
        sim.spawn("sleeper", async move {
            s.sleep(Dur::from_us(10)).await;
            s.sleep(Dur::from_us(5)).await;
            e.set(s.now());
        });
        sim.run().unwrap();
        assert_eq!(end.get(), SimTime::ZERO + Dur::from_us(15));
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let o = order.clone();
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                s.sleep(Dur::from_us(1)).await;
                o.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn call_in_runs_at_right_time() {
        let sim = Sim::new(1);
        let seen = Rc::new(Cell::new(0u64));
        let s2 = seen.clone();
        sim.call_in(Dur::from_ms(2), move |sim| {
            assert_eq!(sim.now(), SimTime::ZERO + Dur::from_ms(2));
            s2.set(7);
        });
        sim.run().unwrap();
        assert_eq!(seen.get(), 7);
    }

    #[test]
    fn zero_duration_sleep_is_immediate() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn("z", async move {
            s.sleep(Dur::ZERO).await;
            assert_eq!(s.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn deterministic_event_counts() {
        fn run_once(seed: u64) -> (SimTime, u64, u64) {
            let sim = Sim::new(seed);
            let checksum = Rc::new(Cell::new(0u64));
            for i in 0..20 {
                let s = sim.clone();
                let ck = checksum.clone();
                sim.spawn(format!("t{i}"), async move {
                    let jitter = s.with_rng(|r| rand::Rng::gen_range(r, 1..100u64));
                    ck.set(ck.get().wrapping_mul(31).wrapping_add(jitter));
                    s.sleep(Dur::from_ns(jitter)).await;
                    s.sleep(Dur::from_ns(jitter * 3)).await;
                });
            }
            let t = sim.run().unwrap();
            (t, sim.events_processed(), checksum.get())
        }
        assert_eq!(run_once(42), run_once(42));
        // Different seeds must draw a different jitter sequence (the
        // *final* clock alone can collide: it is just the max jitter).
        assert_ne!(run_once(42).2, run_once(43).2);
    }

    #[test]
    fn nested_spawn_completes() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn("outer", async move {
            s.sleep(Dur::from_us(1)).await;
            let s2 = s.clone();
            s.spawn("inner", async move {
                s2.sleep(Dur::from_us(1)).await;
                d.set(true);
            });
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn deadlock_is_reported_with_task_name_and_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn("stuck-task", async move {
            s.sleep(Dur::from_us(3)).await;
            std::future::pending::<()>().await;
        });
        match sim.run() {
            Err(SimError::Deadlock { stuck, diag }) => {
                assert_eq!(stuck.len(), 1);
                assert_eq!(stuck[0].name, "stuck-task");
                assert_eq!(stuck[0].since, SimTime::ZERO + Dur::from_us(3));
                // Untraced runs still ship kernel diagnostics and a
                // non-empty flight-recorder tail.
                assert!(diag.counters.is_empty(), "no trace counters untraced");
                assert!(!diag.flight.is_empty(), "flight tail present untraced");
                assert!(diag.events_processed > 0);
                let msg = format!("{}", SimError::Deadlock { stuck, diag });
                assert!(msg.contains("stuck-task"), "{msg}");
                assert!(msg.contains("suspended at"), "{msg}");
                assert!(msg.contains("flight tail"), "{msg}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_report_includes_tracer_diagnostics() {
        let sim = Sim::with_tracer(1, elanib_trace::Tracer::forced(1));
        let s = sim.clone();
        sim.spawn("hung", async move {
            s.sleep(Dur::from_us(2)).await;
            std::future::pending::<()>().await;
        });
        let err = sim.run().unwrap_err();
        let SimError::Deadlock { diag: d, .. } = &err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(d.pending_events, 0, "natural deadlock drains the heap");
        assert_eq!(d.wake_queue, 0);
        assert_eq!(d.live_tasks, 1);
        assert!(d.events_processed > 0);
        assert!(d.counters.contains("sim.tasks_spawned=1"), "{}", d.counters);
        let msg = format!("{err}");
        assert!(msg.contains("pending_events=0"), "{msg}");
        assert!(msg.contains("wake_queue=0"), "{msg}");
    }

    #[test]
    fn budget_run_completes_like_plain_run_when_under_budget() {
        let mk = || {
            let sim = Sim::new(11);
            let s = sim.clone();
            sim.spawn("quick", async move {
                for _ in 0..5 {
                    s.sleep(Dur::from_us(3)).await;
                }
            });
            sim
        };
        let plain = mk().run().unwrap();
        let budgeted = mk()
            .run_until_budget(SimTime::ZERO + Dur::from_ms(1))
            .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn budget_run_reports_typed_timeout_with_diagnostics() {
        let sim = Sim::new(12);
        let s = sim.clone();
        sim.spawn("endless-ticker", async move {
            loop {
                s.sleep(Dur::from_us(1)).await;
            }
        });
        let err = sim.run_until_budget(SimTime::ZERO + Dur::from_us(50));
        match err {
            Err(SimError::ScenarioTimeout { budget, next, diag }) => {
                assert_eq!(budget, SimTime::ZERO + Dur::from_us(50));
                assert!(next >= budget, "next pending event is at/past budget");
                assert!(diag.pending_events > 0, "the run is live, not deadlocked");
                assert!(!diag.flight.is_empty(), "flight tail attached");
                let msg = format!("{}", SimError::ScenarioTimeout { budget, next, diag });
                assert!(msg.contains("scenario timeout"), "{msg}");
                assert!(msg.contains("flight tail"), "{msg}");
            }
            other => panic!("expected scenario timeout, got {other:?}"),
        }
    }

    #[test]
    fn budget_run_still_detects_deadlock_within_budget() {
        let sim = Sim::new(13);
        let s = sim.clone();
        sim.spawn("hangs-early", async move {
            s.sleep(Dur::from_us(2)).await;
            std::future::pending::<()>().await;
        });
        match sim.run_until_budget(SimTime::ZERO + Dur::from_ms(10)) {
            Err(SimError::Deadlock { stuck, .. }) => {
                assert_eq!(stuck[0].name, "hangs-early");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn flight_recorder_keeps_last_events_in_dispatch_order() {
        let sim = Sim::new(7);
        let s = sim.clone();
        // Well past FLIGHT_LEN dispatched events so the ring wraps.
        sim.spawn("looper", async move {
            for _ in 0..(FLIGHT_LEN * 3) {
                s.sleep(Dur::from_ns(10)).await;
            }
        });
        sim.run().unwrap();
        let tail = sim.flight_tail();
        assert_eq!(tail.len(), FLIGHT_LEN, "ring caps at FLIGHT_LEN");
        for w in tail.windows(2) {
            assert!(w[0].at_ps <= w[1].at_ps, "tail is in dispatch order");
        }
        // The final entry is the most recent dispatch.
        assert_eq!(tail.last().unwrap().at_ps, sim.now().as_ps());
        // Determinism: an identical run produces an identical tail.
        let sim2 = Sim::new(7);
        let s2 = sim2.clone();
        sim2.spawn("looper", async move {
            for _ in 0..(FLIGHT_LEN * 3) {
                s2.sleep(Dur::from_ns(10)).await;
            }
        });
        sim2.run().unwrap();
        assert_eq!(tail, sim2.flight_tail());
    }

    #[test]
    fn profiler_attributes_events_and_is_deterministic() {
        let run = || {
            let prof = KernelProfiler::forced();
            let sim = Sim::with_profiler(11, prof.clone());
            let s = sim.clone();
            sim.spawn("worker", async move {
                for i in 0..40u64 {
                    s.sleep(Dur::from_ns(100 + i)).await;
                }
            });
            sim.call_in(Dur::from_us(1), |_| {});
            sim.run().unwrap();
            let snap = prof.snapshot();
            (sim.events_processed(), snap)
        };
        let (events, snap) = run();
        assert_eq!(snap.events(), events, "every dispatch is counted");
        assert!(snap.det.count[0] > 0, "poll events attributed");
        assert!(snap.det.count[2] > 0, "call events attributed");
        // Simulated-time histograms are functions of the event
        // schedule only — byte-identical across runs.
        let (_, snap2) = run();
        assert_eq!(snap.det.to_json(), snap2.det.to_json());
    }

    #[test]
    fn tracer_records_task_lifecycle() {
        let tr = elanib_trace::Tracer::forced(9);
        let sim = Sim::with_tracer(9, tr.clone());
        // Two timers 1 ns apart at 4 µs out: they share a coarse wheel
        // bucket, so dispatching them forces a real (multi-entry)
        // cascade — singleton buckets short-circuit without cascading.
        for d in [Dur::from_us(4), Dur::from_ns(4001)] {
            let s = sim.clone();
            sim.spawn("worker", async move {
                s.sleep(d).await;
            });
        }
        sim.run().unwrap();
        assert_eq!(tr.counter("sim.tasks_spawned"), 2);
        assert_eq!(tr.counter("sim.tasks_completed"), 2);
        assert!(tr.counter("sim.timers") >= 2);
        assert!(tr.counter("sim.events") > 0);
        assert!(tr.counter("wheel.cascades") >= 2);
        // One task-lifetime span per task was recorded.
        assert_eq!(tr.event_count(), 2);
    }

    #[test]
    fn trace_callback_fires() {
        let sim = Sim::new(1);
        let lines = Rc::new(RefCell::new(Vec::new()));
        let l = lines.clone();
        sim.set_tracer(move |t, msg| l.borrow_mut().push(format!("{t} {msg}")));
        let s = sim.clone();
        sim.spawn("tr", async move {
            s.sleep(Dur::from_us(1)).await;
            s.trace(|| "hello".to_string());
        });
        sim.run().unwrap();
        assert_eq!(lines.borrow().len(), 1);
        assert!(lines.borrow()[0].contains("hello"));
    }

    #[test]
    fn slab_recycles_slots_from_sequential_tasks() {
        // 1000 tasks that run strictly one after another reuse a
        // handful of slots instead of growing the slab without bound.
        let sim = Sim::new(1);
        let root = sim.clone();
        sim.spawn("root", async move {
            for i in 0..1000u32 {
                let s = root.clone();
                let flag = crate::sync::Flag::new();
                let f2 = flag.clone();
                root.spawn(format!("w{i}"), async move {
                    s.sleep(Dur::from_ns(5)).await;
                    f2.set();
                });
                flag.wait().await;
            }
        });
        sim.run().unwrap();
        assert!(
            sim.slab_capacity() <= 4,
            "slab grew to {} slots for sequential tasks",
            sim.slab_capacity()
        );
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn stale_wake_for_recycled_slot_is_ignored() {
        // Task A sleeps; we capture its waker via a flag trick, let A
        // finish, spawn B into the recycled slot, then fire A's stale
        // waker: B must not be disturbed (and nothing must panic).
        use crate::sync::Flag;
        let sim = Sim::new(1);
        let polls_b = Rc::new(Cell::new(0u32));

        let a_id = {
            let s = sim.clone();
            sim.spawn("a", async move {
                s.sleep(Dur::from_ns(1)).await;
            })
        };
        sim.run().unwrap();

        let pb = polls_b.clone();
        let gate = Flag::new();
        let g2 = gate.clone();
        let b_id = sim.spawn("b", async move {
            pb.set(pb.get() + 1);
            g2.wait().await;
        });
        // Slot was recycled: same index, different generation.
        assert_eq!(format!("{a_id}"), "t0.0");
        assert_eq!(format!("{b_id}"), "t0.1");
        gate.set();
        sim.run().unwrap();
        assert_eq!(polls_b.get(), 1);
    }

    #[test]
    fn wake_dedup_survives_generation_wraparound() {
        // Regression: with u32 marks, a slot whose generation reached
        // u32::MAX produced mark `gen + 1 == 0` — the not-queued
        // sentinel — so its first wake looked already-queued and was
        // silently dropped (a lost wakeup). The u64 marks can't wrap.
        use std::task::Wake;
        let queue = Arc::new(WakeQueue::default());
        let waker = Arc::new(TaskWaker::new(
            queue.clone(),
            TaskId {
                idx: 0,
                gen: u32::MAX,
            },
        ));
        waker.wake_by_ref();
        assert_eq!(
            queue.state.lock().unwrap().ready.len(),
            1,
            "first wake at gen == u32::MAX must enqueue"
        );
        // A duplicate wake before the drain still dedups.
        waker.wake_by_ref();
        assert_eq!(queue.state.lock().unwrap().ready.len(), 1);
        // And a wake for a different generation of the same slot is
        // not confused with it.
        let other = Arc::new(TaskWaker::new(queue.clone(), TaskId { idx: 0, gen: 0 }));
        other.wake_by_ref();
        assert_eq!(queue.state.lock().unwrap().ready.len(), 2);
    }

    #[test]
    fn duplicate_wakes_at_same_instant_poll_once() {
        // A task woken by several flags set at the same instant is
        // polled once per drain, not once per wake.
        use crate::sync::Flag;
        let sim = Sim::new(1);
        let polls = Rc::new(Cell::new(0u32));
        let flags: Vec<Flag> = (0..4).map(|_| Flag::new()).collect();

        let p = polls.clone();
        let fs = flags.clone();
        let s = sim.clone();
        sim.spawn("multi-wait", async move {
            // Register with every flag by polling a future that waits
            // on all of them at once; each pending flag stores our
            // waker, so setting all four fires four wakes.
            struct WaitAll {
                waits: Vec<crate::sync::FlagWait>,
                polls: Rc<Cell<u32>>,
            }
            impl Future for WaitAll {
                type Output = ();
                fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    let this = self.get_mut();
                    this.polls.set(this.polls.get() + 1);
                    let mut all = true;
                    for w in &mut this.waits {
                        if Pin::new(w).poll(cx).is_pending() {
                            all = false;
                        }
                    }
                    if all {
                        Poll::Ready(())
                    } else {
                        Poll::Pending
                    }
                }
            }
            s.sleep(Dur::from_ns(1)).await;
            WaitAll {
                waits: fs.iter().map(|f| f.wait()).collect(),
                polls: p,
            }
            .await;
        });

        let s2 = sim.clone();
        sim.spawn("setter", async move {
            s2.sleep(Dur::from_ns(10)).await;
            // All four wakes land at the same instant.
            for f in &flags {
                f.set();
            }
        });
        sim.run().unwrap();
        // Initial poll (registers) + exactly one poll after the batch
        // of four simultaneous wakes.
        assert_eq!(polls.get(), 2, "dedup must collapse simultaneous wakes");
    }

    /// A dense little program exercising timers, flags, nested spawns
    /// and call events; returns an order-sensitive checksum plus the
    /// kernel's observable totals.
    fn mixed_program(mode: PayloadMode) -> (SimTime, u64, u64) {
        let sim = Sim::with_payload_mode(7, mode);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..8u64 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(format!("t{i}"), async move {
                s.sleep(Dur::from_ns(10 + i % 3)).await;
                l.borrow_mut().push(i);
                let flag = crate::sync::Flag::new();
                let f2 = flag.clone();
                let s2 = s.clone();
                let l2 = l.clone();
                s.spawn(format!("n{i}"), async move {
                    s2.sleep(Dur::from_ns(i)).await;
                    l2.borrow_mut().push(100 + i);
                    f2.set();
                });
                flag.wait().await;
                s.sleep(Dur::from_us(1)).await;
                l.borrow_mut().push(200 + i);
            });
            let l = log.clone();
            sim.call_in(Dur::from_ns(10 + i), move |_| l.borrow_mut().push(300 + i));
        }
        let end = sim.run().unwrap();
        let checksum = log
            .borrow()
            .iter()
            .fold(0u64, |a, &v| a.wrapping_mul(1099511628211).wrapping_add(v));
        (end, sim.events_processed(), checksum)
    }

    #[test]
    fn legacy_and_tagged_payloads_are_observably_identical() {
        // The direct-dispatch timer path must replay the exact event
        // order (and count) of the waker-detour path it replaced.
        assert_eq!(
            mixed_program(PayloadMode::Tagged),
            mixed_program(PayloadMode::Legacy)
        );
    }

    #[test]
    fn call_slab_recycles_slots() {
        // A long chain of strictly sequential call events reuses one
        // slab slot instead of growing a box per call.
        let sim = Sim::new(1);
        fn chain(sim: &Sim, left: u32, hits: Rc<Cell<u32>>) {
            if left == 0 {
                return;
            }
            sim.call_in(Dur::from_ns(5), move |s| {
                hits.set(hits.get() + 1);
                chain(s, left - 1, hits);
            });
        }
        let hits = Rc::new(Cell::new(0u32));
        chain(&sim, 500, hits.clone());
        sim.run().unwrap();
        assert_eq!(hits.get(), 500);
        assert!(
            sim.k.borrow().calls.len() <= 2,
            "call slab grew to {} slots for sequential calls",
            sim.k.borrow().calls.len()
        );
    }

    #[test]
    fn name_arena_resets_after_last_task_completes() {
        let sim = Sim::new(1);
        for round in 0..3 {
            for i in 0..50u32 {
                let s = sim.clone();
                sim.spawn(format!("round{round}-worker{i}"), async move {
                    s.sleep(Dur::from_ns(i as u64)).await;
                });
            }
            sim.run().unwrap();
            assert_eq!(sim.live_tasks(), 0);
            // All tasks done: the arena must have been reclaimed.
            assert_eq!(sim.k.borrow().names.buf.len(), 0);
        }
        // Names stay resolvable while tasks are live (deadlock report).
        let s = sim.clone();
        sim.spawn("the-stuck-one", async move {
            s.sleep(Dur::from_ns(1)).await;
            std::future::pending::<()>().await;
        });
        match sim.run() {
            Err(SimError::Deadlock { stuck, .. }) => {
                assert_eq!(stuck[0].name, "the-stuck-one");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_until_windows_compose_to_a_full_run() {
        // Drive the same program in 1 µs windows and in one shot; the
        // window hand-off must not reorder anything.
        fn program(sim: &Sim, log: Rc<RefCell<Vec<u64>>>) {
            for i in 0..6u64 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(format!("w{i}"), async move {
                    s.sleep(Dur::from_ns(700 * i)).await;
                    l.borrow_mut().push(i);
                    s.sleep(Dur::from_us(2)).await;
                    l.borrow_mut().push(10 + i);
                });
            }
        }
        let whole = {
            let sim = Sim::new(3);
            let log = Rc::new(RefCell::new(Vec::new()));
            program(&sim, log.clone());
            sim.run().unwrap();
            let out = (log.borrow().clone(), sim.events_processed());
            out
        };
        let windowed = {
            let sim = Sim::new(3);
            let log = Rc::new(RefCell::new(Vec::new()));
            program(&sim, log.clone());
            let mut limit = SimTime::ZERO + Dur::from_us(1);
            let mut rounds = 0;
            while let Some(next) = sim.run_until(limit) {
                assert!(next >= limit, "reported event precedes the window limit");
                limit = next + Dur::from_us(1);
                rounds += 1;
            }
            assert!(rounds >= 2, "expected multiple windows, got {rounds}");
            // Nothing pending: a full run() completes without
            // dispatching anything further.
            let end = sim.run().unwrap();
            assert_eq!(end, sim.now());
            let out = (log.borrow().clone(), sim.events_processed());
            out
        };
        assert_eq!(whole, windowed);
    }

    #[test]
    fn run_until_at_limit_zero_reports_first_event_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn("t", async move {
            s.sleep(Dur::from_ns(40)).await;
        });
        // Limit 0: nothing dispatches, the spawn event stays queued.
        assert_eq!(sim.run_until(SimTime::ZERO), Some(SimTime::ZERO));
        assert_eq!(sim.events_processed(), 0);
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::ZERO + Dur::from_ns(40));
    }

    #[test]
    fn thread_events_accumulates_across_runs() {
        let before = thread_events();
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn("t", async move {
            for _ in 0..10 {
                s.sleep(Dur::from_ns(1)).await;
            }
        });
        sim.run().unwrap();
        let mid = thread_events();
        assert_eq!(mid - before, sim.events_processed());
        // A second run() dispatches nothing new and reports nothing new.
        sim.run().unwrap();
        assert_eq!(thread_events(), mid);
    }
}
