//! Simulated time.
//!
//! The kernel clock counts **picoseconds** in a `u64`, which spans ~213
//! days of simulated time — far beyond any experiment in this repository
//! — while still resolving the sub-nanosecond serialization times of
//! small packets on multi-GB/s links without accumulating rounding
//! error across millions of events.
//!
//! Two newtypes keep instants and durations from being confused:
//! [`SimTime`] is a point on the simulation clock, [`Dur`] is a span.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in picoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Saturating difference between two instants.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
    #[inline]
    pub fn max_t(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    #[inline]
    pub fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }
    #[inline]
    pub fn from_ns(ns: u64) -> Dur {
        Dur(ns * PS_PER_NS)
    }
    #[inline]
    pub fn from_us(us: u64) -> Dur {
        Dur(us * PS_PER_US)
    }
    #[inline]
    pub fn from_ms(ms: u64) -> Dur {
        Dur(ms * PS_PER_MS)
    }
    #[inline]
    pub fn from_secs(s: u64) -> Dur {
        Dur(s * PS_PER_SEC)
    }
    /// Build a duration from a floating-point number of seconds,
    /// rounding to the nearest picosecond. Negative and NaN inputs
    /// clamp to zero (durations are non-negative by construction).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        if s.is_nan() || s <= 0.0 {
            return Dur(0);
        }
        Dur((s * PS_PER_SEC as f64).round() as u64)
    }
    #[inline]
    pub fn from_us_f64(us: f64) -> Dur {
        Dur::from_secs_f64(us * 1e-6)
    }
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Dur {
        Dur::from_secs_f64(ns * 1e-9)
    }
    /// Time to move `bytes` at `bytes_per_sec` — the serialization-delay
    /// helper used throughout the fabric and host models.
    #[inline]
    pub fn transfer(bytes: u64, bytes_per_sec: f64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Scale a duration by a non-negative factor (contention stretch).
    #[inline]
    pub fn scale(self, factor: f64) -> Dur {
        debug_assert!(factor >= 0.0, "negative duration scale");
        Dur((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}
impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, other: SimTime) -> Dur {
        Dur(self
            .0
            .checked_sub(other.0)
            .expect("SimTime subtraction underflow"))
    }
}
impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, o: Dur) -> Dur {
        Dur(self.0 + o.0)
    }
}
impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, o: Dur) {
        self.0 += o.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, o: Dur) -> Dur {
        Dur(self.0.checked_sub(o.0).expect("Dur subtraction underflow"))
    }
}
impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, o: Dur) {
        *self = *self - o;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}
impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ps(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}
impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

/// Human-readable picosecond formatting with an auto-selected unit.
fn fmt_ps(ps: u64) -> String {
    if ps >= PS_PER_SEC {
        format!("{:.6}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Dur::from_us(3).as_ps(), 3 * PS_PER_US);
        assert_eq!(Dur::from_ns(7).as_ps(), 7 * PS_PER_NS);
        assert_eq!(Dur::from_secs(2).as_secs_f64(), 2.0);
        assert!((Dur::from_secs_f64(1.5e-6).as_us_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 MB at 1 GB/s = 1 ms.
        let d = Dur::transfer(1_000_000, 1e9);
        assert_eq!(d.as_ps(), PS_PER_MS);
    }

    #[test]
    fn instant_duration_algebra() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Dur::from_us(5);
        assert_eq!(t1 - t0, Dur::from_us(5));
        assert_eq!(t1.since(t0), Dur::from_us(5));
        // since() saturates instead of panicking.
        assert_eq!(t0.since(t1), Dur::ZERO);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
    }

    #[test]
    fn scale_stretches_duration() {
        assert_eq!(Dur::from_us(10).scale(1.5), Dur::from_us(15));
        assert_eq!(Dur::from_us(10).scale(0.0), Dur::ZERO);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", Dur::from_us(2)), "2.000us");
        assert_eq!(format!("{}", Dur::from_ns(2)), "2.000ns");
        assert_eq!(format!("{}", Dur::from_secs(1)), "1.000000s");
    }
}
