//! # elanib-simcore — deterministic async discrete-event simulation
//!
//! The substrate under the entire InfiniBand / Elan-4 reproduction: a
//! single-threaded, seeded, picosecond-resolution discrete-event kernel
//! whose processes are ordinary Rust `async fn`s.
//!
//! ## Model
//!
//! * [`Sim`] owns the clock, the `(time, seq)`-ordered event heap, the
//!   task slab, and the RNG. [`Sim::run`] drives everything to
//!   completion and reports deadlocks (a suspended task with no pending
//!   event that could wake it) with task names.
//! * Tasks suspend on [`Sim::sleep`], on [`sync::Flag`] /
//!   [`sync::Mailbox`] / [`sync::Semaphore`], or on the bandwidth
//!   resources in [`resources`].
//! * [`resources::FifoChannel`] models exclusively-occupied media
//!   (network links, switch ports); [`resources::PsResource`] models
//!   fair-shared buses (PCI-X, memory) with the fluid processor-sharing
//!   discipline.
//!
//! ## Determinism
//!
//! Same seed + same program ⇒ identical event sequence, identical final
//! clock. This is load-bearing for the reproduction: every figure in
//! the paper is regenerated from simulations that must be re-runnable
//! bit-for-bit.
//!
//! ### Determinism under parallel sweeps
//!
//! The sweep engine (`elanib-core::sweep`) runs *independent* sims on
//! separate OS threads. That never threatens determinism because the
//! parallelism is **across simulations, not within one**: each kernel
//! remains single-threaded, owns all of its state (`Sim` is not even
//! `Send` — a sim is constructed, run, and dropped entirely on one
//! worker thread), and shares nothing with its siblings. A simulation's
//! event sequence is a pure function of its seed and program, so the
//! numbers it produces are identical whether it runs alone, serially
//! after other sims, or concurrently next to them. [`kernel::thread_events`]
//! is the one piece of thread-aware state: a per-thread cumulative
//! event counter that sweep workers sample to report throughput.
//!
//! ```
//! use elanib_simcore::{Sim, Dur};
//!
//! let sim = Sim::new(42);
//! let s = sim.clone();
//! sim.spawn("hello", async move {
//!     s.sleep(Dur::from_us(10)).await;
//!     assert_eq!(s.now().as_us_f64(), 10.0);
//! });
//! sim.run().unwrap();
//! ```

pub mod fxhash;
pub mod kernel;
pub mod profile;
pub mod resources;
pub mod shard;
pub mod sync;
pub mod time;
pub mod wheel;

/// Re-export of the tracing/metrics crate so model crates can name
/// tracer types (`trace::Tracer`, `trace::TraceConfig`) without their
/// own dependency edge; instrumentation reaches the tracer through
/// [`Sim::tracer`](kernel::Sim::tracer).
pub use elanib_trace as trace;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kernel::{
    flight_kind_name, payload_mode, thread_events, DeadlockDiag, Delay, FlightEntry, PayloadMode,
    Sim, SimError, SimOpts, StuckTask, TaskId, FLIGHT_LEN,
};
pub use profile::KernelProfiler;
pub use resources::{ChannelStats, FifoChannel, PsResource};
pub use shard::{
    adaptive_lookahead, des_shards, run_sharded, run_sharded_with, HorizonPlan, Lookahead, Outbox,
    ShardModel, ShardMsg, ShardObs, ShardRunStats,
};
pub use sync::{race2, Flag, Mailbox, Race2, Semaphore};
pub use time::{Dur, SimTime};
pub use wheel::TimerWheel;
