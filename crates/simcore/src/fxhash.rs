//! A small, dependency-free, **deterministic** hasher for hot-path maps.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds SipHash
//! per process. The model layers key their bookkeeping maps by small
//! integers (transfer ids, destination ranks), and none of that
//! bookkeeping may influence event order, so the DoS resistance buys
//! nothing here — while SipHash's per-lookup cost is measurable on the
//! NIC/MPI fast paths (a map probe per posted send/recv). This module
//! provides the FxHash algorithm (the multiply-and-rotate hash rustc
//! itself uses for its interner tables): fixed seed, one multiply per
//! word, identical values on every run and platform with the same
//! word size.
//!
//! Determinism note: swapping hashers changes *iteration* order of a
//! map. The maps converted to [`FxHashMap`] are only ever probed by
//! key (never iterated), so the exhibit CSVs are unaffected — and that
//! was already a requirement, since RandomState iteration order varies
//! per process. The fixed seed additionally makes iteration order
//! reproducible run-to-run, strictly widening the determinism
//! guarantee.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state (`k = phi^-1 * 2^64`, the golden-ratio odd
/// constant used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `state = (state.rotl(5) ^ word) * k`
/// per input word. Not collision-resistant against adversaries — by
/// design; simulation ids are not adversarial.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the buffer, little-endian tail. Keyed
        // maps in this workspace hash fixed-width integers, which hit
        // the dedicated methods below; this path exists for
        // completeness (e.g. tuple or str keys).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// Zero-sized builder: every hasher starts from the same fixed state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed through [`FxHasher`] — drop-in for the default map
/// on paths where the per-probe SipHash cost shows up.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` companion, for symmetry.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn hashes_are_deterministic_across_hasher_instances() {
        // Same value, fresh builders: identical hash — unlike
        // RandomState, where this equality holds only within one
        // builder. This is the property the kernel's determinism
        // story relies on.
        for v in [0u64, 1, 42, u64::MAX, 0x9E3779B97F4A7C15] {
            assert_eq!(hash_of(&v), hash_of(&v));
        }
        assert_eq!(hash_of(&"transfer-chain"), hash_of(&"transfer-chain"));
        assert_eq!(hash_of(&(7usize, 9u64)), hash_of(&(7usize, 9u64)));
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u32> = FxHashMap::default();
            for i in 0..1000u64 {
                m.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i as u32);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "fixed-seed maps iterate identically");
    }

    #[test]
    fn small_integer_keys_spread_across_buckets() {
        // The ids these maps actually see are small sequential
        // integers; the multiply must spread them (no degenerate
        // all-in-one-bucket clustering in the low bits).
        let mut low_bits = FxHashSet::default();
        for i in 0u64..64 {
            low_bits.insert(hash_of(&i) & 63);
        }
        assert!(
            low_bits.len() > 32,
            "sequential keys collapsed to {} of 64 low-bit buckets",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_boundaries_irrelevant() {
        // write() folds any length; tail bytes must still contribute.
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write(b"abcdefgX");
        assert_ne!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"abc");
        let mut d = FxHasher::default();
        d.write(b"abd");
        assert_ne!(c.finish(), d.finish());
    }
}
