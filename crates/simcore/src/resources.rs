//! Shared-bandwidth resources.
//!
//! Two queueing disciplines cover every contended medium in the model:
//!
//! * [`FifoChannel`] — store-and-forward serialization: transfers are
//!   served one at a time in arrival order at a fixed byte rate. Used
//!   for network links and switch output ports, where a packet occupies
//!   the wire exclusively.
//! * [`PsResource`] — egalitarian processor sharing (the fluid model of
//!   a shared bus): all in-flight transfers progress simultaneously at
//!   `rate / n`. Used for the PCI-X bus and the node memory bus, where
//!   hardware interleaves transactions at fine grain.

use std::cell::RefCell;
use std::rc::Rc;

use crate::kernel::Sim;
use crate::sync::Flag;
use crate::time::{Dur, SimTime};

/// FIFO-serialized channel with a fixed service rate and optional
/// per-transfer fixed overhead.
pub struct FifoChannel {
    inner: Rc<RefCell<FifoInner>>,
}

impl Clone for FifoChannel {
    fn clone(&self) -> Self {
        FifoChannel {
            inner: self.inner.clone(),
        }
    }
}

struct FifoInner {
    rate: f64,
    overhead: Dur,
    busy_until: SimTime,
    bytes_total: u64,
    transfers: u64,
    busy_time: Dur,
}

impl FifoChannel {
    /// `rate` in bytes/second; `overhead` charged once per transfer
    /// (header processing, arbitration).
    pub fn new(rate: f64, overhead: Dur) -> FifoChannel {
        assert!(rate > 0.0, "FifoChannel rate must be positive");
        FifoChannel {
            inner: Rc::new(RefCell::new(FifoInner {
                rate,
                overhead,
                busy_until: SimTime::ZERO,
                bytes_total: 0,
                transfers: 0,
                busy_time: Dur::ZERO,
            })),
        }
    }

    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }

    /// Reserve the channel for `bytes` and return the completion time.
    /// The caller should `sim.sleep_until(t)` to model occupancy.
    pub fn reserve(&self, sim: &Sim, bytes: u64) -> SimTime {
        self.reserve_from(sim.now(), bytes)
    }

    /// Like [`FifoChannel::reserve`], but the transfer may not start
    /// before `earliest` (used by multi-hop pipelines where the data
    /// head arrives at this channel at a known future instant).
    pub fn reserve_from(&self, earliest: SimTime, bytes: u64) -> SimTime {
        let mut i = self.inner.borrow_mut();
        let start = earliest.max_t(i.busy_until);
        let service = i.overhead + Dur::transfer(bytes, i.rate);
        let done = start + service;
        i.busy_until = done;
        i.bytes_total += bytes;
        i.transfers += 1;
        i.busy_time += service;
        done
    }

    /// Transfer `bytes` through the channel, completing when the last
    /// byte has been serviced.
    pub async fn transfer(&self, sim: &Sim, bytes: u64) {
        let done = self.reserve(sim, bytes);
        sim.sleep_until(done).await;
    }

    /// Earliest time a new transfer could start.
    pub fn next_free(&self) -> SimTime {
        self.inner.borrow().busy_until
    }

    pub fn stats(&self) -> ChannelStats {
        let i = self.inner.borrow();
        ChannelStats {
            bytes_total: i.bytes_total,
            transfers: i.transfers,
            busy_time: i.busy_time,
        }
    }
}

/// Cumulative activity counters for a channel or PS resource.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelStats {
    pub bytes_total: u64,
    pub transfers: u64,
    pub busy_time: Dur,
}

/// Egalitarian processor-sharing resource (fluid bus model).
///
/// `n` concurrent transfers each progress at `rate / n`; arrivals and
/// departures trigger an event-driven reschedule of the next completion.
pub struct PsResource {
    inner: Rc<RefCell<PsInner>>,
}

impl Clone for PsResource {
    fn clone(&self) -> Self {
        PsResource {
            inner: self.inner.clone(),
        }
    }
}

struct PsInner {
    rate: f64,
    jobs: Vec<PsJob>,
    last_update: SimTime,
    gen: u64,
    bytes_total: u64,
    transfers: u64,
    busy_time: Dur,
    /// Reusable completion buffer: finished jobs' flags are collected
    /// here under the borrow, then set after it is released. Kept on
    /// the resource so the (very hot) completion event allocates
    /// nothing in steady state.
    finished_scratch: Vec<Flag>,
}

struct PsJob {
    remaining: f64,
    done: Flag,
}

/// Residual byte counts below this are treated as complete; guards
/// against picosecond-rounding residue in the fluid model.
const EPS_BYTES: f64 = 1e-6;

impl PsResource {
    /// `rate` in bytes/second shared across all in-flight transfers.
    pub fn new(rate: f64) -> PsResource {
        assert!(rate > 0.0, "PsResource rate must be positive");
        PsResource {
            inner: Rc::new(RefCell::new(PsInner {
                rate,
                jobs: Vec::new(),
                last_update: SimTime::ZERO,
                gen: 0,
                finished_scratch: Vec::new(),
                bytes_total: 0,
                transfers: 0,
                busy_time: Dur::ZERO,
            })),
        }
    }

    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }

    /// Number of transfers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.borrow().jobs.len()
    }

    pub fn stats(&self) -> ChannelStats {
        let i = self.inner.borrow();
        ChannelStats {
            bytes_total: i.bytes_total,
            transfers: i.transfers,
            busy_time: i.busy_time,
        }
    }

    /// Begin moving `bytes` through the shared resource **now** and
    /// return a [`Flag`] that is set when this transfer's share of the
    /// fluid has drained. Unlike [`PsResource::transfer`], the job is
    /// registered immediately rather than on first poll — use this to
    /// start several transfers concurrently from one task.
    pub fn start(&self, sim: &Sim, bytes: u64) -> Flag {
        let flag = Flag::new();
        self.start_into(sim, bytes, flag.clone());
        flag
    }

    /// Like [`PsResource::start`], but completes into a caller-supplied
    /// flag (useful when the completion target exists before the
    /// transfer can begin).
    pub fn start_into(&self, sim: &Sim, bytes: u64, flag: Flag) {
        if bytes == 0 {
            flag.set();
            return;
        }
        {
            let mut i = self.inner.borrow_mut();
            i.settle(sim.now());
            i.bytes_total += bytes;
            i.transfers += 1;
            i.jobs.push(PsJob {
                remaining: bytes as f64,
                done: flag,
            });
        }
        self.reschedule(sim);
    }

    /// Move `bytes` through the shared resource; resolves when this
    /// transfer's share of the fluid has drained.
    pub async fn transfer(&self, sim: &Sim, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let flag = {
            let mut i = self.inner.borrow_mut();
            i.settle(sim.now());
            i.bytes_total += bytes;
            i.transfers += 1;
            let flag = Flag::new();
            i.jobs.push(PsJob {
                remaining: bytes as f64,
                done: flag.clone(),
            });
            flag
        };
        self.reschedule(sim);
        flag.wait().await;
    }

    /// Recompute the next completion event. Called after any change to
    /// the job population; the generation counter invalidates events
    /// scheduled for superseded configurations.
    fn reschedule(&self, sim: &Sim) {
        let (gen, next_at) = {
            let mut i = self.inner.borrow_mut();
            i.gen += 1;
            let gen = i.gen;
            let n = i.jobs.len();
            if n == 0 {
                return;
            }
            let min_rem = i
                .jobs
                .iter()
                .map(|j| j.remaining)
                .fold(f64::INFINITY, f64::min);
            // Each job gets rate/n, so the soonest finisher completes in
            // min_rem / (rate / n). Round *up* by one picosecond so the
            // completion event always makes progress past `now`.
            let secs = min_rem * n as f64 / i.rate;
            let dur = Dur::from_ps((secs * 1e12).ceil().max(1.0) as u64);
            (gen, sim.now() + dur)
        };
        let this = self.clone();
        sim.call_at(next_at, move |sim| {
            this.on_completion_event(sim, gen);
        });
    }

    fn on_completion_event(&self, sim: &Sim, gen: u64) {
        let mut finished: Vec<Flag> = {
            let mut i = self.inner.borrow_mut();
            if i.gen != gen {
                return; // superseded by a later arrival/departure
            }
            i.settle(sim.now());
            let mut finished = std::mem::take(&mut i.finished_scratch);
            i.jobs.retain_mut(|j| {
                if j.remaining <= EPS_BYTES {
                    finished.push(j.done.clone());
                    false
                } else {
                    true
                }
            });
            finished
        };
        let any_finished = !finished.is_empty();
        // Setting a flag only enqueues wakes (nothing polls inside),
        // so the borrow may be safely re-taken to park the buffer.
        for f in finished.drain(..) {
            f.set();
        }
        self.inner.borrow_mut().finished_scratch = finished;
        // Remaining jobs now share the bandwidth among fewer peers.
        if any_finished || self.in_flight() > 0 {
            self.reschedule(sim);
        }
    }
}

impl PsInner {
    /// Advance the fluid state from `last_update` to `now`.
    fn settle(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_update);
        self.last_update = now;
        let n = self.jobs.len();
        if n == 0 || elapsed.is_zero() {
            return;
        }
        self.busy_time += elapsed;
        let progress = elapsed.as_secs_f64() * self.rate / n as f64;
        for j in &mut self.jobs {
            j.remaining = (j.remaining - progress).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    const MB: u64 = 1_000_000;

    #[test]
    fn fifo_single_transfer_time() {
        let sim = Sim::new(1);
        let ch = FifoChannel::new(1e9, Dur::ZERO); // 1 GB/s
        let s = sim.clone();
        sim.spawn("t", async move {
            ch.transfer(&s, MB).await;
            assert_eq!(s.now().as_us_f64(), 1000.0); // 1 ms
        });
        sim.run().unwrap();
    }

    #[test]
    fn fifo_serializes_back_to_back() {
        let sim = Sim::new(1);
        let ch = FifoChannel::new(1e9, Dur::from_us(1));
        let done = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let (c, s, d) = (ch.clone(), sim.clone(), done.clone());
            sim.spawn(format!("t{i}"), async move {
                c.transfer(&s, MB).await;
                d.borrow_mut().push((i, s.now().as_us_f64()));
            });
        }
        sim.run().unwrap();
        let d = done.borrow();
        // Each transfer: 1 us overhead + 1000 us wire, strictly serialized.
        assert_eq!(d[0], (0, 1001.0));
        assert_eq!(d[1], (1, 2002.0));
        assert_eq!(d[2], (2, 3003.0));
    }

    #[test]
    fn fifo_idle_gap_resets_start_time() {
        let sim = Sim::new(1);
        let ch = FifoChannel::new(1e9, Dur::ZERO);
        let s = sim.clone();
        sim.spawn("t", async move {
            ch.transfer(&s, MB).await; // done at 1 ms
            s.sleep(Dur::from_ms(5)).await; // idle gap
            ch.transfer(&s, MB).await;
            assert_eq!(s.now().as_us_f64(), 7000.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn ps_single_job_runs_at_full_rate() {
        let sim = Sim::new(1);
        let ps = PsResource::new(1e9);
        let s = sim.clone();
        sim.spawn("t", async move {
            ps.transfer(&s, MB).await;
            assert!((s.now().as_us_f64() - 1000.0).abs() < 0.01);
        });
        sim.run().unwrap();
    }

    #[test]
    fn ps_two_equal_jobs_halve_rate() {
        let sim = Sim::new(1);
        let ps = PsResource::new(1e9);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let (p, s, e) = (ps.clone(), sim.clone(), ends.clone());
            sim.spawn(format!("t{i}"), async move {
                p.transfer(&s, MB).await;
                e.borrow_mut().push(s.now().as_us_f64());
            });
        }
        sim.run().unwrap();
        // Both share 1 GB/s, so both finish at ~2 ms.
        for t in ends.borrow().iter() {
            assert!((t - 2000.0).abs() < 0.01, "finish at {t}");
        }
    }

    #[test]
    fn ps_late_arrival_slows_first_job() {
        let sim = Sim::new(1);
        let ps = PsResource::new(1e9);
        let t1 = Rc::new(Cell::new(0.0));
        let t2 = Rc::new(Cell::new(0.0));
        let (p1, s1, r1) = (ps.clone(), sim.clone(), t1.clone());
        sim.spawn("first", async move {
            p1.transfer(&s1, 2 * MB).await;
            r1.set(s1.now().as_us_f64());
        });
        let (s2, r2) = (sim.clone(), t2.clone());
        sim.spawn("second", async move {
            s2.sleep(Dur::from_ms(1)).await;
            ps.transfer(&s2, MB).await;
            r2.set(s2.now().as_us_f64());
        });
        sim.run().unwrap();
        // First job: 1 MB alone in [0,1ms], then shares. Remaining 1 MB
        // at 0.5 GB/s for both => both finish at 3 ms.
        assert!((t1.get() - 3000.0).abs() < 0.01, "t1={}", t1.get());
        assert!((t2.get() - 3000.0).abs() < 0.01, "t2={}", t2.get());
    }

    #[test]
    fn ps_zero_bytes_completes_instantly() {
        let sim = Sim::new(1);
        let ps = PsResource::new(1e9);
        let s = sim.clone();
        sim.spawn("t", async move {
            ps.transfer(&s, 0).await;
            assert_eq!(s.now().as_ps(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn ps_conserves_total_throughput() {
        // N staggered jobs with random sizes: sum of bytes / makespan
        // must not exceed the configured rate, and the resource must
        // drain fully (all tasks complete, no deadlock).
        let sim = Sim::new(7);
        let ps = PsResource::new(2e9);
        let mut total = 0u64;
        for i in 0..16 {
            let bytes = 100_000 + 37_123 * i;
            total += bytes;
            let (p, s) = (ps.clone(), sim.clone());
            sim.spawn(format!("t{i}"), async move {
                s.sleep(Dur::from_us(13 * i)).await;
                p.transfer(&s, bytes).await;
            });
        }
        let end = sim.run().unwrap();
        let min_time = total as f64 / 2e9;
        assert!(
            end.as_secs_f64() >= min_time,
            "finished faster than the wire allows"
        );
        let st = ps.stats();
        assert_eq!(st.bytes_total, total);
        assert_eq!(st.transfers, 16);
    }
}
