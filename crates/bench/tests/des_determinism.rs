//! Regression test for the determinism contract of sharded regeneration
//! (`ELANIB_DES_SHARDS`): every committed table must be byte-identical
//! whether the exhibit sweeps run serially or statically placed across
//! shard workers.
//!
//! This is the sweep-level half of the parallel-DES story (deterministic
//! static round-robin placement of independent simulations); the
//! in-one-sim conservative engine is covered by the `simcore::shard`
//! and `fabric::partition` test suites. Grids are reduced so the test
//! stays fast in debug builds, but they still cross both networks,
//! both PPN shapes and the fault-injection path.

use elanib_apps::md::{ljs, MdProblem};
use elanib_apps::nascg::{class_a_reduced, CgProblem};
use elanib_bench::{cg_figure_table, faults_latency_table, faults_outage_table, md_figure_table};

#[test]
fn sharded_regeneration_is_byte_identical_to_serial() {
    // Two *live* regenerations per exhibit: the point cache must not
    // turn the sharded pass into a replay of the serial one.
    elanib_core::simcache::set_override(Some(elanib_core::simcache::Mode::Off));

    let md = MdProblem { steps: 4, ..ljs() };
    let md_nodes = [1usize, 2, 4, 8];
    let cg = CgProblem {
        outer: 2,
        inner: 4,
        ..class_a_reduced(1024)
    };
    let cg_procs = [1usize, 2, 4, 8];

    // One test function, sequential phases: the env var is process
    // local and nothing else in this binary reads it concurrently.
    std::env::remove_var("ELANIB_DES_SHARDS");
    let (fig2_serial, s2) = md_figure_table(md, &md_nodes);
    let (fig6_serial, s6) = cg_figure_table(cg, &cg_procs, 1);
    let (flat_serial, _) = faults_latency_table();
    let (fout_serial, _) = faults_outage_table();
    assert_eq!(s2.shards, None);
    assert_eq!(s6.shards, None);

    for shards in [2usize, 4] {
        std::env::set_var("ELANIB_DES_SHARDS", shards.to_string());
        let (fig2, p2) = md_figure_table(md, &md_nodes);
        let (fig6, p6) = cg_figure_table(cg, &cg_procs, 1);
        let (flat, _) = faults_latency_table();
        let (fout, _) = faults_outage_table();
        std::env::remove_var("ELANIB_DES_SHARDS");

        assert_eq!(p2.shards, Some(shards));
        assert_eq!(p6.shards, Some(shards));
        assert_eq!(
            fig2_serial.to_csv(),
            fig2.to_csv(),
            "fig2 must be byte-identical serial vs {shards} shards"
        );
        assert_eq!(
            fig6_serial.to_csv(),
            fig6.to_csv(),
            "fig6 must be byte-identical serial vs {shards} shards"
        );
        assert_eq!(
            flat_serial.to_csv(),
            flat.to_csv(),
            "fault latency table must be byte-identical serial vs {shards} shards"
        );
        assert_eq!(
            fout_serial.to_csv(),
            fout.to_csv(),
            "fault outage table must be byte-identical serial vs {shards} shards"
        );
        // Same simulations ran in both modes: identical totals.
        assert_eq!(s2.jobs, p2.jobs);
        assert_eq!(s2.events, p2.events);
        assert_eq!(s6.jobs, p6.jobs);
        assert_eq!(s6.events, p6.events);
    }
    elanib_core::simcache::set_override(None);
}
