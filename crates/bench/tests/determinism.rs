//! Regression test for the determinism contract of the parallel sweep
//! engine: regenerating the Figure 2 study serially and through the
//! thread pool must produce byte-identical CSV tables.
//!
//! The study grid, seeds (`JobSpec::seed = 21` per job) and fold logic
//! are exactly those of the `fig2` regenerator; only the measured step
//! count is reduced so the test stays fast in debug builds. Node
//! counts still span 1..32 so the 2- and 3-D decompositions, both
//! networks and both PPNs are all exercised.

use elanib_apps::md::{ljs, MdProblem};
use elanib_bench::md_figure_table;

#[test]
fn fig2_study_serial_vs_sweep_engine_identical_csv() {
    let problem = MdProblem { steps: 6, ..ljs() };
    let nodes = [1usize, 2, 4, 8, 16, 32];

    // This test compares two *live* regenerations of the same grid, so
    // the point cache must not turn the second one into a replay (a
    // memo hit runs no simulation and would zero its event count).
    elanib_core::simcache::set_override(Some(elanib_core::simcache::Mode::Off));

    // One test function, sequential phases: the env var is process
    // local and nothing else in this binary reads it concurrently.
    std::env::set_var("ELANIB_SWEEP_THREADS", "1");
    let (serial, serial_stats) = md_figure_table(problem, &nodes);
    assert_eq!(serial_stats.threads, 1);

    std::env::set_var("ELANIB_SWEEP_THREADS", "4");
    let (parallel, parallel_stats) = md_figure_table(problem, &nodes);
    std::env::remove_var("ELANIB_SWEEP_THREADS");
    assert_eq!(parallel_stats.threads, 4);

    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "sweep engine must reproduce the serial fig2 table byte for byte"
    );
    // Same simulations ran in both modes: identical total event count.
    assert_eq!(serial_stats.jobs, parallel_stats.jobs);
    assert_eq!(serial_stats.events, parallel_stats.events);
    elanib_core::simcache::set_override(None);
}
