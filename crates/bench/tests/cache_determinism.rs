//! The point cache's acceptance contract: the fig2/fig3 tables must be
//! **byte-identical** whether the cache is disabled, cold, or warm —
//! a hit must be indistinguishable from a fresh simulation.
//!
//! One process walks the three modes over the same reduced grids:
//!
//! 1. `Off` — every point simulates (the pre-cache baseline bytes);
//! 2. `Disk` against an empty directory — cold: every point misses,
//!    simulates, and is stored (memo + disk entry);
//! 3. `Disk` against the now-populated directory with the memo tier
//!    cleared — warm from disk: every point is answered by decode;
//! 4. memo-warm — same mode without clearing: every point is answered
//!    by the in-run memo table.
//!
//! Cache counters are sampled around each phase, so the test also
//! pins *where* each phase's answers came from, not just that the
//! bytes agree.

use elanib_apps::md::{ljs, membrane, MdProblem};
use elanib_bench::md_figure_table;
use elanib_core::simcache::{self, Mode};

fn tables() -> (String, String) {
    let nodes = [1usize, 2, 4];
    let fig2 = MdProblem { steps: 4, ..ljs() };
    let fig3 = MdProblem {
        steps: 4,
        ..membrane()
    };
    let (t2, _) = md_figure_table(fig2, &nodes);
    let (t3, _) = md_figure_table(fig3, &nodes);
    (t2.to_csv(), t3.to_csv())
}

#[test]
fn fig2_fig3_identical_across_disabled_cold_and_warm_cache() {
    // 24 points: 2 figures × 4 series × 3 node counts, all distinct.
    let points = 24;
    let dir = std::env::temp_dir().join(format!("elanib-cache-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    simcache::set_override(Some(Mode::Off));
    let baseline = tables();

    simcache::set_override(Some(Mode::Disk(dir.clone())));
    let before = simcache::stats();
    let cold = tables();
    let d = simcache::stats().delta_since(before);
    assert_eq!(
        (d.hits, d.misses, d.stores),
        (0, points, points),
        "cold run must simulate and store every distinct point"
    );
    let entries = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries, points as usize, "one disk entry per point");

    simcache::clear_memo();
    let before = simcache::stats();
    let disk_warm = tables();
    let d = simcache::stats().delta_since(before);
    assert_eq!(
        (d.hits, d.misses),
        (points, 0),
        "with the memo cleared, every point must come off disk"
    );

    let before = simcache::stats();
    let memo_warm = tables();
    let d = simcache::stats().delta_since(before);
    assert_eq!(
        (d.hits, d.misses),
        (points, 0),
        "a second in-process run must be answered by the memo tier"
    );

    simcache::set_override(None);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(baseline, cold, "cold cache must not change a byte");
    assert_eq!(baseline, disk_warm, "disk hits must not change a byte");
    assert_eq!(baseline, memo_warm, "memo hits must not change a byte");
}
