//! Paper-conformance acceptance tests: the committed `results/` must
//! satisfy every expectation file with full exhibit coverage, and a
//! mutated CSV must flip the run (library outcome *and* binary exit
//! code) to failure with the violated terms named — all of them, not
//! just the first.

use std::path::{Path, PathBuf};

use elanib_bench::conformance::{run, ConformanceOptions};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn options(results: PathBuf) -> ConformanceOptions {
    ConformanceOptions::new(repo_root().join("expectations"), results)
}

/// Copy every committed CSV into a scratch results dir.
fn scratch_results(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elanib-conformance-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(repo_root().join("results")).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "csv") {
            std::fs::copy(&p, dir.join(p.file_name().unwrap())).unwrap();
        }
    }
    dir
}

#[test]
fn committed_results_conform_with_full_coverage() {
    let outcome = run(&options(repo_root().join("results"))).unwrap();
    assert!(
        outcome.report.ok(),
        "committed results violate expectations:\n{}",
        outcome.render_text()
    );
    assert!(
        outcome.uncovered.is_empty(),
        "exhibits without expectation files: {:?}",
        outcome.uncovered
    );
    assert!(
        outcome.unknown_exhibits.is_empty(),
        "expectation files naming unknown exhibits: {:?}",
        outcome.unknown_exhibits
    );
    assert!(outcome.ok());
    // Every exhibit in the inventory is claimed by exactly one file.
    assert_eq!(outcome.report.files.len(), elanib_core::EXHIBITS.len());
}

#[test]
fn mutated_csvs_flip_to_failure_listing_every_violation() {
    let dir = scratch_results("mutated");
    // Mutation 1: make InfiniBand win small-message latency (swap the
    // two series in fig1a) — breaks the headline 2x claim.
    let fig1a = dir.join("fig1a_latency.csv");
    let text = std::fs::read_to_string(&fig1a).unwrap();
    let swapped: String = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                let c: Vec<&str> = l.split(',').collect();
                format!("{},{},{}", c[0], c[2], c[1])
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&fig1a, swapped + "\n").unwrap();
    // Mutation 2: flatten the Figure 6 CG dive in an *unrelated* file,
    // to prove the run reports both and doesn't stop at the first.
    let fig6 = dir.join("fig6_nascg.csv");
    let text = std::fs::read_to_string(&fig6).unwrap();
    std::fs::write(
        &fig6,
        text.replace("2,227.1,239.8,53.4,56.4", "2,400.0,410.0,94.1,96.4"),
    )
    .unwrap();

    let outcome = run(&options(dir.clone())).unwrap();
    assert!(!outcome.ok());
    let text = outcome.render_text();
    let failing_files: Vec<&str> = outcome
        .report
        .files
        .iter()
        .filter(|f| !f.ok())
        .map(|f| f.source.as_str())
        .collect();
    assert!(
        failing_files.contains(&"fig1a.toml") && failing_files.contains(&"fig6.toml"),
        "both mutated exhibits must be reported, got {failing_files:?}\n{text}"
    );
    // The violated terms are named with their claims.
    assert!(text.contains("VIOLATED fig1a.toml"), "{text}");
    assert!(text.contains("VIOLATED fig6.toml"), "{text}");
    assert!(
        text.contains("`Elan us` beats `IB us`"),
        "violation must state the broken claim\n{text}"
    );
    // And the machine-readable report agrees.
    let json = outcome.to_json();
    assert!(json.contains("\"pass\": false"), "{json}");
    assert!(json.contains("\"ok\": false"), "{json}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn conformance_binary_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_conformance");
    let root = repo_root();
    // Against the committed results: exit 0.
    let ok = std::process::Command::new(bin)
        .current_dir(&root)
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "conformance failed on committed results:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );
    // Against a mutated fixture: exit 1 and the violated term is named
    // on stdout.
    let dir = scratch_results("binexit");
    let fig4 = dir.join("fig4_sweep3d.csv");
    let text = std::fs::read_to_string(&fig4).unwrap();
    // Kill the superlinear anomaly: IB eff at 4 procs drops below 100.
    std::fs::write(
        &fig4,
        text.replace("4,52.5,52.0,116.8,118.1", "4,52.5,52.0,96.8,118.1"),
    )
    .unwrap();
    let bad = std::process::Command::new(bin)
        .current_dir(&root)
        .args(["--results", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("VIOLATED fig4.toml"), "{stdout}");
    assert!(stdout.contains("NOT CONFORMANT"), "{stdout}");
    // Missing expectations dir: setup error, exit 2.
    let missing = std::process::Command::new(bin)
        .current_dir(&root)
        .args(["--expectations", "/nonexistent-expectations"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn missing_results_file_is_reported_per_term() {
    let dir = scratch_results("missing");
    std::fs::remove_file(dir.join("fig5_sweep_inputs.csv")).unwrap();
    let outcome = run(&options(dir.clone())).unwrap();
    assert!(!outcome.ok());
    let f = outcome
        .report
        .files
        .iter()
        .find(|f| f.source == "fig5.toml")
        .unwrap();
    assert_eq!(f.failed(), f.terms.len(), "every fig5 term should fail");
    assert!(
        f.terms[0].violations[0].message.contains("cannot read"),
        "{}",
        f.terms[0].violations[0].message
    );
    let _ = std::fs::remove_dir_all(dir);
}
