//! Regression test for the observability contract: turning on the
//! kernel profiler (`ELANIB_PROFILE`) and the tracer must not change a
//! single byte of any committed exhibit, at any shard count.
//!
//! The profiler reads wall clocks and the tracer records events, but
//! both are strictly out-of-band: simulated time, event order and
//! every CSV cell must be identical with them on or off. This is the
//! load-bearing guarantee behind "zero-cost-when-off *and*
//! distortion-free-when-on" — without it, profiled runs could not be
//! trusted to describe the untraced runs they stand in for.

use elanib_apps::md::{ljs, MdProblem};
use elanib_apps::nascg::{class_a_reduced, CgProblem};
use elanib_bench::{cg_figure_table, faults_latency_table, faults_outage_table, md_figure_table};
use elanib_simcore::trace;

struct Tables {
    fig2: String,
    fig6: String,
    flat: String,
    fout: String,
}

fn regenerate(shards: Option<usize>) -> Tables {
    match shards {
        Some(n) => std::env::set_var("ELANIB_DES_SHARDS", n.to_string()),
        None => std::env::remove_var("ELANIB_DES_SHARDS"),
    }
    let md = MdProblem { steps: 4, ..ljs() };
    let cg = CgProblem {
        outer: 2,
        inner: 4,
        ..class_a_reduced(1024)
    };
    let (fig2, stats) = md_figure_table(md, &[1usize, 2, 4, 8]);
    assert_eq!(stats.shards, shards);
    let (fig6, _) = cg_figure_table(cg, &[1usize, 2, 4, 8], 1);
    let (flat, _) = faults_latency_table();
    let (fout, _) = faults_outage_table();
    std::env::remove_var("ELANIB_DES_SHARDS");
    Tables {
        fig2: fig2.to_csv(),
        fig6: fig6.to_csv(),
        flat: flat.to_csv(),
        fout: fout.to_csv(),
    }
}

#[test]
fn profiled_and_traced_runs_are_byte_identical_to_untraced() {
    // Live regenerations on both sides — a cache hit would compare a
    // replay against itself and prove nothing.
    elanib_core::simcache::set_override(Some(elanib_core::simcache::Mode::Off));

    // Baseline: untraced, unprofiled.
    trace::set_override(Some(trace::TraceConfig::default()));
    elanib_simcore::profile::set_override(Some(false));
    let base: Vec<Tables> = [None, Some(2), Some(4)]
        .into_iter()
        .map(regenerate)
        .collect();

    // Tracer + profiler fully on. Nothing flushes here (no `emit`
    // call), so this only exercises the in-sim recording paths.
    trace::set_override(Some(trace::TraceConfig::all()));
    elanib_simcore::profile::set_override(Some(true));
    for (i, shards) in [None, Some(2usize), Some(4)].into_iter().enumerate() {
        let t = regenerate(shards);
        let label = shards.map_or("serial".to_string(), |n| format!("{n} shards"));
        assert_eq!(
            base[i].fig2, t.fig2,
            "fig2 changed under profiling+tracing ({label})"
        );
        assert_eq!(
            base[i].fig6, t.fig6,
            "fig6 changed under profiling+tracing ({label})"
        );
        assert_eq!(
            base[i].flat, t.flat,
            "fault latency table changed under profiling+tracing ({label})"
        );
        assert_eq!(
            base[i].fout, t.fout,
            "fault outage table changed under profiling+tracing ({label})"
        );
    }
    // Profiling must actually have happened — the identity above is
    // vacuous if the override never reached the kernel.
    let collected = elanib_simcore::profile::take();
    assert!(collected.events() > 0, "profiler saw no events");

    elanib_simcore::profile::set_override(None);
    trace::set_override(None);
    elanib_core::simcache::set_override(None);
}
