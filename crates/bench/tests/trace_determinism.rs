//! Regression tests for the tracing layer's two core promises:
//!
//! 1. **Observation must not perturb the experiment.** Rebuilding the
//!    Figure 2 study with full tracing forced on must produce a CSV
//!    table byte-identical to the untraced build — the tracer only
//!    reads simulated time, never advances it.
//! 2. **The sinks must be loadable.** The Chrome `trace_event` export
//!    of the traced run has to parse as JSON (checked with a small
//!    recursive-descent validator — no serde in this workspace) with
//!    monotone timestamps within each process, and the metrics CSV has
//!    to carry the headline counters EXPERIMENTS.md documents.
//!
//! Tracing is driven through `set_override` rather than `ELANIB_TRACE`
//! because the env configuration is cached per process.

use elanib_apps::md::{ljs, MdProblem};
use elanib_bench::md_figure_table;
use elanib_simcore::trace::{self, TraceConfig};

/// Skip whitespace.
fn ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

/// Consume one JSON string (opening quote already checked).
fn string(b: &[u8], i: &mut usize) -> bool {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return true;
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    false
}

/// Consume one JSON value; returns false on malformed input.
fn value(b: &[u8], i: &mut usize) -> bool {
    ws(b, i);
    if *i >= b.len() {
        return false;
    }
    match b[*i] {
        b'"' => string(b, i),
        b'{' => {
            *i += 1;
            ws(b, i);
            if *i < b.len() && b[*i] == b'}' {
                *i += 1;
                return true;
            }
            loop {
                ws(b, i);
                if *i >= b.len() || b[*i] != b'"' || !string(b, i) {
                    return false;
                }
                ws(b, i);
                if *i >= b.len() || b[*i] != b':' {
                    return false;
                }
                *i += 1;
                if !value(b, i) {
                    return false;
                }
                ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        b'[' => {
            *i += 1;
            ws(b, i);
            if *i < b.len() && b[*i] == b']' {
                *i += 1;
                return true;
            }
            loop {
                if !value(b, i) {
                    return false;
                }
                ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        b't' => eat(b, i, b"true"),
        b'f' => eat(b, i, b"false"),
        b'n' => eat(b, i, b"null"),
        b'-' | b'0'..=b'9' => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .is_some()
        }
        _ => false,
    }
}

fn eat(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        true
    } else {
        false
    }
}

/// True iff `s` is exactly one well-formed JSON value.
fn json_is_valid(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if !value(b, &mut i) {
        return false;
    }
    ws(b, &mut i);
    i == b.len()
}

/// Pull a `"key":<number>` field out of one event line, if present.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn fig2_csv_identical_traced_vs_untraced_and_sinks_are_loadable() {
    let problem = MdProblem { steps: 4, ..ljs() };
    let nodes = [1usize, 2, 4];

    // Both phases must actually simulate: with the point cache live,
    // phase 2 would replay phase 1's memoized grid and record no
    // traces at all.
    elanib_core::simcache::set_override(Some(elanib_core::simcache::Mode::Off));

    // Phase 1: tracing forced OFF (an explicit disabled override, so a
    // stray ELANIB_TRACE in the environment can't flip this phase).
    trace::set_override(Some(TraceConfig::default()));
    let (plain, _) = md_figure_table(problem, &nodes);

    // Phase 2: both sinks forced ON, flushing into a scratch dir.
    let dir = std::env::temp_dir().join("elanib-trace-determinism-test");
    let _ = std::fs::remove_dir_all(&dir);
    trace::set_override(Some(TraceConfig {
        dir: Some(dir.clone()),
        ..TraceConfig::all()
    }));
    let (traced, _) = md_figure_table(problem, &nodes);
    let files = trace::flush("fig2_traced").expect("traced run must collect traces");
    trace::set_override(None);

    assert_eq!(
        plain.to_csv(),
        traced.to_csv(),
        "tracing must not perturb the fig2 study by a single byte"
    );

    // Chrome export: valid JSON, timestamps monotone within each pid.
    let tj = files.trace_json.expect("events were recorded");
    let text = std::fs::read_to_string(&tj).unwrap();
    assert!(json_is_valid(&text), "chrome trace must parse as JSON");
    let mut last_ts: std::collections::HashMap<u64, f64> = Default::default();
    let mut seen = 0usize;
    for line in text.lines() {
        let (Some(ts), Some(pid)) = (num_field(line, "ts"), num_field(line, "pid")) else {
            continue; // '[' / ']' / "M" metadata records carry no ts
        };
        let prev = last_ts.entry(pid as u64).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "timestamps must be monotone within pid {pid}: {ts} after {prev}"
        );
        *prev = ts;
        seen += 1;
    }
    assert!(
        seen > 100,
        "expected a real event stream, got {seen} events"
    );

    // Metrics summary: the headline counters of the acceptance surface.
    let mc = files.metrics_csv.expect("metrics were recorded");
    let csv = std::fs::read_to_string(&mc).unwrap();
    for needle in [
        "regcache.hits",
        "regcache.misses",
        "fabric.link",
        "mpi.unexpected_depth",
        "world.unexpected",
        "coll.count",
    ] {
        assert!(
            csv.contains(needle),
            "metrics csv must mention {needle}:\n{csv}"
        );
    }

    elanib_core::simcache::set_override(None);
    let _ = std::fs::remove_dir_all(&dir);
}
