//! Acceptance contract of the fault-injection exhibit:
//!
//! 1. The faults tables are **byte-identical** serial vs through the
//!    sweep engine (every fault draw is a pure function of plan seed,
//!    channel, and packet sequence — no engine or thread state leaks
//!    in).
//! 2. They are byte-identical with the cache disabled, cold, and warm
//!    (hits must be indistinguishable from fresh simulation).
//! 3. InfiniBand degrades qualitatively faster than Elan-4 under the
//!    same plan — the point of the whole exhibit.
//! 4. Harness self-healing: a sweep with one panicking point and one
//!    corrupt disk-cache entry still completes every other point and
//!    reports both failures.
//!
//! One test function per contract, but a single `#[test]` for the
//! cache walk (like `cache_determinism.rs`) since mode overrides are
//! process-global.

use std::sync::Mutex;

use elanib_bench::{faults_latency_table, faults_outage_table};
use elanib_core::simcache::{self, Mode};

/// The cache-mode override and `ELANIB_SWEEP_THREADS` are
/// process-global; tests in this binary run concurrently by default,
/// so every test serializes on this.
static LOCK: Mutex<()> = Mutex::new(());

fn tables() -> (String, String) {
    let (lat, _) = faults_latency_table();
    let (out, _) = faults_outage_table();
    (lat.to_csv(), out.to_csv())
}

#[test]
fn fault_tables_identical_serial_vs_parallel_and_across_cache_modes() {
    let _g = LOCK.lock().unwrap();
    simcache::set_override(Some(Mode::Off));
    std::env::set_var("ELANIB_SWEEP_THREADS", "1");
    let serial = tables();
    std::env::set_var("ELANIB_SWEEP_THREADS", "4");
    let parallel = tables();
    std::env::remove_var("ELANIB_SWEEP_THREADS");
    assert_eq!(
        serial, parallel,
        "fault draws must not depend on sweep scheduling"
    );

    // Cold disk cache, then warm from disk: still the same bytes.
    let dir = std::env::temp_dir().join(format!("elanib-fault-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    simcache::set_override(Some(Mode::Disk(dir.clone())));
    let cold = tables();
    simcache::clear_memo();
    let before = simcache::stats();
    let warm = tables();
    let d = simcache::stats().delta_since(before);
    assert_eq!(d.misses, 0, "warm run must be answered entirely by disk");
    assert!(d.hits > 0);
    simcache::set_override(None);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(serial, cold, "cold cache must not change a byte");
    assert_eq!(serial, warm, "disk hits must not change a byte");
}

#[test]
fn ib_degrades_faster_than_elan_under_the_same_plan() {
    use elanib_fabric::FaultPlan;
    use elanib_microbench::fault_pingpong;
    use elanib_mpi::Network;
    use std::sync::Arc;

    let _g = LOCK.lock().unwrap();
    simcache::set_override(Some(Mode::Off));
    let clean = Arc::new(FaultPlan::parse("loss=0,seed=11").unwrap());
    let lossy = Arc::new(FaultPlan::parse("loss=0.01,seed=11").unwrap());
    let (bytes, iters) = (65_536u64, 20u32);
    let ib0 = fault_pingpong(Network::InfiniBand, bytes, iters, &clean);
    let ib1 = fault_pingpong(Network::InfiniBand, bytes, iters, &lossy);
    let el0 = fault_pingpong(Network::Elan4, bytes, iters, &clean);
    let el1 = fault_pingpong(Network::Elan4, bytes, iters, &lossy);
    simcache::set_override(None);

    assert!(!el1.failed, "Elan must survive 1% loss");
    let el_slow = el1.latency_us / el0.latency_us;
    assert!(
        el_slow < 1.2,
        "Elan degrades smoothly under 1% loss: {el_slow}x"
    );
    if ib1.failed {
        assert!(ib1.retries > 0, "a failed IB point must show retry work");
    } else {
        let ib_slow = ib1.latency_us / ib0.latency_us;
        assert!(
            ib_slow > 3.0 * el_slow,
            "IB must cliff where Elan bends: ib {ib_slow}x vs elan {el_slow}x"
        );
        assert!(ib1.retries > 0);
    }
}

/// Acceptance check #5 of the issue: one panicking sweep point plus
/// one pre-corrupted disk-cache entry; every other point completes,
/// and both failures are visible in the stats (and the JSONL record).
#[test]
fn panicking_point_and_corrupt_cache_entry_are_both_survived_and_reported() {
    use elanib_core::{sweep_with_opts, PointResult, SweepOpts};

    let _g = LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("elanib-fault-harness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    simcache::set_override(Some(Mode::Disk(dir.clone())));

    // Populate the disk tier, then flip a bit in one entry.
    let warm =
        |x: &u32| -> f64 { simcache::get_or_compute("fault.harness", x, || *x as f64 * 2.0) };
    let items: Vec<u32> = (0..8).collect();
    for x in &items {
        warm(x);
    }
    // Flip a bit in every stored entry (directory order is arbitrary,
    // so targeting "one" entry could land on the point that panics and
    // is never read back).
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut blob = std::fs::read(&path).unwrap();
        let last = blob.len() - 1;
        blob[last] ^= 0x01;
        std::fs::write(&path, blob).unwrap();
    }
    simcache::clear_memo();

    let json = dir.join("bench.jsonl");
    std::env::set_var("ELANIB_BENCH_JSON", &json);
    let corrupt_before = simcache::stats().corrupt;
    let opts = SweepOpts {
        isolate_panics: true,
    };
    let (results, stats) = sweep_with_opts(&items, opts, |&x| {
        if x == 3 {
            panic!("injected harness failure at {x}");
        }
        warm(&x)
    });
    stats.record("fault_harness");
    std::env::remove_var("ELANIB_BENCH_JSON");

    // Every non-panicking point completed with the right value —
    // including the one whose cache entry was corrupt (silently
    // recomputed).
    assert_eq!(results.len(), 8);
    assert_eq!(stats.failed, 1);
    for (i, r) in results.into_iter().enumerate() {
        if i == 3 {
            match r {
                PointResult::Failed { payload, .. } => {
                    assert!(payload.contains("injected harness failure"))
                }
                PointResult::Ok(_) => panic!("point 3 must have failed"),
            }
        } else {
            assert_eq!(r.ok(), Some(i as f64 * 2.0));
        }
    }
    assert!(
        simcache::stats().corrupt > corrupt_before,
        "the bit-flipped entry must be counted as corrupt"
    );
    let record = std::fs::read_to_string(&json).unwrap();
    assert!(
        record.contains("\"failed\":1"),
        "JSONL must carry the failure count: {record}"
    );

    simcache::set_override(None);
    let _ = std::fs::remove_dir_all(&dir);
}
