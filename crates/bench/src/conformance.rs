//! Driver behind the `conformance` binary: expectation evaluation plus
//! the two repo-level gates the dep-free `elanib-validate` crate cannot
//! know about — exhibit *coverage* (every entry of
//! [`elanib_core::EXHIBITS`] must be claimed by an expectation file)
//! and BENCH *regression gating* (current `BENCH_*.json` wall times vs
//! the committed baselines).
//!
//! Lives in the library (not the binary) so the integration tests can
//! run the exact production code path against mutated CSV fixtures.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use elanib_validate::report::{escape, Report};

/// Everything one conformance run needs.
pub struct ConformanceOptions {
    /// Directory of `*.toml` expectation files.
    pub expectations: PathBuf,
    /// Directory of exhibit CSVs to validate.
    pub results: PathBuf,
    /// Where to write `conformance.json` (`None` = don't).
    pub json: Option<PathBuf>,
    /// Fresh BENCH JSONL (e.g. produced during this CI run).
    pub bench_current: Option<PathBuf>,
    /// Committed baseline JSONL (`BENCH_regen.json` / `BENCH_sweep.json`).
    pub bench_baselines: Vec<PathBuf>,
    /// Wall-time ratio above which a record is flagged. Deliberately
    /// generous: the gate exists to catch a 10x accidental slowdown
    /// (an O(n^2) regression, a cache left off), not 20% noise.
    pub bench_ratio: f64,
    /// Promote bench warnings to failures.
    pub strict: bool,
}

impl ConformanceOptions {
    pub fn new(expectations: PathBuf, results: PathBuf) -> ConformanceOptions {
        ConformanceOptions {
            expectations,
            results,
            json: None,
            bench_current: None,
            bench_baselines: Vec::new(),
            bench_ratio: 8.0,
            strict: false,
        }
    }
}

/// Result of a full conformance run.
pub struct Outcome {
    pub report: Report,
    /// Exhibit ids with no expectation file, and expectation files
    /// naming unknown exhibits.
    pub uncovered: Vec<String>,
    pub unknown_exhibits: Vec<String>,
    /// Bench-gate messages (warnings unless `strict`).
    pub bench_flags: Vec<String>,
    pub strict: bool,
}

impl Outcome {
    /// Expectations + coverage verdict (bench flags only fail strict
    /// runs).
    pub fn ok(&self) -> bool {
        self.report.ok()
            && self.uncovered.is_empty()
            && self.unknown_exhibits.is_empty()
            && (self.bench_flags.is_empty() || !self.strict)
    }

    /// Full human-readable rendering: the expectation report, then
    /// coverage, then the bench gate.
    pub fn render_text(&self) -> String {
        let mut out = self.report.render_text();
        if !self.uncovered.is_empty() {
            out.push_str(&format!(
                "\nCOVERAGE: {} exhibit(s) have no expectation file: {}\n",
                self.uncovered.len(),
                self.uncovered.join(", ")
            ));
        }
        if !self.unknown_exhibits.is_empty() {
            out.push_str(&format!(
                "\nCOVERAGE: expectation file(s) name unknown exhibits: {}\n",
                self.unknown_exhibits.join(", ")
            ));
        }
        for f in &self.bench_flags {
            out.push_str(&format!(
                "\nBENCH {}: {f}\n",
                if self.strict { "FAIL" } else { "WARN" }
            ));
        }
        out
    }

    /// `conformance.json`: the validator's JSON with the repo-level
    /// gates appended, still deterministic.
    pub fn to_json(&self) -> String {
        let core = self.report.to_json();
        // Splice our extra fields before the final closing brace.
        let body = core.trim_end().trim_end_matches('}').trim_end();
        let mut out = String::from(body);
        out.push_str(",\n  \"coverage_ok\": ");
        out.push_str(
            if self.uncovered.is_empty() && self.unknown_exhibits.is_empty() {
                "true"
            } else {
                "false"
            },
        );
        out.push_str(&format!(
            ",\n  \"uncovered\": [{}]",
            self.uncovered
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            ",\n  \"unknown_exhibits\": [{}]",
            self.unknown_exhibits
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            ",\n  \"bench_strict\": {},\n  \"bench_flags\": [{}]",
            self.strict,
            self.bench_flags
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(",\n  \"ok\": {}\n}}\n", self.ok()));
        out
    }
}

/// Run the whole conformance check. `Err` is reserved for setup
/// problems (unreadable dirs, unparseable expectations) — evaluation
/// findings land in the `Outcome`, never fail fast.
pub fn run(opts: &ConformanceOptions) -> Result<Outcome, String> {
    let files = elanib_validate::load_expect_dir(&opts.expectations)?;
    let report = elanib_validate::run_files(&files, &opts.results);

    // Coverage, both directions.
    let covered: Vec<&str> = files.iter().map(|f| f.exhibit.as_str()).collect();
    let uncovered: Vec<String> = elanib_core::EXHIBITS
        .iter()
        .filter(|e| !covered.contains(&e.id))
        .map(|e| e.id.to_string())
        .collect();
    let unknown_exhibits: Vec<String> = files
        .iter()
        .filter(|f| elanib_core::exhibit(&f.exhibit).is_none())
        .map(|f| format!("{} (from {})", f.exhibit, f.source))
        .collect();

    let bench_flags = match &opts.bench_current {
        Some(current) => bench_gate(current, &opts.bench_baselines, opts.bench_ratio)?,
        None => Vec::new(),
    };

    Ok(Outcome {
        report,
        uncovered,
        unknown_exhibits,
        bench_flags,
        strict: opts.strict,
    })
}

/// Records shorter than this are never gated: sub-quarter-second
/// exhibits (the cost tables) have wall times dominated by process
/// noise, and flagging a 0.4 ms -> 4 ms "regression" helps nobody.
const BENCH_FLOOR_S: f64 = 0.25;

/// Compare per-exhibit wall times in `current` against the best
/// (minimum) wall time per exhibit across the `baselines`. Returns one
/// message per flagged record.
fn bench_gate(current: &Path, baselines: &[PathBuf], ratio: f64) -> Result<Vec<String>, String> {
    let mut base: BTreeMap<String, f64> = BTreeMap::new();
    let mut base_eps: BTreeMap<String, f64> = BTreeMap::new();
    for b in baselines {
        for (key, wall, eps) in parse_bench_jsonl(b)? {
            if let Some(eps) = eps {
                let e = base_eps.entry(key.clone()).or_insert(eps);
                if eps > *e {
                    *e = eps;
                }
            }
            let e = base.entry(key).or_insert(wall);
            if wall < *e {
                *e = wall;
            }
        }
    }
    if base.is_empty() {
        return Err(format!(
            "bench gate: no baseline records found in {}",
            baselines
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    // Best current wall per key too: a warm-cache rerun in the same
    // file must not be penalized by its cold predecessor. For sweep
    // records the best (max) events/s is tracked alongside, together
    // with the wall of the record that achieved it.
    let mut cur: BTreeMap<String, f64> = BTreeMap::new();
    let mut cur_eps: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for (key, wall, eps) in parse_bench_jsonl(current)? {
        if let Some(eps) = eps {
            let e = cur_eps.entry(key.clone()).or_insert((eps, wall));
            if eps > e.0 {
                *e = (eps, wall);
            }
        }
        let e = cur.entry(key).or_insert(wall);
        if wall < *e {
            *e = wall;
        }
    }
    let mut flags = Vec::new();
    for (key, wall) in &cur {
        let Some(b) = base.get(key) else { continue };
        if *wall >= BENCH_FLOOR_S && *wall > b * ratio {
            flags.push(format!(
                "{key}: {wall:.2} s vs baseline {b:.2} s ({:.1}x > allowed {ratio}x)",
                wall / b
            ));
        }
    }
    // Throughput gate, same warn-only policy: a sweep whose simulated
    // events/s dropped by more than `ratio` against the best baseline
    // is flagged. Kernel-dispatch regressions show up here even when
    // wall time hides behind cache hits or a smaller grid, because the
    // metric is normalized per event. The absolute wall floor applies
    // to the record being judged, for the same noise reasons as above.
    for (key, (eps, wall)) in &cur_eps {
        let Some(b) = base_eps.get(key) else { continue };
        if *wall >= BENCH_FLOOR_S && *eps * ratio < *b {
            flags.push(format!(
                "{key}: {:.2}M events/s vs baseline {:.2}M ({:.1}x slower > allowed {ratio}x)",
                eps / 1e6,
                b / 1e6,
                b / eps
            ));
        }
    }
    Ok(flags)
}

/// Minimal JSONL field extraction: each line is one flat record; we
/// need its label (`"exhibit"` or `"label"`, prefixed with `kind` so
/// sweep and regen records never collide), its `wall_s`, and — for
/// sweep records — its `events_per_sec` (None on regen records, which
/// carry no event counter).
fn parse_bench_jsonl(path: &Path) -> Result<Vec<(String, f64, Option<f64>)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("bench gate: cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(wall) = json_num_field(line, "wall_s") else {
            continue;
        };
        let kind = json_str_field(line, "kind").unwrap_or_else(|| "?".into());
        let Some(label) = json_str_field(line, "exhibit").or_else(|| json_str_field(line, "label"))
        else {
            continue;
        };
        let eps = json_num_field(line, "events_per_sec");
        out.push((format!("{kind}:{label}"), wall, eps));
    }
    Ok(out)
}

pub(crate) fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // BENCH labels never contain escaped quotes; a plain find is exact
    // for everything the harness emits.
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

pub(crate) fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_extraction() {
        let line = r#"{"kind":"regen","exhibit":"fig2_ljs","wall_s":0.531003,"cache_hits":0}"#;
        assert_eq!(json_str_field(line, "kind").as_deref(), Some("regen"));
        assert_eq!(json_str_field(line, "exhibit").as_deref(), Some("fig2_ljs"));
        assert_eq!(json_num_field(line, "wall_s"), Some(0.531003));
        assert_eq!(json_str_field(line, "label"), None);
    }

    #[test]
    fn bench_gate_flags_only_large_slow_records() {
        let dir = std::env::temp_dir().join("elanib-bench-gate-test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(
            &base,
            concat!(
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":0.5}\n",
                "{\"kind\":\"regen\",\"exhibit\":\"tiny\",\"wall_s\":0.0001}\n",
            ),
        )
        .unwrap();
        std::fs::write(
            &cur,
            concat!(
                // 10x over the 0.5 s baseline -> flagged.
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":5.0}\n",
                // 100x over baseline but under the absolute floor -> ignored.
                "{\"kind\":\"regen\",\"exhibit\":\"tiny\",\"wall_s\":0.01}\n",
                // No baseline -> ignored.
                "{\"kind\":\"regen\",\"exhibit\":\"new\",\"wall_s\":9.0}\n",
            ),
        )
        .unwrap();
        let flags = bench_gate(&cur, std::slice::from_ref(&base), 8.0).unwrap();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].starts_with("regen:slow"), "{}", flags[0]);
        // A second, faster record for the same exhibit rescues it.
        std::fs::write(
            &cur,
            concat!(
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":5.0}\n",
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":0.6}\n",
            ),
        )
        .unwrap();
        assert!(bench_gate(&cur, &[base], 8.0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bench_gate_flags_events_per_sec_regressions() {
        let dir = std::env::temp_dir().join("elanib-bench-eps-gate-test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(
            &base,
            concat!(
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":8000000.0}\n",
                "{\"kind\":\"sweep\",\"label\":\"fig6_nascg\",\"wall_s\":1.0,\"events_per_sec\":6000000.0}\n",
            ),
        )
        .unwrap();
        std::fs::write(
            &cur,
            concat!(
                // 10x fewer events/s at comparable wall -> flagged.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":800000.0}\n",
                // Slower but within ratio -> clean.
                "{\"kind\":\"sweep\",\"label\":\"fig6_nascg\",\"wall_s\":1.0,\"events_per_sec\":2000000.0}\n",
                // Huge drop but under the wall floor (cache-warmed
                // blip, not a trustworthy sample) -> ignored.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":0.001,\"events_per_sec\":1.0}\n",
            ),
        )
        .unwrap();
        let flags = bench_gate(&cur, std::slice::from_ref(&base), 8.0).unwrap();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(
            flags[0].starts_with("sweep:fig2_ljs") && flags[0].contains("events/s"),
            "{}",
            flags[0]
        );
        // A faster sweep record for the same label rescues it.
        std::fs::write(
            &cur,
            concat!(
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":800000.0}\n",
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":7500000.0}\n",
            ),
        )
        .unwrap();
        assert!(bench_gate(&cur, &[base], 8.0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
