//! Driver behind the `conformance` binary: expectation evaluation plus
//! the two repo-level gates the dep-free `elanib-validate` crate cannot
//! know about — exhibit *coverage* (every entry of
//! [`elanib_core::EXHIBITS`] must be claimed by an expectation file)
//! and BENCH *regression gating* (current `BENCH_*.json` wall times vs
//! the committed baselines).
//!
//! Lives in the library (not the binary) so the integration tests can
//! run the exact production code path against mutated CSV fixtures.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use elanib_validate::report::{escape, Report};

/// Everything one conformance run needs.
pub struct ConformanceOptions {
    /// Directory of `*.toml` expectation files.
    pub expectations: PathBuf,
    /// Directory of exhibit CSVs to validate.
    pub results: PathBuf,
    /// Where to write `conformance.json` (`None` = don't).
    pub json: Option<PathBuf>,
    /// Fresh BENCH JSONL (e.g. produced during this CI run).
    pub bench_current: Option<PathBuf>,
    /// Committed baseline JSONL (`BENCH_regen.json` / `BENCH_sweep.json`).
    pub bench_baselines: Vec<PathBuf>,
    /// Wall-time ratio above which a record is flagged. Deliberately
    /// generous: the gate exists to catch a 10x accidental slowdown
    /// (an O(n^2) regression, a cache left off), not 20% noise.
    pub bench_ratio: f64,
    /// Promote bench warnings to failures.
    pub strict: bool,
    /// `Some(r)` promotes the events/s regression check from warn-only
    /// to FAILING at ratio `r`: a sweep record whose throughput fell
    /// more than `r`x below the best baseline on record fails the run
    /// outright (regardless of `strict`). Records under the
    /// [`EPS_GATE_MIN_EVENTS`] noise floor are never judged.
    pub eps_gate: Option<f64>,
}

impl ConformanceOptions {
    pub fn new(expectations: PathBuf, results: PathBuf) -> ConformanceOptions {
        ConformanceOptions {
            expectations,
            results,
            json: None,
            bench_current: None,
            bench_baselines: Vec::new(),
            bench_ratio: 8.0,
            strict: false,
            eps_gate: None,
        }
    }
}

/// Result of a full conformance run.
pub struct Outcome {
    pub report: Report,
    /// Exhibit ids with no expectation file, and expectation files
    /// naming unknown exhibits.
    pub uncovered: Vec<String>,
    pub unknown_exhibits: Vec<String>,
    /// Bench-gate messages (warnings unless `strict`).
    pub bench_flags: Vec<String>,
    /// Events/s regressions under the failing gate
    /// ([`ConformanceOptions::eps_gate`]); always count against
    /// [`Outcome::ok`].
    pub eps_failures: Vec<String>,
    pub strict: bool,
}

impl Outcome {
    /// Expectations + coverage verdict (bench flags only fail strict
    /// runs; events/s failures under the promoted gate always fail).
    pub fn ok(&self) -> bool {
        self.report.ok()
            && self.uncovered.is_empty()
            && self.unknown_exhibits.is_empty()
            && self.eps_failures.is_empty()
            && (self.bench_flags.is_empty() || !self.strict)
    }

    /// Full human-readable rendering: the expectation report, then
    /// coverage, then the bench gate.
    pub fn render_text(&self) -> String {
        let mut out = self.report.render_text();
        if !self.uncovered.is_empty() {
            out.push_str(&format!(
                "\nCOVERAGE: {} exhibit(s) have no expectation file: {}\n",
                self.uncovered.len(),
                self.uncovered.join(", ")
            ));
        }
        if !self.unknown_exhibits.is_empty() {
            out.push_str(&format!(
                "\nCOVERAGE: expectation file(s) name unknown exhibits: {}\n",
                self.unknown_exhibits.join(", ")
            ));
        }
        for f in &self.bench_flags {
            out.push_str(&format!(
                "\nBENCH {}: {f}\n",
                if self.strict { "FAIL" } else { "WARN" }
            ));
        }
        for f in &self.eps_failures {
            out.push_str(&format!("\nBENCH FAIL (events/s gate): {f}\n"));
        }
        out
    }

    /// `conformance.json`: the validator's JSON with the repo-level
    /// gates appended, still deterministic.
    pub fn to_json(&self) -> String {
        let core = self.report.to_json();
        // Splice our extra fields before the final closing brace.
        let body = core.trim_end().trim_end_matches('}').trim_end();
        let mut out = String::from(body);
        out.push_str(",\n  \"coverage_ok\": ");
        out.push_str(
            if self.uncovered.is_empty() && self.unknown_exhibits.is_empty() {
                "true"
            } else {
                "false"
            },
        );
        out.push_str(&format!(
            ",\n  \"uncovered\": [{}]",
            self.uncovered
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            ",\n  \"unknown_exhibits\": [{}]",
            self.unknown_exhibits
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            ",\n  \"bench_strict\": {},\n  \"bench_flags\": [{}]",
            self.strict,
            self.bench_flags
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            ",\n  \"eps_failures\": [{}]",
            self.eps_failures
                .iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(",\n  \"ok\": {}\n}}\n", self.ok()));
        out
    }
}

/// Run the whole conformance check. `Err` is reserved for setup
/// problems (unreadable dirs, unparseable expectations) — evaluation
/// findings land in the `Outcome`, never fail fast.
pub fn run(opts: &ConformanceOptions) -> Result<Outcome, String> {
    let files = elanib_validate::load_expect_dir(&opts.expectations)?;
    let report = elanib_validate::run_files(&files, &opts.results);

    // Coverage, both directions.
    let covered: Vec<&str> = files.iter().map(|f| f.exhibit.as_str()).collect();
    let uncovered: Vec<String> = elanib_core::EXHIBITS
        .iter()
        .filter(|e| !covered.contains(&e.id))
        .map(|e| e.id.to_string())
        .collect();
    let unknown_exhibits: Vec<String> = files
        .iter()
        .filter(|f| elanib_core::exhibit(&f.exhibit).is_none())
        .map(|f| format!("{} (from {})", f.exhibit, f.source))
        .collect();

    let (bench_flags, eps_failures) = match &opts.bench_current {
        Some(current) => bench_gate(
            current,
            &opts.bench_baselines,
            opts.bench_ratio,
            opts.eps_gate,
        )?,
        None => (Vec::new(), Vec::new()),
    };

    Ok(Outcome {
        report,
        uncovered,
        unknown_exhibits,
        bench_flags,
        eps_failures,
        strict: opts.strict,
    })
}

/// Records shorter than this are never gated: sub-quarter-second
/// exhibits (the cost tables) have wall times dominated by process
/// noise, and flagging a 0.4 ms -> 4 ms "regression" helps nobody.
const BENCH_FLOOR_S: f64 = 0.25;

/// Noise floor for the FAILING events/s gate: records with fewer
/// simulated events than this are never judged — a per-event rate over
/// a handful of dispatches is dominated by process startup noise. The
/// kernel micro-bench scenarios all clear this comfortably.
const EPS_GATE_MIN_EVENTS: f64 = 50_000.0;

/// Compare per-exhibit wall times in `current` against the best
/// (minimum) wall time per exhibit across the `baselines`, and sweep
/// events/s against the best (maximum) baseline. Returns
/// `(warn_flags, eps_failures)`: wall-time regressions (and, when
/// `eps_gate` is `None`, throughput regressions at `ratio`) are
/// warn-only flags; with `eps_gate = Some(r)` the throughput check is
/// instead judged at ratio `r` over the [`EPS_GATE_MIN_EVENTS`] noise
/// floor and its findings land in the failing bucket.
fn bench_gate(
    current: &Path,
    baselines: &[PathBuf],
    ratio: f64,
    eps_gate: Option<f64>,
) -> Result<(Vec<String>, Vec<String>), String> {
    let mut base: BTreeMap<String, f64> = BTreeMap::new();
    let mut base_eps: BTreeMap<String, f64> = BTreeMap::new();
    for b in baselines {
        for (key, wall, eps, _events) in parse_bench_jsonl(b)? {
            if let Some(eps) = eps {
                let e = base_eps.entry(key.clone()).or_insert(eps);
                if eps > *e {
                    *e = eps;
                }
            }
            let e = base.entry(key).or_insert(wall);
            if wall < *e {
                *e = wall;
            }
        }
    }
    if base.is_empty() {
        return Err(format!(
            "bench gate: no baseline records found in {}",
            baselines
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    // Best current wall per key too: a warm-cache rerun in the same
    // file must not be penalized by its cold predecessor. For sweep
    // records the best (max) events/s is tracked alongside, together
    // with the wall and event count of the record that achieved it.
    let mut cur: BTreeMap<String, f64> = BTreeMap::new();
    let mut cur_eps: BTreeMap<String, (f64, f64, f64)> = BTreeMap::new();
    for (key, wall, eps, events) in parse_bench_jsonl(current)? {
        if let Some(eps) = eps {
            let e = cur_eps.entry(key.clone()).or_insert((eps, wall, events));
            if eps > e.0 {
                *e = (eps, wall, events);
            }
        }
        let e = cur.entry(key).or_insert(wall);
        if wall < *e {
            *e = wall;
        }
    }
    let mut flags = Vec::new();
    let mut failures = Vec::new();
    for (key, wall) in &cur {
        let Some(b) = base.get(key) else { continue };
        if *wall >= BENCH_FLOOR_S && *wall > b * ratio {
            flags.push(format!(
                "{key}: {wall:.2} s vs baseline {b:.2} s ({:.1}x > allowed {ratio}x)",
                wall / b
            ));
        }
    }
    // Throughput gate: a sweep whose simulated events/s dropped by more
    // than the allowed ratio against the best baseline is flagged.
    // Kernel-dispatch regressions show up here even when wall time
    // hides behind cache hits or a smaller grid, because the metric is
    // normalized per event. Warn-only at `ratio` by default; with
    // `eps_gate` the check fails the run at that (generous) ratio.
    let eps_ratio = eps_gate.unwrap_or(ratio);
    for (key, (eps, wall, events)) in &cur_eps {
        let Some(b) = base_eps.get(key) else { continue };
        let judged = match eps_gate {
            // The failing gate's floor is event-count based: a rate is
            // only trustworthy over enough dispatches.
            Some(_) => *events >= EPS_GATE_MIN_EVENTS,
            None => *wall >= BENCH_FLOOR_S,
        };
        if judged && *eps * eps_ratio < *b {
            let msg = format!(
                "{key}: {:.2}M events/s vs best on record {:.2}M ({:.1}x slower > allowed {eps_ratio}x)",
                eps / 1e6,
                b / 1e6,
                b / eps
            );
            if eps_gate.is_some() {
                failures.push(msg);
            } else {
                flags.push(msg);
            }
        }
    }
    Ok((flags, failures))
}

/// Minimal JSONL field extraction: each line is one flat record; we
/// need its label (`"exhibit"` or `"label"`, prefixed with `kind` so
/// sweep and regen records never collide), its `wall_s`, and — for
/// sweep records — its `events_per_sec` (None on regen records, which
/// carry no event counter) plus the event count behind that rate (0
/// when absent), which the failing events/s gate uses as its noise
/// floor.
type BenchRecord = (String, f64, Option<f64>, f64);

fn parse_bench_jsonl(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("bench gate: cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(wall) = json_num_field(line, "wall_s") else {
            continue;
        };
        let kind = json_str_field(line, "kind").unwrap_or_else(|| "?".into());
        let Some(label) = json_str_field(line, "exhibit").or_else(|| json_str_field(line, "label"))
        else {
            continue;
        };
        let eps = json_num_field(line, "events_per_sec");
        let events = json_num_field(line, "events").unwrap_or(0.0);
        out.push((format!("{kind}:{label}"), wall, eps, events));
    }
    Ok(out)
}

pub(crate) fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // BENCH labels never contain escaped quotes; a plain find is exact
    // for everything the harness emits.
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

pub(crate) fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_extraction() {
        let line = r#"{"kind":"regen","exhibit":"fig2_ljs","wall_s":0.531003,"cache_hits":0}"#;
        assert_eq!(json_str_field(line, "kind").as_deref(), Some("regen"));
        assert_eq!(json_str_field(line, "exhibit").as_deref(), Some("fig2_ljs"));
        assert_eq!(json_num_field(line, "wall_s"), Some(0.531003));
        assert_eq!(json_str_field(line, "label"), None);
    }

    #[test]
    fn bench_gate_flags_only_large_slow_records() {
        let dir = std::env::temp_dir().join("elanib-bench-gate-test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(
            &base,
            concat!(
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":0.5}\n",
                "{\"kind\":\"regen\",\"exhibit\":\"tiny\",\"wall_s\":0.0001}\n",
            ),
        )
        .unwrap();
        std::fs::write(
            &cur,
            concat!(
                // 10x over the 0.5 s baseline -> flagged.
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":5.0}\n",
                // 100x over baseline but under the absolute floor -> ignored.
                "{\"kind\":\"regen\",\"exhibit\":\"tiny\",\"wall_s\":0.01}\n",
                // No baseline -> ignored.
                "{\"kind\":\"regen\",\"exhibit\":\"new\",\"wall_s\":9.0}\n",
            ),
        )
        .unwrap();
        let (flags, _) = bench_gate(&cur, std::slice::from_ref(&base), 8.0, None).unwrap();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].starts_with("regen:slow"), "{}", flags[0]);
        // A second, faster record for the same exhibit rescues it.
        std::fs::write(
            &cur,
            concat!(
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":5.0}\n",
                "{\"kind\":\"regen\",\"exhibit\":\"slow\",\"wall_s\":0.6}\n",
            ),
        )
        .unwrap();
        assert!(bench_gate(&cur, &[base], 8.0, None).unwrap().0.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bench_gate_flags_events_per_sec_regressions() {
        let dir = std::env::temp_dir().join("elanib-bench-eps-gate-test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(
            &base,
            concat!(
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":8000000.0}\n",
                "{\"kind\":\"sweep\",\"label\":\"fig6_nascg\",\"wall_s\":1.0,\"events_per_sec\":6000000.0}\n",
            ),
        )
        .unwrap();
        std::fs::write(
            &cur,
            concat!(
                // 10x fewer events/s at comparable wall -> flagged.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":800000.0}\n",
                // Slower but within ratio -> clean.
                "{\"kind\":\"sweep\",\"label\":\"fig6_nascg\",\"wall_s\":1.0,\"events_per_sec\":2000000.0}\n",
                // Huge drop but under the wall floor (cache-warmed
                // blip, not a trustworthy sample) -> ignored.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":0.001,\"events_per_sec\":1.0}\n",
            ),
        )
        .unwrap();
        let (flags, fails) = bench_gate(&cur, std::slice::from_ref(&base), 8.0, None).unwrap();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(
            fails.is_empty(),
            "warn-only mode must never fail: {fails:?}"
        );
        assert!(
            flags[0].starts_with("sweep:fig2_ljs") && flags[0].contains("events/s"),
            "{}",
            flags[0]
        );
        // A faster sweep record for the same label rescues it.
        std::fs::write(
            &cur,
            concat!(
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":800000.0}\n",
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"wall_s\":1.0,\"events_per_sec\":7500000.0}\n",
            ),
        )
        .unwrap();
        assert!(bench_gate(&cur, &[base], 8.0, None).unwrap().0.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn eps_gate_fails_regressions_over_the_event_floor() {
        let dir = std::env::temp_dir().join("elanib-eps-gate-fail-test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(
            &base,
            concat!(
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"events\":2000000,\"wall_s\":0.5,\"events_per_sec\":4000000.0}\n",
                "{\"kind\":\"sweep\",\"label\":\"kernel_timers\",\"events\":1000000,\"wall_s\":0.1,\"events_per_sec\":10000000.0}\n",
            ),
        )
        .unwrap();
        std::fs::write(
            &cur,
            concat!(
                // 2.5x below best on record, plenty of events -> FAILS.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"events\":2000000,\"wall_s\":1.25,\"events_per_sec\":1600000.0}\n",
                // Short wall but above the event floor: the failing
                // gate judges it (wall floor doesn't apply) — within
                // 2x, so clean.
                "{\"kind\":\"sweep\",\"label\":\"kernel_timers\",\"events\":1000000,\"wall_s\":0.12,\"events_per_sec\":8000000.0}\n",
                // Huge drop but under the event floor -> ignored.
                "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"events\":100,\"wall_s\":1.0,\"events_per_sec\":100.0}\n",
            ),
        )
        .unwrap();
        // Best-per-key semantics: the 100-event record can't drag down
        // fig2_ljs because the 1.6M record is the best current one —
        // and that one is a genuine 2.5x regression.
        let (flags, fails) = bench_gate(&cur, std::slice::from_ref(&base), 8.0, Some(2.0)).unwrap();
        assert!(flags.is_empty(), "{flags:?}");
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(
            fails[0].starts_with("sweep:fig2_ljs") && fails[0].contains("2.5x slower"),
            "{}",
            fails[0]
        );
        // Recovered throughput -> the failing gate passes clean.
        std::fs::write(
            &cur,
            "{\"kind\":\"sweep\",\"label\":\"fig2_ljs\",\"events\":2000000,\"wall_s\":0.48,\"events_per_sec\":4100000.0}\n",
        )
        .unwrap();
        let (_, fails) = bench_gate(&cur, &[base], 8.0, Some(2.0)).unwrap();
        assert!(fails.is_empty(), "{fails:?}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
