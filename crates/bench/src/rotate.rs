//! BENCH history rotation: bound the append-only `BENCH_regen.json` /
//! `BENCH_sweep.json` files without weakening the regression gates.
//!
//! Every full `regen_all.sh` pass appends records, so left alone the
//! files grow without bound. Rotation keeps, per `(kind, label)` key:
//!
//! * the **best-on-record** entries the gates compare against — the
//!   minimum `wall_s` regen record, the maximum `events_per_sec` sweep
//!   record, and (for profile records) the record achieving the
//!   minimum ns/event for *each* kernel bucket over the cost gate's
//!   event floor — so `conformance` and `elanib-report` judge future
//!   runs against exactly the same baselines before and after a
//!   rotation;
//! * the **last `keep`** records in input order, so the trend tables
//!   keep their recent history.
//!
//! Lines that don't parse as a keyed record (unknown `kind`, missing
//! label) are always preserved verbatim: rotation must never eat data
//! it doesn't understand. Output preserves the original relative
//! order, so "latest = last occurrence" semantics survive.

use std::path::Path;

use crate::conformance::{json_num_field, json_str_field};
use crate::perf_report::GATE_MIN_EVENTS;

/// Kernel buckets a profile record reports (cost-gate order).
const BUCKETS: [&str; 4] = ["poll", "timer", "call", "wake"];

/// What one [`rotate_file`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotateStats {
    /// Lines written back.
    pub kept: usize,
    /// Lines dropped.
    pub dropped: usize,
}

/// The rotation key and gate-relevant metrics of one record.
struct Keyed {
    key: String,
    /// Lower-is-better score (regen wall, sweep -events/s).
    score: f64,
    /// Profile-only: ns/event per bucket (None under the gate floor).
    bucket_cost: [Option<f64>; 4],
}

fn classify(line: &str) -> Option<Keyed> {
    let kind = json_str_field(line, "kind")?;
    let label = json_str_field(line, "exhibit").or_else(|| json_str_field(line, "label"))?;
    let key = format!("{kind}:{label}");
    match kind.as_str() {
        "regen" => Some(Keyed {
            key,
            score: json_num_field(line, "wall_s")?,
            bucket_cost: [None; 4],
        }),
        // Sweep best = max events/s; negate for the shared min-score.
        "sweep" => Some(Keyed {
            key,
            score: -json_num_field(line, "events_per_sec")
                .or_else(|| json_num_field(line, "wall_s").map(|w| -w))?,
            bucket_cost: [None; 4],
        }),
        "profile" => {
            let mut cost = [None; 4];
            for (i, b) in BUCKETS.iter().enumerate() {
                let count = json_num_field(line, &format!("{b}_count")).unwrap_or(0.0);
                let wall = json_num_field(line, &format!("{b}_wall_ns")).unwrap_or(0.0);
                if count >= GATE_MIN_EVENTS {
                    cost[i] = Some(wall / count);
                }
            }
            Some(Keyed {
                key,
                // Profiles have no single best; only bucket costs pin
                // records. Score ties every profile equally.
                score: 0.0,
                bucket_cost: cost,
            })
        }
        _ => None,
    }
}

/// Indices (ascending) of the lines to keep under a `keep`-per-key
/// rotation. Pure function of the lines, exposed for tests.
pub fn rotation_keep_set(lines: &[&str], keep: usize) -> Vec<usize> {
    use std::collections::BTreeMap;

    let keyed: Vec<Option<Keyed>> = lines.iter().map(|l| classify(l.trim())).collect();

    // Per key: best score index, best bucket-cost index per bucket,
    // and all indices in order.
    struct Group {
        best_score: Option<(f64, usize)>,
        best_bucket: [Option<(f64, usize)>; 4],
        members: Vec<usize>,
    }
    let mut groups: BTreeMap<&str, Group> = BTreeMap::new();
    let mut kept: Vec<bool> = keyed.iter().map(Option::is_none).collect(); // unparsed: keep

    for (i, k) in keyed.iter().enumerate() {
        let Some(k) = k else { continue };
        let g = groups.entry(k.key.as_str()).or_insert(Group {
            best_score: None,
            best_bucket: [None; 4],
            members: Vec::new(),
        });
        // Ties keep the earliest record — the gates' fold order.
        if g.best_score.is_none_or(|(s, _)| k.score < s) {
            g.best_score = Some((k.score, i));
        }
        for (slot, cost) in g.best_bucket.iter_mut().zip(k.bucket_cost.iter()) {
            if let Some(c) = cost {
                if slot.is_none_or(|(s, _)| *c < s) {
                    *slot = Some((*c, i));
                }
            }
        }
        g.members.push(i);
    }

    for g in groups.values() {
        if let Some((_, i)) = g.best_score {
            kept[i] = true;
        }
        for slot in g.best_bucket.iter().flatten() {
            kept[slot.1] = true;
        }
        for &i in g.members.iter().rev().take(keep) {
            kept[i] = true;
        }
    }
    (0..lines.len()).filter(|&i| kept[i]).collect()
}

/// Rotate `path` in place, keeping the last `keep` records per
/// `(kind, label)` key plus every best-on-record entry (see module
/// docs). Atomic: the result is written to a sibling temp file and
/// renamed over the original, so a crash mid-rotation never truncates
/// history.
pub fn rotate_file(path: &Path, keep: usize) -> Result<RotateStats, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("rotate: cannot read {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let keep_set = rotation_keep_set(&lines, keep);
    let stats = RotateStats {
        kept: keep_set.len(),
        dropped: lines.len() - keep_set.len(),
    };
    if stats.dropped == 0 {
        return Ok(stats); // nothing to do; don't churn the file
    }
    let mut out = String::with_capacity(text.len());
    for i in keep_set {
        out.push_str(lines[i]);
        out.push('\n');
    }
    let tmp = path.with_extension("rotate.tmp");
    std::fs::write(&tmp, &out)
        .map_err(|e| format!("rotate: cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rotate: cannot replace {}: {e}", path.display()))?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regen(label: &str, wall: f64) -> String {
        format!("{{\"kind\":\"regen\",\"exhibit\":\"{label}\",\"wall_s\":{wall}}}")
    }

    fn sweep(label: &str, eps: f64) -> String {
        format!(
            "{{\"kind\":\"sweep\",\"label\":\"{label}\",\"events\":1000000,\"wall_s\":0.5,\"events_per_sec\":{eps}}}"
        )
    }

    fn profile(label: &str, poll_npe: f64, wake_npe: f64) -> String {
        format!(
            "{{\"kind\":\"profile\",\"exhibit\":\"{label}\",\"poll_count\":100000,\"poll_wall_ns\":{},\"wake_count\":50000,\"wake_wall_ns\":{}}}",
            poll_npe * 100000.0,
            wake_npe * 50000.0
        )
    }

    #[test]
    fn keeps_last_n_plus_best_per_key() {
        // 6 regen records for one exhibit; best (0.1 s) is the second.
        let lines: Vec<String> = [5.0, 0.1, 4.0, 3.0, 2.0, 1.0]
            .iter()
            .map(|&w| regen("fig2_ljs", w))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let kept = rotation_keep_set(&refs, 2);
        // Last two (indices 4, 5) + the best (index 1).
        assert_eq!(kept, vec![1, 4, 5]);
    }

    #[test]
    fn sweep_best_is_max_events_per_sec() {
        let lines: Vec<String> = [1e6, 9e6, 2e6, 3e6]
            .iter()
            .map(|&e| sweep("fig2_ljs", e))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let kept = rotation_keep_set(&refs, 1);
        // Best-on-record 9M (index 1) + latest (index 3).
        assert_eq!(kept, vec![1, 3]);
    }

    #[test]
    fn profile_rotation_pins_per_bucket_minima() {
        // Three profiles: record 0 has the best poll cost, record 1 the
        // best wake cost, record 2 is merely latest.
        let lines = [
            profile("fig2_ljs", 100.0, 900.0),
            profile("fig2_ljs", 500.0, 200.0),
            profile("fig2_ljs", 400.0, 800.0),
        ];
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let kept = rotation_keep_set(&refs, 1);
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn keys_do_not_cross_and_unparsed_lines_survive() {
        let lines = [
            regen("a", 1.0),
            regen("b", 2.0),
            "{\"kind\":\"mystery\",\"x\":1}".to_string(),
            regen("a", 0.5),
            regen("b", 0.1),
            regen("a", 0.9),
        ];
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let kept = rotation_keep_set(&refs, 1);
        // a: best 0.5 (idx 3) + latest (idx 5); b: best=latest 0.1
        // (idx 4) ... plus earlier b latest-1? keep=1 → only idx 4.
        // Mystery line (idx 2) always kept.
        assert_eq!(kept, vec![2, 3, 4, 5]);
    }

    #[test]
    fn rotate_file_is_idempotent_and_preserves_gate_baselines() {
        let dir = std::env::temp_dir().join(format!("elanib_rotate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_sweep.json");
        let mut body = String::new();
        for i in 0..20 {
            body.push_str(&sweep("fig2_ljs", 1e6 + i as f64));
            body.push('\n');
        }
        body.push_str(&sweep("fig2_ljs", 5e7)); // best on record
        body.push('\n');
        for i in 0..20 {
            body.push_str(&sweep("fig2_ljs", 2e6 + i as f64));
            body.push('\n');
        }
        std::fs::write(&p, &body).unwrap();
        let s1 = rotate_file(&p, 8).unwrap();
        assert_eq!(
            s1,
            RotateStats {
                kept: 9,
                dropped: 32
            }
        );
        let after = std::fs::read_to_string(&p).unwrap();
        assert!(after.contains("50000000"), "best-on-record entry dropped");
        assert_eq!(after.lines().count(), 9);
        // Second rotation: nothing left to drop.
        let s2 = rotate_file(&p, 8).unwrap();
        assert_eq!(
            s2,
            RotateStats {
                kept: 9,
                dropped: 0
            }
        );
        assert_eq!(std::fs::read_to_string(&p).unwrap(), after);
        let _ = std::fs::remove_dir_all(dir);
    }
}
