//! Regenerates Figure 1: (a) ping-pong latency, (b) bandwidth
//! (ping-pong + streaming), (c) Elan/IB bandwidth ratio, (d) b_eff per
//! process.

use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_microbench::{beff, figure1_sizes, pingpong, streaming};
use elanib_mpi::Network;

fn iters_for(bytes: u64) -> u32 {
    match bytes {
        0..=65_536 => 60,
        65_537..=1_048_576 => 20,
        _ => 8,
    }
}

fn window_for(bytes: u64) -> u32 {
    match bytes {
        0..=4_096 => 200,
        4_097..=262_144 => 50,
        _ => 10,
    }
}

fn main() {
    let sizes = figure1_sizes();

    // (a) + (b) + (c): sweep both networks once, reuse everywhere.
    let mut a = TextTable::new(vec!["bytes", "IB us", "Elan us"]);
    let mut b = TextTable::new(vec![
        "bytes",
        "IB pp MB/s",
        "Elan pp MB/s",
        "IB st MB/s",
        "Elan st MB/s",
    ]);
    let mut c = TextTable::new(vec!["bytes", "ratio pingpong", "ratio streaming"]);
    for &s in &sizes {
        let ib = pingpong(Network::InfiniBand, s, iters_for(s));
        let el = pingpong(Network::Elan4, s, iters_for(s));
        a.row(vec![s.to_string(), f(ib.latency_us), f(el.latency_us)]);
        if s == 0 {
            continue; // bandwidth undefined at zero bytes
        }
        let ib_st = streaming(Network::InfiniBand, s, window_for(s));
        let el_st = streaming(Network::Elan4, s, window_for(s));
        b.row(vec![
            s.to_string(),
            f(ib.bandwidth_mb_s),
            f(el.bandwidth_mb_s),
            f(ib_st.bandwidth_mb_s),
            f(el_st.bandwidth_mb_s),
        ]);
        c.row(vec![
            s.to_string(),
            f(el.bandwidth_mb_s / ib.bandwidth_mb_s),
            f(el_st.bandwidth_mb_s / ib_st.bandwidth_mb_s),
        ]);
    }
    emit("Figure 1(a)", "fig1a_latency", &a);
    emit("Figure 1(b)", "fig1b_bandwidth", &b);
    emit("Figure 1(c)", "fig1c_ratio", &c);

    // (d): b_eff per process, 1 PPN, 2..32 nodes.
    let mut d = TextTable::new(vec!["procs", "IB b_eff/proc MB/s", "Elan b_eff/proc MB/s"]);
    for nodes in [2usize, 4, 8, 16, 32] {
        let ib = beff(Network::InfiniBand, nodes, 1, 2);
        let el = beff(Network::Elan4, nodes, 1, 2);
        d.row(vec![
            nodes.to_string(),
            f(ib.per_process_mb_s),
            f(el.per_process_mb_s),
        ]);
    }
    emit("Figure 1(d)", "fig1d_beff", &d);
}
