//! Regenerates Figure 1: (a) ping-pong latency, (b) bandwidth
//! (ping-pong + streaming), (c) Elan/IB bandwidth ratio, (d) b_eff per
//! process.
//!
//! Every point is an independent simulation, so each panel's grid is
//! fanned through the parallel sweep engine; one job measures both
//! networks at one point, keeping the pairing (and hence row layout)
//! identical to the serial version.

use elanib_bench::{emit, report_sweep};
use elanib_core::sweep_with_stats;
use elanib_core::{f, TextTable};
use elanib_microbench::{beff, figure1_sizes, pingpong, streaming};
use elanib_mpi::Network;

fn iters_for(bytes: u64) -> u32 {
    match bytes {
        0..=65_536 => 60,
        65_537..=1_048_576 => 20,
        _ => 8,
    }
}

fn window_for(bytes: u64) -> u32 {
    match bytes {
        0..=4_096 => 200,
        4_097..=262_144 => 50,
        _ => 10,
    }
}

fn main() {
    elanib_bench::regen_begin();
    let sizes = figure1_sizes();

    // (a) + (b) + (c): sweep both networks once, reuse everywhere.
    let (pp, pp_stats) = sweep_with_stats(&sizes, |&s| {
        (
            pingpong(Network::InfiniBand, s, iters_for(s)),
            pingpong(Network::Elan4, s, iters_for(s)),
        )
    });
    let bw_sizes: Vec<u64> = sizes.iter().copied().filter(|&s| s != 0).collect();
    let (st, st_stats) = sweep_with_stats(&bw_sizes, |&s| {
        (
            streaming(Network::InfiniBand, s, window_for(s)),
            streaming(Network::Elan4, s, window_for(s)),
        )
    });

    let mut a = TextTable::new(vec!["bytes", "IB us", "Elan us"]);
    let mut b = TextTable::new(vec![
        "bytes",
        "IB pp MB/s",
        "Elan pp MB/s",
        "IB st MB/s",
        "Elan st MB/s",
    ]);
    let mut c = TextTable::new(vec!["bytes", "ratio pingpong", "ratio streaming"]);
    for (i, &s) in sizes.iter().enumerate() {
        let (ib, el) = &pp[i];
        a.row(vec![s.to_string(), f(ib.latency_us), f(el.latency_us)]);
        if s == 0 {
            continue; // bandwidth undefined at zero bytes
        }
        // bw_sizes is sizes minus the single leading zero entry.
        let (ib_st, el_st) = &st[i - 1];
        b.row(vec![
            s.to_string(),
            f(ib.bandwidth_mb_s),
            f(el.bandwidth_mb_s),
            f(ib_st.bandwidth_mb_s),
            f(el_st.bandwidth_mb_s),
        ]);
        c.row(vec![
            s.to_string(),
            f(el.bandwidth_mb_s / ib.bandwidth_mb_s),
            f(el_st.bandwidth_mb_s / ib_st.bandwidth_mb_s),
        ]);
    }
    emit("Figure 1(a)", "fig1a_latency", &a);
    emit("Figure 1(b)", "fig1b_bandwidth", &b);
    emit("Figure 1(c)", "fig1c_ratio", &c);

    // (d): b_eff per process, 1 PPN, 2..32 nodes.
    let node_counts = [2usize, 4, 8, 16, 32];
    let (points, beff_stats) = sweep_with_stats(&node_counts, |&nodes| {
        (
            beff(Network::InfiniBand, nodes, 1, 2),
            beff(Network::Elan4, nodes, 1, 2),
        )
    });
    let mut d = TextTable::new(vec!["procs", "IB b_eff/proc MB/s", "Elan b_eff/proc MB/s"]);
    for (i, &nodes) in node_counts.iter().enumerate() {
        let (ib, el) = &points[i];
        d.row(vec![
            nodes.to_string(),
            f(ib.per_process_mb_s),
            f(el.per_process_mb_s),
        ]);
    }
    emit("Figure 1(d)", "fig1d_beff", &d);

    let mut total = pp_stats;
    total.absorb(&st_stats);
    total.absorb(&beff_stats);
    report_sweep("fig1", &total);
}
