//! Property-fuzz driver: seeded scenario batches over both simulated
//! stacks, with shrinking and replayable repros.
//!
//! ```text
//! fuzz [--scenarios N] [--seed S] [--replay FILE] [--mutate NAME]
//! ```
//!
//! * Batch mode (default): generate `N` scenarios from base seed `S`,
//!   check every cross-cutting invariant on each
//!   (`elanib_fuzz::check_scenario`), and on any violation shrink the
//!   first failing scenario to a minimal repro under `fuzz_failures/`
//!   before exiting non-zero.
//! * `--replay FILE`: re-run one saved repro and report its
//!   violations — the deterministic second half of a bug report.
//! * `--mutate NAME`: plant a deliberate harness defect (mutation
//!   testing; `conservation` is the one defined today) to prove the
//!   invariants still catch bugs.
//!
//! Environment: `ELANIB_FUZZ_SEED` and `ELANIB_FUZZ_SCENARIOS` default
//! the batch parameters (flags win); `ELANIB_FUZZ_BUDGET_SECS` caps
//! the batch's *wall-clock* time — the run stops launching new chunks
//! once the budget is spent, so a CI stage is time-boxed without
//! killing the process mid-scenario. Per-run *simulated* time is
//! bounded separately by the in-kernel watchdog (a blown budget is a
//! typed `ScenarioTimeout`, reported as a no-deadlock violation).
//! Appends a `{"kind":"sweep"}` record per chunk when
//! `ELANIB_BENCH_JSON` is set, like every other exhibit binary.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use elanib_fuzz::{check_scenario, fuzz_batch, write_repro, FuzzOpts, Mutation, Scenario};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

struct Args {
    scenarios: usize,
    seed: u64,
    replay: Option<PathBuf>,
    mutate: Option<Mutation>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenarios: env_u64("ELANIB_FUZZ_SCENARIOS").unwrap_or(100) as usize,
        seed: env_u64("ELANIB_FUZZ_SEED").unwrap_or(42),
        replay: None,
        mutate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| it.next().ok_or_else(|| format!("{what} requires a value"));
        match a.as_str() {
            "--scenarios" => {
                args.scenarios = val("--scenarios")?
                    .parse()
                    .map_err(|e| format!("bad --scenarios: {e}"))?;
            }
            "--seed" => {
                args.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--mutate" => args.mutate = Some(Mutation::parse(&val("--mutate")?)?),
            other => {
                return Err(format!(
                    "unknown argument {other:?} \
                     (usage: fuzz [--scenarios N] [--seed S] [--replay FILE] [--mutate NAME])"
                ))
            }
        }
    }
    Ok(args)
}

/// Re-run one saved repro; exit status mirrors whether the recorded
/// violation still reproduces (a repro that no longer fails means the
/// bug is fixed — report that as success).
fn replay(path: &Path, cli_mutate: Option<Mutation>) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let (sc, recorded) = match Scenario::parse_repro(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fuzz: cannot parse {}: {e}", path.display());
            return 2;
        }
    };
    let mutate = match (cli_mutate, recorded.as_deref()) {
        (Some(m), _) => Some(m),
        (None, Some(name)) => match Mutation::parse(name) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("fuzz: repro records an unknown mutation: {e}");
                return 2;
            }
        },
        (None, None) => None,
    };
    let opts = FuzzOpts {
        budget: None,
        mutate,
    };
    println!("replaying {} (seed {})", path.display(), sc.seed);
    let rep = check_scenario(&sc, &opts);
    if let Some(why) = &rep.skipped {
        println!("scenario skipped on a specified failure mode: {why}");
    }
    if rep.ok() {
        println!("replay PASSED: every invariant holds (the recorded bug no longer reproduces)");
        0
    } else {
        println!("replay reproduced {} violation(s):", rep.violations.len());
        for v in &rep.violations {
            println!("  - {v}");
        }
        1
    }
}

fn main() {
    // The harness *expects* to catch IB's specified bounded-retry
    // panic (QP-ERR under heavy loss) and classify it as a skip;
    // don't let the default hook spray a backtrace into the log for
    // each one. Every other panic still reports normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("retry_cnt exhausted") {
            default_hook(info);
        }
    }));
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.replay {
        std::process::exit(replay(path, args.mutate));
    }

    let opts = FuzzOpts {
        budget: None,
        mutate: args.mutate,
    };
    let wall_budget = env_u64("ELANIB_FUZZ_BUDGET_SECS").map(Duration::from_secs);
    let started = Instant::now();
    // Chunked batches so the wall-clock budget is honoured at a
    // scenario-chunk boundary instead of killing mid-run.
    const CHUNK: usize = 25;
    let mut done = 0usize;
    let mut skipped = 0usize;
    while done < args.scenarios {
        if let Some(budget) = wall_budget {
            if started.elapsed() >= budget && done > 0 {
                println!(
                    "wall budget ({}s) spent after {done}/{} scenarios — stopping early",
                    budget.as_secs(),
                    args.scenarios
                );
                break;
            }
        }
        let n = CHUNK.min(args.scenarios - done);
        let chunk_base = args.seed.wrapping_add(done as u64);
        let out = fuzz_batch(chunk_base, n, &opts);
        elanib_bench::report_sweep("fuzz", &out.stats);
        skipped += out.skipped;
        done += n;
        if !out.ok() {
            for p in &out.panics {
                println!("model panic (isolated): {p}");
            }
            let Some(first) = out.failures.first() else {
                // Panics only: nothing to shrink, but still a failure.
                std::process::exit(1);
            };
            println!(
                "seed {} violated {} invariant(s):",
                first.scenario.seed,
                first.violations.len()
            );
            for v in &first.violations {
                println!("  - {v}");
            }
            println!("shrinking ...");
            let (min, min_rep) = elanib_fuzz::shrink::shrink(&first.scenario, &opts);
            let dir = Path::new("fuzz_failures");
            match write_repro(dir, &min, &opts) {
                Ok(path) => {
                    println!("minimized repro written to {}", path.display());
                    println!(
                        "replay with: cargo run -p elanib-bench --bin fuzz -- --replay {}",
                        path.display()
                    );
                }
                Err(e) => eprintln!("fuzz: cannot write repro: {e}"),
            }
            println!("minimized scenario still violates:");
            for v in &min_rep.violations {
                println!("  - {v}");
            }
            std::process::exit(1);
        }
    }
    println!(
        "fuzz OK: {done} scenarios green (base seed {}, {skipped} skipped on specified \
         QP-ERR outcomes) in {:.1}s",
        args.seed,
        started.elapsed().as_secs_f64()
    );
}
