//! The §7 ablation study: which architectural mechanism buys how much
//! application performance? Runs the membrane workload (the paper's
//! most network-sensitive application result) at 16 nodes with one
//! mechanism toggled at a time:
//!
//! * stock InfiniBand/MVAPICH and stock Elan-4 (the paper's systems);
//! * InfiniBand + an interrupt-driven independent progress engine;
//! * InfiniBand with free (Elan-style) memory registration;
//! * InfiniBand with a deep 16 KB eager threshold;
//! * Elan-4 charged explicit (InfiniBand-style) registration.
//!
//! This answers the paper's closing question — "these differences
//! could be as simple as current inefficiencies in the MPI
//! implementation or could be as complex as the capability to provide
//! independent progress through hardware offload" — with numbers.
//!
//! Both ablation grids (variant × node count, and size × reuse) are
//! flattened into single parallel sweeps: every cell is an independent
//! simulation.

use elanib_apps::md::{md_step_time_cfg, membrane, MdProblem};
use elanib_bench::{emit, report_sweep};
use elanib_core::sweep_with_stats;
use elanib_core::{f, TextTable};
use elanib_mpi::{NetConfig, Network};
use elanib_simcore::Dur;

fn main() {
    elanib_bench::regen_begin();
    let p = MdProblem {
        steps: 20,
        ..membrane()
    };
    let nodes = 16;
    let ppn = 1;
    let base = NetConfig::default();

    let mut variants: Vec<(&str, Network, NetConfig)> = vec![
        (
            "InfiniBand (stock MVAPICH)",
            Network::InfiniBand,
            base.clone(),
        ),
        ("Quadrics Elan-4 (stock)", Network::Elan4, base.clone()),
    ];
    // IB + independent progress.
    let mut c = base.clone();
    c.verbs.async_progress = true;
    variants.push(("IB + async progress engine", Network::InfiniBand, c));
    // IB + free registration.
    let mut c = base.clone();
    c.hca.reg_base = Dur::ZERO;
    c.hca.reg_per_page = Dur::ZERO;
    c.verbs.reg_check = Dur::ZERO;
    variants.push(("IB + free (implicit) registration", Network::InfiniBand, c));
    // IB + deep eager threshold.
    let mut c = base.clone();
    c.verbs.eager_threshold = 16 * 1024;
    variants.push(("IB + 16 KB eager threshold", Network::InfiniBand, c));
    // IB + both headline mechanisms.
    let mut c = base.clone();
    c.verbs.async_progress = true;
    c.hca.reg_base = Dur::ZERO;
    c.hca.reg_per_page = Dur::ZERO;
    c.verbs.reg_check = Dur::ZERO;
    variants.push((
        "IB + async progress + free registration",
        Network::InfiniBand,
        c,
    ));
    // Elan + explicit registration.
    let mut c = base.clone();
    c.tports.explicit_registration = true;
    variants.push(("Elan-4 + explicit registration", Network::Elan4, c));

    // Per-variant: measure 1-node baseline and 16-node step time with
    // the SAME configuration, so each row is a self-consistent scaling
    // efficiency. The (variant, node count) grid runs as one sweep;
    // grid[2v] is variant v at 1 node, grid[2v+1] at 16 nodes.
    let grid: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|v| [(v, 1usize), (v, nodes)])
        .collect();
    let (times, var_stats) = sweep_with_stats(&grid, |&(v, n)| {
        let (_, net, ref cfg) = variants[v];
        md_step_time_cfg(net, p, n, ppn, cfg)
    });

    let mut t = TextTable::new(vec!["configuration", "ms/step @16 nodes", "scaling eff %"]);
    let mut baseline_gap: Option<(f64, f64)> = None;
    for (v, (name, _, _)) in variants.iter().enumerate() {
        let t1 = times[2 * v];
        let t16 = times[2 * v + 1];
        let eff = t1 / t16 * 100.0;
        if name.starts_with("InfiniBand (stock") {
            baseline_gap = Some((eff, 0.0));
        }
        if name.starts_with("Quadrics Elan-4 (stock") {
            if let Some((ib, _)) = baseline_gap {
                baseline_gap = Some((ib, eff));
            }
        }
        t.row(vec![name.to_string(), f(t16 * 1e3), f(eff)]);
    }
    emit("Ablations (§7)", "ablations_membrane_16nodes", &t);
    if let Some((ib, el)) = baseline_gap {
        println!(
            "Stock gap at {nodes} nodes: Elan {el:.1}% vs IB {ib:.1}% — the rows above\n\
             show how much of that gap each mechanism explains.\n"
        );
    }

    // Second ablation: the buffer re-use / registration-sensitivity
    // study of §3.3.2 (after Liu et al., ref 11).
    use elanib_microbench::pingpong_reuse;
    use elanib_mpi::Network as Net;
    let cells: Vec<(u64, u32)> = [512u64, 65_536, 262_144]
        .iter()
        .flat_map(|&bytes| [100u32, 50, 0].iter().map(move |&pct| (bytes, pct)))
        .collect();
    let (reuse, reuse_stats) = sweep_with_stats(&cells, |&(bytes, pct)| {
        (
            pingpong_reuse(Net::InfiniBand, bytes, pct, 20),
            pingpong_reuse(Net::Elan4, bytes, pct, 20),
        )
    });
    let mut r = TextTable::new(vec!["bytes", "reuse %", "IB us", "Elan us"]);
    for (&(bytes, pct), (ib, el)) in cells.iter().zip(&reuse) {
        r.row(vec![
            bytes.to_string(),
            pct.to_string(),
            f(ib.latency_us),
            f(el.latency_us),
        ]);
    }
    emit("Ablations (§7)", "ablations_buffer_reuse", &r);
    println!(
        "Fresh buffers (0% reuse) slow InfiniBand's large messages (pin-down\n\
         cache misses) and leave Elan-4 untouched (NIC MMU) — the §3.3.2\n\
         behaviour reported by Liu et al. (ref 11 of the paper)."
    );

    let mut total = var_stats;
    total.absorb(&reuse_stats);
    report_sweep("ablations", &total);
}
