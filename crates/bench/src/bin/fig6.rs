//! Regenerates Figure 6: NAS CG class A — MOps/s/process and scaling
//! efficiency, both networks, 1 PPN (power-of-two process counts).

use elanib_apps::nascg::{cg_study, class_a};
use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_mpi::Network;

fn main() {
    elanib_bench::regen_begin();
    let counts = [1usize, 2, 4, 8, 16, 32];
    let p = class_a();
    let ib = cg_study(Network::InfiniBand, p, &counts, 1);
    let el = cg_study(Network::Elan4, p, &counts, 1);
    let mut t = TextTable::new(vec![
        "procs",
        "IB MOps/s/proc",
        "Elan MOps/s/proc",
        "IB eff%",
        "Elan eff%",
    ]);
    for (i, &procs) in counts.iter().enumerate() {
        t.row(vec![
            procs.to_string(),
            f(ib[i].1),
            f(el[i].1),
            f(ib[i].0.efficiency_pct()),
            f(el[i].0.efficiency_pct()),
        ]);
    }
    emit("Figure 6", "fig6_nascg", &t);
}
