//! Regenerates Figure 6: NAS CG class A — MOps/s/process and scaling
//! efficiency, both networks, 1 PPN (power-of-two process counts).

use elanib_apps::nascg::class_a;
use elanib_bench::{cg_figure_table, emit, report_sweep};

fn main() {
    elanib_bench::regen_begin();
    let counts = [1usize, 2, 4, 8, 16, 32];
    let (t, stats) = cg_figure_table(class_a(), &counts, 1);
    emit("Figure 6", "fig6_nascg", &t);
    report_sweep("fig6_nascg", &stats);
}
