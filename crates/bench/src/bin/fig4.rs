//! Regenerates Figure 4: Sweep3D 150³ fixed-size study — grind time
//! and scaling efficiency, both networks, 1 PPN.
//!
//! Note on fidelity: the paper's 25-node InfiniBand point jumped
//! anomalously; the authors themselves conclude ("it would appear that
//! this input data is an anomaly") after the Figure 5 follow-up runs
//! showed the trend continuing. The simulation reproduces the *trend*,
//! not the anomaly.

use elanib_apps::sweep3d::{grind_time_ns, sweep150, sweep_study};
use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_mpi::Network;

fn main() {
    elanib_bench::regen_begin();
    let counts = [1usize, 4, 9, 16, 25];
    let p = sweep150();
    let ib = sweep_study(Network::InfiniBand, p, &counts, 1);
    let el = sweep_study(Network::Elan4, p, &counts, 1);

    let mut t = TextTable::new(vec![
        "procs",
        "IB grind ns",
        "Elan grind ns",
        "IB eff%",
        "Elan eff%",
    ]);
    for (i, &procs) in counts.iter().enumerate() {
        t.row(vec![
            procs.to_string(),
            f(grind_time_ns(p, ib[i].time_s, procs)),
            f(grind_time_ns(p, el[i].time_s, procs)),
            f(ib[i].efficiency_pct()),
            f(el[i].efficiency_pct()),
        ]);
    }
    emit("Figure 4", "fig4_sweep3d", &t);
}
