//! Regenerates the RoCE exhibit (EXTENSION): what the paper's
//! comparison looks like if the verbs stack runs over RoCEv2 on 10GbE
//! instead of native InfiniBand, under each congestion-control mode.
//!
//! Two tables:
//!
//! * `roce_bw.csv` — incast aggregate bandwidth vs node count (the CC
//!   stressor: n−1 senders stream to rank 0), native IB vs PFC-only vs
//!   DCQCN-only vs hybrid, plus each mode's fraction of the IB figure.
//! * `roce_lat.csv` — 8-byte allreduce latency vs node count for the
//!   same four networks (the cost of Ethernet framing + deeper switch
//!   pipelines, and of any spurious CC reaction to collective bursts).

use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_microbench::{incast, small_allreduce_us};
use elanib_mpi::{Network, RoceMode};

const NODES: [usize; 5] = [2, 4, 8, 16, 32];
const BYTES: u64 = 65_536;
const COUNT: u32 = 16;
const LAT_REPS: u32 = 8;

const NETS: [Network; 4] = [
    Network::InfiniBand,
    Network::RoceV2(RoceMode::Pfc),
    Network::RoceV2(RoceMode::Dcqcn),
    Network::RoceV2(RoceMode::Hybrid),
];

fn main() {
    elanib_bench::regen_begin();

    let jobs: Vec<(Network, usize)> = NETS
        .iter()
        .flat_map(|&net| NODES.iter().map(move |&n| (net, n)))
        .collect();
    let bw: Vec<f64> = elanib_core::sweep(&jobs, |&(net, n)| {
        incast(net, n, BYTES, COUNT).bandwidth_mb_s
    });
    let at = |ni: usize, pi: usize| bw[ni * NODES.len() + pi];

    let mut t = TextTable::new(vec![
        "nodes",
        "IB MB/s",
        "PFC MB/s",
        "DCQCN MB/s",
        "Hybrid MB/s",
        "PFC/IB",
        "DCQCN/IB",
        "Hybrid/IB",
    ]);
    for (pi, &n) in NODES.iter().enumerate() {
        let ib = at(0, pi);
        t.row(vec![
            n.to_string(),
            f(ib),
            f(at(1, pi)),
            f(at(2, pi)),
            f(at(3, pi)),
            f(at(1, pi) / ib),
            f(at(2, pi) / ib),
            f(at(3, pi) / ib),
        ]);
    }
    emit("RoCE", "roce_bw", &t);

    let lat: Vec<f64> = elanib_core::sweep(&jobs, |&(net, n)| small_allreduce_us(net, n, LAT_REPS));
    let lat_at = |ni: usize, pi: usize| lat[ni * NODES.len() + pi];
    let mut t = TextTable::new(vec!["nodes", "IB us", "PFC us", "DCQCN us", "Hybrid us"]);
    for (pi, &n) in NODES.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            f(lat_at(0, pi)),
            f(lat_at(1, pi)),
            f(lat_at(2, pi)),
            f(lat_at(3, pi)),
        ]);
    }
    emit("RoCE", "roce_lat", &t);

    let last = NODES.len() - 1;
    println!(
        "Incast at {} nodes — hybrid holds {:.0}% of native IB; PFC-only collapses to {:.0}% (pause storms); DCQCN-only {:.0}%.",
        NODES[last],
        at(3, last) / at(0, last) * 100.0,
        at(1, last) / at(0, last) * 100.0,
        at(2, last) / at(0, last) * 100.0,
    );
}
