//! `conformance` — validate the committed `results/` against the
//! paper-shape expectations in `expectations/*.toml`.
//!
//! Where `regen_all.sh` proves the exhibits are *deterministic* (byte
//! diffs), this binary proves they still *say what the paper says*:
//! who wins which regime, where the crossovers sit, which anomalies
//! exist. Every expectation term is evaluated — never fail-fast — so a
//! behavioral change shows its full blast radius in one run, then the
//! process exits non-zero naming every violated term.
//!
//! ```text
//! conformance [--expectations DIR] [--results DIR] [--json PATH]
//!             [--bench-current FILE] [--bench-baseline FILE]...
//!             [--bench-ratio N] [--eps-gate N] [--strict] [--quiet]
//! ```
//!
//! Exit codes: 0 = conformant; 1 = violated expectations, coverage
//! gaps, or (with `--strict`) bench regressions; 2 = usage or setup
//! error (unreadable directory, unparseable expectation file).
//!
//! The bench gate compares per-exhibit wall times in `--bench-current`
//! (a JSONL file written via `ELANIB_BENCH_JSON` during this run)
//! against the best baseline time per exhibit in each
//! `--bench-baseline` (the committed `BENCH_regen.json` /
//! `BENCH_sweep.json`). Records slower than `--bench-ratio` (default
//! 8x) *and* over an absolute 0.25 s floor are reported — as warnings
//! by default, as failures under `--strict`.
//!
//! `--eps-gate N` promotes the **events/s** half of that check from
//! warn-only to FAILING at ratio `N` (independent of `--strict`): any
//! sweep record above the 50k-event noise floor whose throughput fell
//! more than `N`x below the best on record exits non-zero. This is the
//! CI `perf-gate` stage.

use std::path::PathBuf;
use std::process::ExitCode;

use elanib_bench::conformance::{run, ConformanceOptions};

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--expectations DIR] [--results DIR] [--json PATH]\n\
         \x20                  [--bench-current FILE] [--bench-baseline FILE]...\n\
         \x20                  [--bench-ratio N] [--eps-gate N] [--strict] [--quiet]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = ConformanceOptions::new(PathBuf::from("expectations"), PathBuf::from("results"));
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> PathBuf {
            match args.next() {
                Some(v) => PathBuf::from(v),
                None => {
                    eprintln!("conformance: {name} needs a value");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--expectations" => opts.expectations = value("--expectations"),
            "--results" => opts.results = value("--results"),
            "--json" => opts.json = Some(value("--json")),
            "--bench-current" => opts.bench_current = Some(value("--bench-current")),
            "--bench-baseline" => opts.bench_baselines.push(value("--bench-baseline")),
            "--bench-ratio" => {
                let v = value("--bench-ratio");
                opts.bench_ratio = match v.to_string_lossy().parse::<f64>() {
                    Ok(r) if r > 1.0 => r,
                    _ => {
                        eprintln!("conformance: --bench-ratio must be a number > 1");
                        usage();
                    }
                }
            }
            "--eps-gate" => {
                let v = value("--eps-gate");
                opts.eps_gate = match v.to_string_lossy().parse::<f64>() {
                    Ok(r) if r > 1.0 => Some(r),
                    _ => {
                        eprintln!("conformance: --eps-gate must be a number > 1");
                        usage();
                    }
                }
            }
            "--strict" => opts.strict = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("conformance: unknown argument `{other}`");
                usage();
            }
        }
    }
    if opts.bench_current.is_some() && opts.bench_baselines.is_empty() {
        // Default baselines: the committed BENCH records.
        for name in ["BENCH_regen.json", "BENCH_sweep.json"] {
            let p = PathBuf::from(name);
            if p.exists() {
                opts.bench_baselines.push(p);
            }
        }
    }

    let outcome = match run(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet || !outcome.ok() {
        print!("{}", outcome.render_text());
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, outcome.to_json()) {
            eprintln!("conformance: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[conformance report written to {}]", path.display());
    }
    if outcome.ok() {
        println!("CONFORMANT: the committed results still reproduce the paper's shapes");
        ExitCode::SUCCESS
    } else {
        println!("NOT CONFORMANT: see the violated terms above");
        ExitCode::FAILURE
    }
}
