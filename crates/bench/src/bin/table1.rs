//! Regenerates Table 1: the evaluation platform.

use elanib_bench::emit;
use elanib_core::{table1, TextTable};

fn main() {
    elanib_bench::regen_begin();
    let mut t = TextTable::new(vec!["System", "Description"]);
    for row in table1() {
        t.row(vec![row.system.to_string(), row.description.to_string()]);
    }
    emit("Table 1", "table1", &t);
}
