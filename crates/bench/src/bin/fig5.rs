//! Regenerates Figure 5: Sweep3D input-size family on InfiniBand,
//! efficiency normalized at the 4-process point (as the paper does).

use elanib_apps::sweep3d::{sweep_cube, sweep_study};
use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_mpi::Network;

fn main() {
    elanib_bench::regen_begin();
    let counts = [4usize, 9, 16, 25];
    let sizes = [50usize, 75, 100, 125, 150];
    let mut t = TextTable::new(vec![
        "procs",
        "50^3 eff%",
        "75^3 eff%",
        "100^3 eff%",
        "125^3 eff%",
        "150^3 eff%",
    ]);
    let mut series = Vec::new();
    for &n in &sizes {
        // sweep_study normalizes at the first count (4 procs), exactly
        // like the paper's Figure 5.
        series.push(sweep_study(Network::InfiniBand, sweep_cube(n), &counts, 1));
    }
    for (i, &procs) in counts.iter().enumerate() {
        let mut row = vec![procs.to_string()];
        for s in &series {
            row.push(f(s[i].efficiency_pct()));
        }
        t.row(row);
    }
    emit("Figure 5", "fig5_sweep_inputs", &t);
}
