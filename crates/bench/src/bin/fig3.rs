//! Regenerates Figure 3: LAMMPS membrane scaled study.

use elanib_apps::md::membrane;
use elanib_bench::md_figure;

fn main() {
    elanib_bench::regen_begin();
    md_figure("Figure 3", "fig3_membrane", membrane());
}
