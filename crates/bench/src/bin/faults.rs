//! EXTENSION exhibit: deterministic fault injection and transport
//! recovery.
//!
//! The paper's §3.1 observation that QsNet does error detection and
//! retransmission *in the link-layer hardware* — while InfiniBand's RC
//! transport recovers end-to-end at ACK-timeout granularity — never
//! gets a figure of its own in the paper. This exhibit produces it:
//!
//! * `faults_latency.csv` — ping-pong latency over a loss-rate ×
//!   message-size grid. Elan's per-packet link retry adds microseconds;
//!   IB's whole-message retransmit adds multiples of the 100 µs ACK
//!   timeout, and at 3% loss the QP can exhaust its bounded retries
//!   entirely (`QP-ERR`).
//! * `faults_outage.csv` — a 100-message stream across a 16-node
//!   fabric while a link on the static route goes down for 1–3 ms.
//!   Elan reroutes around the outage; IB stalls on exponential-backoff
//!   retransmits until the link returns.
//!
//! Every fault draw is a pure function of (plan seed, channel, packet
//! sequence), so both tables are bit-reproducible across serial and
//! parallel sweeps, cold and warm caches, traced and untraced runs —
//! the fault_determinism integration test enforces exactly that.

use elanib_bench::{emit, faults_latency_table, faults_outage_table, report_sweep};

fn main() {
    elanib_bench::regen_begin();

    let (lat, lat_stats) = faults_latency_table();
    emit("Faults", "faults_latency", &lat);
    println!(
        "Loss rates are per packet per link. Elan-4 retries bad packets in\n\
         the link layer (~1 us each); InfiniBand retransmits the whole\n\
         message after a ~100 us ACK timeout with exponential backoff, so\n\
         the same injected fault rate costs it orders of magnitude more —\n\
         and QP-ERR rows mark the bounded retry budget running out.\n"
    );

    let (out, out_stats) = faults_outage_table();
    emit("Faults", "faults_outage", &out);
    println!(
        "The outage covers the static 0->15 route. Quadrics' adaptive\n\
         routing detours around the dead link (reroutes > 0); InfiniBand's\n\
         static route can only back off and retry into it.\n"
    );

    let mut total = lat_stats;
    total.absorb(&out_stats);
    report_sweep("faults", &total);
}
