//! Regenerates Figure 2: LAMMPS LJS scaled study (time + efficiency).

use elanib_apps::md::ljs;
use elanib_bench::md_figure;

fn main() {
    elanib_bench::regen_begin();
    md_figure("Figure 2", "fig2_ljs", ljs());
}
