//! Regenerates Figure 7: network cost per port vs system size for the
//! three switch strategies, plus the §5 total-system comparison.

use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_cost::{
    elan_network, figure7_series, ib96_network, ib_mixed_network, system_cost_per_node, IbPrices,
    QuadricsPrices,
};

fn main() {
    elanib_bench::regen_begin();
    let sizes = [8usize, 16, 32, 64, 96, 128, 256, 512, 1024, 2048, 4096];
    let mut t = TextTable::new(vec![
        "ports",
        "Elan-4 $/port",
        "IB 96-port $/port",
        "IB 24/288 $/port",
    ]);
    for (n, elan, ib96, mixed) in figure7_series(&sizes) {
        t.row(vec![n.to_string(), f(elan), f(ib96), f(mixed)]);
    }
    emit("Figure 7", "fig7_cost_per_port", &t);

    // The §5 headline: total-system cost per node at large scale.
    let q = QuadricsPrices::default();
    let ib = IbPrices::default();
    let n = 1024;
    let elan = system_cost_per_node(elan_network(&q, n));
    let i96 = system_cost_per_node(ib96_network(&ib, n));
    let mixed = system_cost_per_node(ib_mixed_network(&ib, n));
    let mut s = TextTable::new(vec!["metric", "value"]);
    s.row(vec!["Elan-4 system $/node".to_string(), f(elan)]);
    s.row(vec!["IB(96) system $/node".to_string(), f(i96)]);
    s.row(vec!["IB(24/288) system $/node".to_string(), f(mixed)]);
    s.row(vec![
        "Elan premium vs IB(96) % (paper: ~4%)".to_string(),
        f((elan - i96) / i96 * 100.0),
    ]);
    s.row(vec![
        "Elan premium vs IB(24/288) % (paper: ~51%)".to_string(),
        f((elan - mixed) / mixed * 100.0),
    ]);
    emit("Figure 7", "fig7_system_cost", &s);
}
