//! `elanib-report` — merge bench history, profiler output and the
//! conformance verdict into one perf dashboard.
//!
//! ```text
//! elanib-report [--bench FILE]... [--conformance FILE]
//!               [--out-md PATH] [--out-json PATH]
//!               [--ratio N] [--strict]
//! elanib-report --rotate N [--bench FILE]...
//! ```
//!
//! `--bench` files are JSONL (`ELANIB_BENCH_JSON` format) and are read
//! in the order given — the last record per label wins "latest", so
//! pass committed history first and the current run's file last.
//! Missing `--bench` defaults to the committed `BENCH_regen.json` and
//! `BENCH_sweep.json` when present.
//!
//! `--rotate N` switches to maintenance mode: instead of generating a
//! report, each `--bench` file is rewritten in place keeping the last
//! `N` records per `(kind, label)` key plus every best-on-record entry
//! the regression gates compare against (min-wall regen, max-events/s
//! sweep, per-bucket min-ns/event profile). `regen_all.sh` runs this
//! after every clean full pass so the append-only history files stay
//! bounded.
//!
//! Exit codes: 0 = report written (cost regressions are warnings);
//! 1 = cost regressions under `--strict`; 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use elanib_bench::perf_report::generate;

fn usage() -> ! {
    eprintln!(
        "usage: elanib-report [--bench FILE]... [--conformance FILE]\n\
         \x20                    [--out-md PATH] [--out-json PATH] [--ratio N] [--strict]\n\
         \x20      elanib-report --rotate N [--bench FILE]..."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut conformance: Option<PathBuf> = None;
    let mut out_md: Option<PathBuf> = None;
    let mut out_json: Option<PathBuf> = None;
    let mut ratio = 8.0f64;
    let mut strict = false;
    let mut rotate_keep: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> PathBuf {
            match args.next() {
                Some(v) => PathBuf::from(v),
                None => {
                    eprintln!("elanib-report: {name} needs a value");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--bench" => inputs.push(value("--bench")),
            "--conformance" => conformance = Some(value("--conformance")),
            "--out-md" => out_md = Some(value("--out-md")),
            "--out-json" => out_json = Some(value("--out-json")),
            "--ratio" => {
                let v = value("--ratio");
                ratio = match v.to_string_lossy().parse::<f64>() {
                    Ok(r) if r > 1.0 => r,
                    _ => {
                        eprintln!("elanib-report: --ratio must be a number > 1");
                        usage();
                    }
                }
            }
            "--rotate" => {
                let v = value("--rotate");
                rotate_keep = match v.to_string_lossy().parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("elanib-report: --rotate must be an integer >= 1");
                        usage();
                    }
                }
            }
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("elanib-report: unknown argument `{other}`");
                usage();
            }
        }
    }
    if inputs.is_empty() {
        for name in ["BENCH_regen.json", "BENCH_sweep.json"] {
            let p = PathBuf::from(name);
            if p.exists() {
                inputs.push(p);
            }
        }
        if inputs.is_empty() {
            eprintln!("elanib-report: no --bench files given and no committed BENCH_*.json found");
            return ExitCode::from(2);
        }
    }
    if let Some(keep) = rotate_keep {
        for path in &inputs {
            match elanib_bench::rotate::rotate_file(path, keep) {
                Ok(s) => eprintln!(
                    "[rotated {}: kept {}, dropped {}]",
                    path.display(),
                    s.kept,
                    s.dropped
                ),
                Err(e) => {
                    eprintln!("elanib-report: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    // A conformance file that does not exist yet (e.g. the stage was
    // skipped) degrades to "not supplied" rather than an error.
    let conformance = conformance.filter(|p| p.exists());

    let report = match generate(&inputs, conformance.as_deref(), ratio) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("elanib-report: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &out_md {
        if let Err(e) = std::fs::write(path, &report.markdown) {
            eprintln!("elanib-report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[perf report written to {}]", path.display());
    }
    if let Some(path) = &out_json {
        if let Err(e) = std::fs::write(path, &report.json) {
            eprintln!("elanib-report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[perf report written to {}]", path.display());
    }
    if out_md.is_none() && out_json.is_none() {
        print!("{}", report.markdown);
    }
    for f in &report.flags {
        eprintln!("elanib-report: WARN {f}");
    }
    if strict && !report.flags.is_empty() {
        eprintln!(
            "elanib-report: {} per-event-type cost regression(s) under --strict",
            report.flags.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
