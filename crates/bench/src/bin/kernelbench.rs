//! Quick kernel micro-benchmark and allocation audit.
//!
//! Exercises the three kernel event paths in isolation — direct timer
//! dispatch (`timers`), the inline call slab (`calls`), and the wake
//! queue (`pingpong`) — then one fig2-shaped MD point (`model`) as the
//! end-to-end reference. For each scenario it reports events, wall
//! time, events/s, and allocations per event (via a counting global
//! allocator), plus the thread's waker-`Arc` allocation count.
//!
//! Runs in under a second; CI runs it inside the throughput-gate stage
//! so a dispatch-path or allocation regression is visible right next
//! to the rolled-up events/s numbers it would eventually sink.
//!
//! Diagnostics: set `ALLOCPROBE_BT=<size>` to print a sampled
//! backtrace of every 20000th allocation of exactly `<size>` bytes —
//! the tool that located the hot allocation sites this kernel no
//! longer has.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use elanib_simcore::{Dur, Sim};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static EXACT: [AtomicU64; 512] = [const { AtomicU64::new(0) }; 512];
static PROBE_SIZE: AtomicU64 = AtomicU64::new(0);
static PROBE_N: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IN_BT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        EXACT[layout.size().min(511)].fetch_add(1, Ordering::Relaxed);
        // Optional: sample backtraces of allocations of one exact size
        // (ALLOCPROBE_BT=<size>), every 20000th hit.
        if layout.size() as u64 == PROBE_SIZE.load(Ordering::Relaxed)
            && PROBE_N
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(20000)
            && IN_BT.with(|g| !g.replace(true))
        {
            eprintln!(
                "--- {} B alloc ---\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            IN_BT.with(|g| g.set(false));
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

/// Append a sweep-shaped BENCH record for one scenario so the CI
/// events/s gate can judge kernel dispatch throughput directly,
/// best-on-record style, next to the exhibit sweeps. No-op unless
/// `ELANIB_BENCH_JSON` is set (same contract as `SweepStats::record`).
fn record(label: &str, events: u64, wall: f64) {
    let Ok(path) = std::env::var("ELANIB_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"kind\":\"sweep\",\"schema\":3,\"git_rev\":\"{}\",\"label\":\"kernel_{label}\",\"jobs\":1,\"threads\":1,\"shards\":null,\"payload_mode\":\"{}\",\"events\":{events},\"failed\":0,\"wall_s\":{wall:.6},\"events_per_sec\":{:.1},\"unix_ts\":{ts},\"workers\":[{{\"w\":0,\"j\":1,\"e\":{events},\"busy_s\":{wall:.6}}}]}}",
        elanib_simcore::trace::git_rev(),
        elanib_simcore::payload_mode(),
        events as f64 / wall.max(1e-9),
    );
    let _ = elanib_simcore::trace::jsonl::append_line(std::path::Path::new(&path), &line);
}

/// Build a scenario on a fresh sim, run it to completion, and report
/// events, wall time, events/s, and allocations per event.
fn scenario(name: &str, build: impl FnOnce(&Sim)) {
    let e0 = elanib_simcore::thread_events();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let sim = Sim::new(7);
    build(&sim);
    sim.run().unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let events = elanib_simcore::thread_events() - e0;
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    println!(
        "{name:8} events={events:9} wall={wall:7.3}s  ev/s={:7.2}M  allocs/event={:.3}",
        events as f64 / wall / 1e6,
        allocs as f64 / events as f64,
    );
    record(name, events, wall);
}

/// Direct timer dispatch: every event is a `Delay` firing straight
/// back into its task, no waker round-trip.
fn timers(sim: &Sim) {
    for t in 0..64u64 {
        let s = sim.clone();
        sim.spawn_fmt(format_args!("timer{t}"), async move {
            for i in 0..4000u64 {
                s.sleep(Dur::from_ns(10 + ((t + i) % 17))).await;
            }
        });
    }
}

/// Inline call slab: self-rescheduling closures, zero tasks involved.
fn calls(sim: &Sim) {
    fn chain(sim: &Sim, left: u32) {
        if left == 0 {
            return;
        }
        let at = sim.now() + Dur::from_ns(25);
        sim.call_at(at, move |sim| chain(sim, left - 1));
    }
    for _ in 0..64 {
        chain(sim, 4000);
    }
}

/// Wake path: pairs of tasks ping-ponging one-shot flags, re-created
/// per round (also exercises the flag pool).
fn pingpong(sim: &Sim) {
    use elanib_simcore::Flag;
    use std::cell::RefCell;
    use std::rc::Rc;
    for p in 0..32u64 {
        let a: Rc<RefCell<Flag>> = Rc::new(RefCell::new(Flag::new()));
        let b: Rc<RefCell<Flag>> = Rc::new(RefCell::new(Flag::new()));
        let (a2, b2) = (a.clone(), b.clone());
        let s = sim.clone();
        sim.spawn_fmt(format_args!("ping{p}"), async move {
            for _ in 0..2000 {
                s.sleep(Dur::from_ns(20)).await;
                let f = a.borrow().clone();
                f.set();
                let f = b.borrow().clone();
                f.wait().await;
                *b.borrow_mut() = Flag::new();
            }
        });
        let s = sim.clone();
        sim.spawn_fmt(format_args!("pong{p}"), async move {
            for _ in 0..2000 {
                let f = a2.borrow().clone();
                f.wait().await;
                *a2.borrow_mut() = Flag::new();
                s.sleep(Dur::from_ns(20)).await;
                let f = b2.borrow().clone();
                f.set();
            }
        });
    }
}

fn main() {
    if let Ok(s) = std::env::var("ALLOCPROBE_BT") {
        PROBE_SIZE.store(s.parse().unwrap_or(0), Ordering::Relaxed);
    }
    scenario("timers", timers);
    scenario("calls", calls);
    scenario("pingpong", pingpong);

    // End-to-end reference: one fig2-shaped MD point, uncached.
    std::env::set_var("ELANIB_CACHE", "off");
    let e0 = elanib_simcore::thread_events();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let t = elanib_apps::md::proxy::md_step_time(
        elanib_mpi::Network::InfiniBand,
        elanib_apps::md::proxy::ljs(),
        32,
        2,
    );
    let wall = t0.elapsed().as_secs_f64();
    let events = elanib_simcore::thread_events() - e0;
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    println!(
        "model    events={events:9} wall={wall:7.3}s  ev/s={:7.2}M  allocs/event={:.3}  step_s={t:.6}",
        events as f64 / wall / 1e6,
        allocs as f64 / events as f64,
    );
    record("model", events, wall);
    println!(
        "waker_allocs={}  (thread total)",
        elanib_simcore::kernel::thread_waker_allocs()
    );
    // Top exact allocation sizes — the audit trail for new hot sites.
    let mut exact: Vec<(usize, u64)> = EXACT
        .iter()
        .enumerate()
        .map(|(s, c)| (s, c.load(Ordering::Relaxed)))
        .filter(|&(_, c)| c > 5000)
        .collect();
    exact.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (s, c) in exact.iter().take(10) {
        println!("  exactly {s:4} B x {c}");
    }
}
