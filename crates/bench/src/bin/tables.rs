//! Regenerates Tables 2 and 3: component list prices. Reconstructed
//! entries (illegible in the source scan) are marked with `*`.

use elanib_bench::emit;
use elanib_core::{f, TextTable};
use elanib_cost::{table2_rows, table3_rows, IbPrices, QuadricsPrices};

fn main() {
    elanib_bench::regen_begin();
    let mut t2 = TextTable::new(vec!["Component", "List price $"]);
    for (name, price, reconstructed) in table2_rows(&IbPrices::default()) {
        let marker = if reconstructed { " *" } else { "" };
        t2.row(vec![format!("{name}{marker}"), f(price)]);
    }
    emit("Table 2", "table2_ib_prices", &t2);

    let mut t3 = TextTable::new(vec!["Component", "List price $"]);
    for (name, price, reconstructed) in table3_rows(&QuadricsPrices::default()) {
        let marker = if reconstructed { " *" } else { "" };
        t3.row(vec![format!("{name}{marker}"), f(price)]);
    }
    emit("Table 3", "table3_quadrics_prices", &t3);
    println!("* reconstructed price (illegible in the source scan); see crates/cost/src/prices.rs");
}
