//! Regenerates Figure 8: the membrane study extrapolated to 8192
//! processors, "assuming the scaling trends continue exactly as they
//! did for the first 32 nodes" (§5).

use elanib_apps::md::{md_study, membrane, MdProblem};
use elanib_bench::{emit, STUDY_NODES};
use elanib_core::{f, figure8_series, TextTable};
use elanib_mpi::Network;

fn main() {
    elanib_bench::regen_begin();
    // Shorter measured section than Figures 2/3 — the trend fit needs
    // the efficiency curve, not high-precision absolute times.
    let p = MdProblem {
        steps: 20,
        ..membrane()
    };
    let mut t = TextTable::new(vec![
        "procs",
        "IB eff% (extrap)",
        "Elan eff% (extrap)",
        "IB s/step (extrap)",
        "Elan s/step (extrap)",
    ]);
    let mut fitted = Vec::new();
    for net in Network::BOTH {
        let pts = md_study(net, p, &STUDY_NODES, 1);
        let base_time = pts[0].time_s;
        let measured: Vec<(usize, f64)> = pts.iter().map(|s| (s.procs, s.efficiency)).collect();
        fitted.push(figure8_series(&measured, base_time, 8192));
    }
    let (ib, el) = (&fitted[0], &fitted[1]);
    for i in 0..ib.len() {
        t.row(vec![
            ib[i].0.to_string(),
            f(ib[i].1 * 100.0),
            f(el[i].1 * 100.0),
            f(ib[i].2),
            f(el[i].2),
        ]);
    }
    emit("Figure 8", "fig8_extrapolation", &t);

    let at_1024 = ib.iter().position(|&(p, _, _)| p == 1024).unwrap();
    let gap = (el[at_1024].1 - ib[at_1024].1) / ib[at_1024].1 * 100.0;
    println!(
        "Relative scaling-efficiency gap at 1024 nodes: {:.1}% (paper: \"nearly 40%\")",
        gap
    );
}
