//! # elanib-bench — exhibit regeneration harness
//!
//! One binary per paper exhibit (`table1`, `fig1` … `fig8`, `tables`),
//! each printing the same rows/series the paper reports, labelled from
//! [`elanib_core::inventory`]. Set `ELANIB_RESULTS_DIR` to also write
//! each table as CSV for plotting.

use std::fs;
use std::path::PathBuf;

use elanib_core::{exhibit, TextTable};

/// Print an exhibit header, render the table, and (optionally) write
/// CSV into `$ELANIB_RESULTS_DIR/<name>.csv`.
pub fn emit(exhibit_id: &str, name: &str, table: &TextTable) {
    if let Some(e) = exhibit(exhibit_id) {
        println!("== {} — {} ==", e.id, e.title);
        println!("   workload: {}", e.workload);
        println!("   modules:  {}", e.modules);
    } else {
        println!("== {exhibit_id} ==");
    }
    println!();
    println!("{}", table.render());
    if let Ok(dir) = std::env::var("ELANIB_RESULTS_DIR") {
        let mut p = PathBuf::from(dir);
        let _ = fs::create_dir_all(&p);
        p.push(format!("{name}.csv"));
        if let Err(e) = fs::write(&p, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", p.display());
        } else {
            println!("[csv written to {}]", p.display());
        }
    }
}

/// The node counts of the paper's application studies.
pub const STUDY_NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Shared generator for Figures 2 and 3: the four-curve MD scaled
/// study (network × PPN), times and efficiencies.
pub fn md_figure(id: &str, name: &str, problem: elanib_apps::md::MdProblem) {
    use elanib_apps::md::md_study;
    use elanib_core::f;
    use elanib_mpi::Network;
    let mut t = TextTable::new(vec![
        "nodes",
        "IB 1PPN s/step",
        "IB 2PPN s/step",
        "Elan 1PPN s/step",
        "Elan 2PPN s/step",
        "IB 1PPN eff%",
        "IB 2PPN eff%",
        "Elan 1PPN eff%",
        "Elan 2PPN eff%",
    ]);
    let series: Vec<_> = [
        (Network::InfiniBand, 1),
        (Network::InfiniBand, 2),
        (Network::Elan4, 1),
        (Network::Elan4, 2),
    ]
    .iter()
    .map(|&(net, ppn)| md_study(net, problem, &STUDY_NODES, ppn))
    .collect();
    for (i, &nodes) in STUDY_NODES.iter().enumerate() {
        t.row(vec![
            nodes.to_string(),
            f(series[0][i].time_s),
            f(series[1][i].time_s),
            f(series[2][i].time_s),
            f(series[3][i].time_s),
            f(series[0][i].efficiency_pct()),
            f(series[1][i].efficiency_pct()),
            f(series[2][i].efficiency_pct()),
            f(series[3][i].efficiency_pct()),
        ]);
    }
    emit(id, name, &t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_core::f;

    #[test]
    fn emit_writes_csv_when_requested() {
        let dir = std::env::temp_dir().join("elanib-bench-test");
        std::env::set_var("ELANIB_RESULTS_DIR", &dir);
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec![f(1.0), f(2.0)]);
        emit("Figure 7", "unit_test_table", &t);
        let csv = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert!(csv.starts_with("a,b"));
        std::env::remove_var("ELANIB_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
